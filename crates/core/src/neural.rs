//! [`CnfEncodable`] for the quantized neural and margin families — the
//! first non-tree compilation pipeline in the repo.
//!
//! Tree families compile by path splitting; the quantized models compile
//! by **threshold layers**:
//!
//! * [`QuantizedSvm`] is a single signed pseudo-Boolean threshold
//!   `Σ qwᵢ·xᵢ ≥ −qb` over the feature literals —
//!   [`satkit::card::weighted_at_least`] for the CNF leg, a memoized
//!   partial-sum branching program over [`Bdd`] nodes for the region leg.
//! * [`QuantizedMlp`] composes two layers. Each hidden unit is the same
//!   kind of threshold over the inputs, materialized as an indicator
//!   literal (CNF) or a feature-space diagram (regions); the output
//!   layer is a staged additive fold over the ±1 unit activations —
//!   [`AdditiveVoteCompiler`] for CNF, [`Bdd::staged_vote_fold`] for
//!   regions — with one two-alternative stage per non-constant unit
//!   (fires: `+q2ⱼ`, otherwise: `−q2ⱼ`) and the final integer score
//!   thresholded at `≥ 0`.
//!
//! Both legs run the *same* `i64` arithmetic as
//! [`QuantizedMlp::predict_quantized`] / [`QuantizedSvm::predict_quantized`]
//! (an `i64` partial sum travels as its two's-complement `u64` bit
//! pattern through the fold state), so the encodings agree with the
//! quantized predictions **bit for bit** — the count-preservation
//! invariant the conformance suites pin. Hidden units whose threshold is
//! decided by the exact best/worst-case input bounds fold into the
//! initial score on both legs, so neither materializes guards for
//! constant activations.

use crate::encode::{
    assert_feature_block, regions_from_diagram, AdditiveVoteCompiler, CnfEncodable, DecisionRegion,
};
use crate::error::EvalError;
use crate::tree2cnf::TreeLabel;
use mlkit::quant::{QuantizedMlp, QuantizedSvm};
use satkit::bdd::{Bdd, BddError, NodeRef, ReorderPolicy};
use satkit::card::{weighted_at_least, ThresholdLit};
use satkit::cnf::{Cnf, Lit, Var};
use std::collections::HashMap;

/// The feature literals paired with their integer weights, for the
/// pseudo-Boolean helpers (feature `i` is variable `i`).
fn feature_terms(weights: &[i64]) -> Vec<(Lit, i64)> {
    weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (Var(i as u32).pos(), w))
        .collect()
}

/// Builds the BDD of `Σ weights[i]·xᵢ ≥ threshold` over the feature
/// variables: the same memoized `(index, partial sum)` branching program
/// as [`satkit::card::weighted_at_least`], with [`Bdd::ite`] in place of
/// Tseitin clauses, so both legs fold the same states to the same
/// constants. The manager's node budget bounds the build.
fn weighted_threshold_bdd(
    bdd: &mut Bdd,
    weights: &[i64],
    threshold: i64,
) -> Result<NodeRef, BddError> {
    let n = weights.len();
    let mut suffix_min = vec![0i64; n + 1];
    let mut suffix_max = vec![0i64; n + 1];
    for i in (0..n).rev() {
        suffix_min[i] = suffix_min[i + 1] + weights[i].min(0);
        suffix_max[i] = suffix_max[i + 1] + weights[i].max(0);
    }
    let mut builder = BddThresholdBuilder {
        weights,
        threshold,
        suffix_min,
        suffix_max,
        memo: HashMap::new(),
    };
    builder.node(bdd, 0, 0)
}

struct BddThresholdBuilder<'a> {
    weights: &'a [i64],
    threshold: i64,
    suffix_min: Vec<i64>,
    suffix_max: Vec<i64>,
    memo: HashMap<(usize, i64), NodeRef>,
}

impl BddThresholdBuilder<'_> {
    fn node(&mut self, bdd: &mut Bdd, index: usize, sum: i64) -> Result<NodeRef, BddError> {
        if sum + self.suffix_min[index] >= self.threshold {
            return Ok(bdd.constant(true));
        }
        if sum + self.suffix_max[index] < self.threshold {
            return Ok(bdd.constant(false));
        }
        if let Some(&node) = self.memo.get(&(index, sum)) {
            return Ok(node);
        }
        let hi = self.node(bdd, index + 1, sum + self.weights[index])?;
        let lo = self.node(bdd, index + 1, sum)?;
        let test = bdd.literal(index as u32, true)?;
        let node = bdd.ite(test, hi, lo)?;
        self.memo.insert((index, sum), node);
        Ok(node)
    }
}

impl CnfEncodable for QuantizedSvm {
    fn num_features(&self) -> usize {
        QuantizedSvm::num_features(self)
    }

    /// `Σ qw·x + qb ≥ 0 ⇔ Σ qw·x ≥ −qb`: one equivalence-encoded
    /// threshold indicator, asserted in the label's polarity.
    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel) {
        assert_feature_block(cnf, QuantizedSvm::num_features(self));
        let terms = feature_terms(self.weights());
        let wanted = matches!(label, TreeLabel::True);
        match weighted_at_least(cnf, &terms, -self.bias()) {
            ThresholdLit::Const(value) => {
                if value != wanted {
                    cnf.add_clause(Vec::new()); // the region is empty
                }
            }
            ThresholdLit::Lit(lit) => cnf.add_unit(if wanted { lit } else { !lit }),
        }
    }

    /// The threshold diagram *is* the decision diagram: its true paths
    /// are the positive regions, its false paths the negative ones.
    fn decision_regions_bounded(
        &self,
        vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError> {
        let mut bdd =
            Bdd::with_node_budget(vote_node_bound).with_reorder_policy(ReorderPolicy::OnPressure);
        let root = weighted_threshold_bdd(&mut bdd, self.weights(), -self.bias())?;
        regions_from_diagram(&mut bdd, root, ReorderPolicy::OnPressure)
    }
}

/// The single source of truth for the MLP output-layer fold, shared by
/// the CNF compiler ([`encode_mlp_label`]) and the region extraction
/// ([`mlp_decision_regions`]) the same way [`GradientBoosting`]'s fold
/// plan is shared — both legs must advance the same `i64` states in the
/// same stage order, or classic-vs-compiled bit-identity breaks.
///
/// Hidden units whose pre-activation is decided by the exact input
/// bounds (`Σ min(w, 0)` / `Σ max(w, 0)` are attained by real inputs)
/// contribute their `±q2ⱼ` to the base score instead of a stage; the
/// remaining units become two-alternative stages in index order.
///
/// [`GradientBoosting`]: mlkit::gbdt::GradientBoosting
struct MlpFoldPlan {
    /// `qb2` plus the contributions of all constant-activation units.
    base: i64,
    /// Hidden-unit indices with input-dependent activations, in order.
    units: Vec<usize>,
}

impl MlpFoldPlan {
    fn of(model: &QuantizedMlp) -> MlpFoldPlan {
        let mut base = model.output_bias();
        let mut units = Vec::new();
        for j in 0..model.hidden_units() {
            let weights = model.hidden_weights(j);
            let threshold = -model.hidden_bias(j);
            let min: i64 = weights.iter().map(|&w| w.min(0)).sum();
            let max: i64 = weights.iter().map(|&w| w.max(0)).sum();
            if min >= threshold {
                base += model.output_weight(j); // always fires: h = +1
            } else if max < threshold {
                base -= model.output_weight(j); // never fires: h = −1
            } else {
                units.push(j);
            }
        }
        MlpFoldPlan { base, units }
    }

    /// The state-advance closure: alternative 0 is "the unit fires"
    /// (`+q2ⱼ`), the otherwise-alternative is "it does not" (`−q2ⱼ`),
    /// the `i64` score travelling as its `u64` bit pattern.
    fn cast<'m>(&'m self, model: &'m QuantizedMlp) -> impl Fn(usize, usize, u64) -> u64 + 'm {
        move |stage, alternative, state| {
            let weight = model.output_weight(self.units[stage]);
            let score = state as i64;
            (if alternative == 0 {
                score + weight
            } else {
                score - weight
            }) as u64
        }
    }

    /// The decision closure: the predictor's own `score ≥ 0` threshold.
    fn decide(state: u64) -> bool {
        (state as i64) >= 0
    }
}

/// Encodes the quantized-MLP `label` region with an explicit vote-node
/// bound: one threshold indicator per non-constant hidden unit, then the
/// staged additive fold over `±q2ⱼ` contributions, thresholded at
/// `score ≥ 0` — exactly [`QuantizedMlp::predict_quantized`]. Exposed at
/// crate level so tests can exercise the bound directly.
pub(crate) fn encode_mlp_label(
    model: &QuantizedMlp,
    cnf: &mut Cnf,
    label: TreeLabel,
    bound: usize,
) -> Result<(), EvalError> {
    assert_feature_block(cnf, QuantizedMlp::num_features(model));
    let plan = MlpFoldPlan::of(model);
    let stages: Vec<Vec<Lit>> = plan
        .units
        .iter()
        .map(|&j| {
            let terms = feature_terms(model.hidden_weights(j));
            match weighted_at_least(cnf, &terms, -model.hidden_bias(j)) {
                ThresholdLit::Lit(lit) => vec![lit],
                ThresholdLit::Const(_) => {
                    unreachable!("constant-activation units fold into the base score")
                }
            }
        })
        .collect();
    let mut compiler =
        AdditiveVoteCompiler::new(&stages, plan.cast(model), MlpFoldPlan::decide, bound);
    compiler.assert_label(cnf, plan.base as u64, label)
}

/// Extracts the quantized-MLP decision regions through
/// [`Bdd::staged_vote_fold`]: one feature-space threshold diagram per
/// non-constant hidden unit as the stage guard, the same `±q2ⱼ` fold and
/// `score ≥ 0` decision as the CNF leg. Exposed at crate level (with an
/// explicit [`ReorderPolicy`]) for order-sensitivity tests; the trait
/// implementation always passes [`ReorderPolicy::OnPressure`].
pub(crate) fn mlp_decision_regions(
    model: &QuantizedMlp,
    vote_node_bound: usize,
    policy: ReorderPolicy,
) -> Result<Vec<DecisionRegion>, EvalError> {
    let mut bdd = Bdd::with_node_budget(vote_node_bound).with_reorder_policy(policy);
    let plan = MlpFoldPlan::of(model);
    let mut stages = Vec::with_capacity(plan.units.len());
    for &j in &plan.units {
        let guard = weighted_threshold_bdd(&mut bdd, model.hidden_weights(j), -model.hidden_bias(j))?;
        stages.push(vec![guard]);
    }
    let root = bdd.staged_vote_fold(
        &stages,
        plan.base as u64,
        &plan.cast(model),
        &MlpFoldPlan::decide,
        vote_node_bound,
    )?;
    regions_from_diagram(&mut bdd, root, policy)
}

impl CnfEncodable for QuantizedMlp {
    fn num_features(&self) -> usize {
        QuantizedMlp::num_features(self)
    }

    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel) {
        self.try_encode_label(cnf, label)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_encode_label_bounded(
        &self,
        cnf: &mut Cnf,
        label: TreeLabel,
        vote_node_bound: usize,
    ) -> Result<(), EvalError> {
        encode_mlp_label(self, cnf, label, vote_node_bound)
    }

    fn decision_regions_bounded(
        &self,
        vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError> {
        mlp_decision_regions(self, vote_node_bound, ReorderPolicy::OnPressure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::mlp::{Mlp, MlpConfig};
    use mlkit::quant::DEFAULT_QUANT_BITS;
    use mlkit::svm::{LinearSvm, SvmConfig};
    use mlkit::Classifier;
    use modelcount::exact::ExactCounter;

    fn dataset_from_fn(num_features: usize, f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(num_features);
        for bits in 0u32..(1 << num_features) {
            let row: Vec<u8> = (0..num_features).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn fit_quantized_mlp(d: &Dataset, hidden: usize, seed: u64) -> QuantizedMlp {
        let mlp = Mlp::fit(
            d,
            MlpConfig {
                hidden_units: hidden,
                epochs: 30,
                seed,
                ..MlpConfig::default()
            },
        );
        QuantizedMlp::from_mlp(&mlp, DEFAULT_QUANT_BITS)
    }

    fn fit_quantized_svm(d: &Dataset, seed: u64) -> QuantizedSvm {
        let svm = LinearSvm::fit(
            d,
            SvmConfig {
                seed,
                ..SvmConfig::default()
            },
        );
        QuantizedSvm::from_svm(&svm, DEFAULT_QUANT_BITS)
    }

    /// The core invariant: the projected models of `label_cnf` are exactly
    /// the inputs `predict_quantized` maps to that label.
    fn check_encoding_matches_predictions<M: CnfEncodable + Classifier>(model: &M) {
        let n = CnfEncodable::num_features(model);
        let counter = ExactCounter::new();
        let mut expected_true = 0u128;
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            if model.predict(&features) {
                expected_true += 1;
            }
        }
        let t = counter
            .count(&model.label_cnf(TreeLabel::True))
            .expect("no budget");
        let f = counter
            .count(&model.label_cnf(TreeLabel::False))
            .expect("no budget");
        assert_eq!(t, expected_true, "true-region count");
        assert_eq!(f, (1u128 << n) - expected_true, "false-region count");
    }

    /// Every input satisfies exactly one region cube, carrying the
    /// quantized prediction's label.
    fn check_regions_partition<M: CnfEncodable + Classifier>(model: &M) {
        let n = CnfEncodable::num_features(model);
        let regions = model.decision_regions().expect("within the default bound");
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let matching: Vec<&DecisionRegion> = regions
                .iter()
                .filter(|r| {
                    r.cube
                        .iter()
                        .all(|l| l.eval(features[l.var().index()] != 0))
                })
                .collect();
            assert_eq!(matching.len(), 1, "input {features:?} must hit one region");
            let expected = if model.predict(&features) {
                TreeLabel::True
            } else {
                TreeLabel::False
            };
            assert_eq!(matching[0].label, expected, "input {features:?}");
        }
    }

    #[test]
    fn svm_encoding_matches_quantized_predictions() {
        for (seed, f) in [
            (0u64, (|x: &[u8]| x[0] == 1) as fn(&[u8]) -> bool),
            (1, |x: &[u8]| x.iter().map(|&b| b as usize).sum::<usize>() >= 2),
            (2, |x: &[u8]| x[1] == 0 || x[3] == 1),
        ] {
            let d = dataset_from_fn(4, f);
            let svm = fit_quantized_svm(&d, seed);
            check_encoding_matches_predictions(&svm);
            check_regions_partition(&svm);
        }
    }

    #[test]
    fn mlp_encoding_matches_quantized_predictions() {
        for (hidden, seed, f) in [
            (1usize, 0u64, (|x: &[u8]| x[0] == 1) as fn(&[u8]) -> bool),
            (3, 1, |x: &[u8]| (x[0] ^ x[2]) == 1 || x[3] == 1),
            (4, 2, |x: &[u8]| x.iter().map(|&b| b as usize).sum::<usize>() >= 2),
        ] {
            let d = dataset_from_fn(4, f);
            let mlp = fit_quantized_mlp(&d, hidden, seed);
            check_encoding_matches_predictions(&mlp);
            check_regions_partition(&mlp);
        }
    }

    #[test]
    fn constant_svm_regions_cover_the_space_with_one_cube() {
        // A single-class dataset trains an always-positive separator: one
        // full-space region, an empty complementary count.
        let mut d = Dataset::new(3);
        d.push(vec![0, 1, 0], true);
        d.push(vec![1, 1, 1], true);
        let svm = fit_quantized_svm(&d, 0);
        assert!((0u32..8).all(|bits| {
            let features: Vec<u8> = (0..3).map(|k| ((bits >> k) & 1) as u8).collect();
            svm.predict_quantized(&features)
        }));
        check_encoding_matches_predictions(&svm);
        let regions = svm.decision_regions().expect("trivial diagram");
        assert_eq!(regions.len(), 1);
        assert!(regions[0].cube.is_empty());
        assert_eq!(regions[0].label, TreeLabel::True);
    }

    #[test]
    fn mlp_vote_bound_is_a_typed_error() {
        let d = dataset_from_fn(4, |x| (x[0] ^ x[1]) == 1);
        let mlp = fit_quantized_mlp(&d, 4, 3);
        assert!(mlp.decision_regions().is_ok());
        let err = mlp
            .decision_regions_bounded(1)
            .expect_err("one node cannot hold a four-unit threshold fold");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
            "unexpected error {err:?}"
        );
        let mut cnf = Cnf::new(4);
        let err = encode_mlp_label(&mlp, &mut cnf, TreeLabel::True, 1)
            .expect_err("one node cannot hold the CNF fold either");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn threshold_bdd_matches_integer_arithmetic() {
        let weights: [i64; 5] = [3, -2, 0, 5, -4];
        for threshold in [-7, -1, 0, 1, 2, 4, 9] {
            let mut bdd = Bdd::with_node_budget(1 << 12);
            let root = weighted_threshold_bdd(&mut bdd, &weights, threshold).expect("small DP");
            for bits in 0u32..32 {
                let assignment: Vec<bool> = (0..5).map(|k| bits >> k & 1 == 1).collect();
                let sum: i64 = weights
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| assignment[*i])
                    .map(|(_, &w)| w)
                    .sum();
                assert_eq!(
                    bdd.eval(root, &assignment),
                    sum >= threshold,
                    "weights {weights:?}, threshold {threshold}, input {assignment:?}"
                );
            }
        }
    }
}
