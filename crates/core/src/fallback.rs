//! Graceful degradation: the budget-fallback ladder from exact counting to
//! a symmetry-broken exact retry to (ε, δ)-approximate per-region counts.
//!
//! The exact engines answer [`CountOutcome::BudgetExhausted`] when a
//! decision/node allowance blows, and by default that kills the whole table
//! row. [`FallbackPolicy`] lets the query plan fail soft instead, climbing a
//! typed ladder per conditioned count:
//!
//! 1. **Exact** — whatever the configured backend produced. Anything other
//!    than `BudgetExhausted` passes through untouched.
//! 2. **Symmetry-broken exact retry, verified** — conjoin the
//!    [`relspec::symmetry`] lex-leader predicates for
//!    [`SymmetryBreaking::Full`] onto the query, shrinking the space by the
//!    orbit structure of the property, and recount exactly under a fresh
//!    allowance. The constrained count is scaled back to the full space by
//!    the correction factor `kept(baked) / kept(Full)` — the ratio of
//!    lex-leader representatives admitted by the symmetry already baked
//!    into the formula to those admitted by the full generator set. That
//!    scaling is an orbit-average heuristic (decision-region cubes are not
//!    symmetry-invariant), so on its own it carries **no** (ε, δ)
//!    guarantee. It is therefore never reported unverified: the ladder
//!    always computes the rung-3 anchor at the tightened tolerance
//!    ε′ = √(1+ε) − 1 and accepts the rung-2 value only when it lies
//!    inside the anchor's `[a/(1+ε′), a·(1+ε′)]` band. Since the anchor is
//!    within `1+ε′` of the truth with probability ≥ 1 − δ, an accepted
//!    rung-2 value is within `(1+ε′)² = 1+ε` of the truth with the same
//!    probability — the advertised label holds either way.
//! 3. **(ε, δ)-approximate count** — the
//!    [`modelcount::approx`] XOR-hash counter over the conditioned query,
//!    run at ε′ so it doubles as the rung-2 verifier. The seed is derived
//!    from [`cnf_cube_fingerprint`], i.e. from the `(formula, region
//!    cube)` pair itself, so the estimate for a given region is one
//!    deterministic value no matter which scheduler thread reaches it
//!    first or in what order.
//!
//! The ladder always lands: rung 3 is enumeration-based and has no budget,
//! so an enabled policy turns every `BudgetExhausted` into an `Approx`
//! outcome that genuinely satisfies the policy's (ε, δ). Aggregation then
//! follows the existing largest-ε / union-bound-δ rules into
//! `AccMcResult::approx` / `DiffMcResult::approx`, and degraded rows are
//! marked `A` in the reports.

use crate::counter::{cnf_cube_fingerprint, CountOutcome};
use modelcount::approx::{ApproxConfig, ApproxCounter};
use modelcount::exact::ExactCounter;
use relspec::symmetry::{symmetry_breaking_expr, SymmetryBreaking};
use satkit::cnf::{Cnf, Lit, Var};
use satkit::expr::TseitinEncoder;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Fresh node allowance for the rung-2 exact retry and for the one-off
/// lex-leader representative counts behind its correction factor. Matches
/// the table harness' default decision budget; if the symmetry-broken
/// query blows this too, the ladder falls through to rung 3.
const RETRY_NODE_BUDGET: u64 = 20_000_000;

/// What a query plan does when a count comes back `BudgetExhausted`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FallbackPolicy {
    /// Propagate the exhaustion: the row reports no whole-space result
    /// (today's behavior, and the default).
    #[default]
    Fail,
    /// Climb the ladder: symmetry-broken exact retry, then per-region
    /// (ε, δ)-approximate counts with deterministic seeds.
    SymmetryThenApprox {
        /// Multiplicative tolerance of the rung-3 estimate.
        epsilon: f64,
        /// Failure probability of the rung-3 guarantee.
        delta: f64,
    },
}

impl FallbackPolicy {
    /// The degradation ladder with the approximate counter's default
    /// tolerances.
    pub fn approx() -> Self {
        let config = ApproxConfig::default();
        FallbackPolicy::SymmetryThenApprox {
            epsilon: config.epsilon,
            delta: config.delta,
        }
    }

    /// Whether the policy degrades instead of failing.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, FallbackPolicy::Fail)
    }

    /// Parses the `--fallback` CLI syntax: `exact`, `approx`, or
    /// `approx:EPS,DELTA`.
    pub fn parse(input: &str) -> Result<Self, String> {
        if input == "exact" {
            return Ok(FallbackPolicy::Fail);
        }
        if input == "approx" {
            return Ok(FallbackPolicy::approx());
        }
        if let Some(tolerances) = input.strip_prefix("approx:") {
            let parts: Vec<&str> = tolerances.split(',').collect();
            if let [eps, delta] = parts[..] {
                let epsilon: f64 = eps
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid fallback epsilon {:?}", eps.trim()))?;
                let delta: f64 = delta
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid fallback delta {:?}", delta.trim()))?;
                if epsilon.is_nan() || epsilon <= 0.0 {
                    return Err(format!("fallback epsilon must be > 0, got {epsilon}"));
                }
                if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
                    return Err(format!("fallback delta must be in (0, 1), got {delta}"));
                }
                return Ok(FallbackPolicy::SymmetryThenApprox { epsilon, delta });
            }
            return Err(format!(
                "invalid fallback tolerances {tolerances:?} (expected approx:EPS,DELTA)"
            ));
        }
        Err(format!(
            "unknown fallback policy {input:?} (expected exact or approx[:eps,delta])"
        ))
    }
}

impl fmt::Display for FallbackPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackPolicy::Fail => write!(f, "exact"),
            FallbackPolicy::SymmetryThenApprox { epsilon, delta } => {
                write!(f, "approx:{epsilon},{delta}")
            }
        }
    }
}

/// The per-evaluation rescue plan: an enabled [`FallbackPolicy`] bound to
/// what the plan knows about the query space — whether it is an `n × n`
/// adjacency matrix (rung 2 needs the scope to build lex-leader
/// predicates) and which symmetry breaking is already baked into the
/// formulas (rung 2's correction factor).
#[derive(Debug, Clone, Copy)]
pub struct FallbackLadder {
    epsilon: f64,
    delta: f64,
    scope: Option<usize>,
    baked: SymmetryBreaking,
}

impl FallbackLadder {
    /// Builds the ladder, or `None` under [`FallbackPolicy::Fail`].
    /// `scope` is `Some(n)` when the projected variables are the cells of
    /// an `n × n` adjacency matrix; `baked` names the symmetry-breaking
    /// predicates already conjoined into the formulas being counted.
    pub fn new(
        policy: FallbackPolicy,
        scope: Option<usize>,
        baked: SymmetryBreaking,
    ) -> Option<Self> {
        match policy {
            FallbackPolicy::Fail => None,
            FallbackPolicy::SymmetryThenApprox { epsilon, delta } => Some(FallbackLadder {
                epsilon,
                delta,
                scope,
                baked,
            }),
        }
    }

    /// Rescues one exhausted conditioned count `cnf ∧ cube` into an
    /// [`CountOutcome::Approx`] that genuinely satisfies the policy's
    /// (ε, δ). Never returns `BudgetExhausted`.
    ///
    /// The rung-3 anchor always runs, at the tightened tolerance
    /// [`verification_epsilon`] — it is the only rung with a PAC
    /// guarantee. The rung-2 orbit-scaled exact count, when available and
    /// inside the anchor's band, replaces the anchor as the reported
    /// estimate (it is typically far closer to the truth than a hash
    /// estimate); outside the band it is discarded as the heuristic it is.
    pub fn rescue(&self, cnf: &Cnf, cube: &[Lit]) -> CountOutcome {
        let anchor_epsilon = verification_epsilon(self.epsilon);
        let anchor = match approx_conditioned(cnf, cube, anchor_epsilon, self.delta) {
            CountOutcome::Approx { estimate, .. } => estimate,
            other => return other,
        };
        let estimate = match self.symmetry_retry(cnf, cube) {
            Some(scaled) if within_band(scaled, anchor, anchor_epsilon) => scaled,
            _ => anchor,
        };
        CountOutcome::Approx {
            estimate,
            epsilon: self.epsilon,
            delta: self.delta,
        }
    }

    /// Rung 2: recount `cnf ∧ SB_full ∧ cube` exactly under a fresh
    /// allowance and scale back to the full space in integer arithmetic
    /// (round-half-up), so counts past 2^53 lose no precision. `None`
    /// when the space shape is unknown, the formula is already fully
    /// broken, the constrained count blows the fresh budget too, or the
    /// scaling overflows `u128`.
    fn symmetry_retry(&self, cnf: &Cnf, cube: &[Lit]) -> Option<u128> {
        let n = self.scope?;
        if self.baked == SymmetryBreaking::Full {
            return None;
        }
        let kept_full = kept_count(n, SymmetryBreaking::Full)?;
        let kept_baked = kept_count(n, self.baked)?;
        if kept_full == 0 {
            return None;
        }
        let mut constrained = cnf.clone();
        conjoin_symmetry(&mut constrained, n, SymmetryBreaking::Full);
        for &lit in cube {
            constrained.add_unit(lit);
        }
        let constrained_count =
            ExactCounter::with_node_budget(RETRY_NODE_BUDGET).count(&constrained)?;
        constrained_count
            .checked_mul(kept_baked)?
            .checked_add(kept_full / 2)?
            .checked_div(kept_full)
    }
}

/// The tightened rung-3 tolerance ε′ with `(1+ε′)² ≤ 1+ε`: an anchor
/// within `1+ε′` of the truth certifies any value inside its `1+ε′` band
/// as within `1+ε` of the truth. The nominal √(1+ε) − 1 is shaved by one
/// part in 10⁹ so f64 rounding in the square root can never push the
/// squared factor past `1+ε`.
fn verification_epsilon(epsilon: f64) -> f64 {
    ((1.0 + epsilon).sqrt() - 1.0) * (1.0 - 1e-9)
}

/// Whether `candidate` lies in `[anchor/(1+epsilon), anchor·(1+epsilon)]`.
/// The band is shrunk by one part in 10⁹ so u128→f64 conversion and
/// multiplication rounding only ever *reject* a borderline candidate
/// (which falls back to the anchor — still guaranteed), never accept one
/// outside the true band.
fn within_band(candidate: u128, anchor: u128, epsilon: f64) -> bool {
    let factor = (1.0 + epsilon) * (1.0 - 1e-9);
    let (candidate, anchor) = (candidate as f64, anchor as f64);
    candidate <= anchor * factor && anchor <= candidate * factor
}

/// Rescues the outcomes of a batched [`count_cubes`] call. Batch counters
/// may stop at the first `BudgetExhausted` outcome and omit the rest, so
/// every cube from the first exhaustion on — reported or not — is rescued
/// individually. With no ladder the outcomes pass through untouched.
///
/// [`count_cubes`]: crate::counter::QueryCounter::count_cubes
pub(crate) fn rescue_batch(
    ladder: Option<&FallbackLadder>,
    cnf: &Cnf,
    cubes: &[&[Lit]],
    mut outcomes: Vec<CountOutcome>,
) -> Vec<CountOutcome> {
    let Some(ladder) = ladder else {
        return outcomes;
    };
    for (index, cube) in cubes.iter().enumerate() {
        if index >= outcomes.len() {
            outcomes.push(ladder.rescue(cnf, cube));
        } else if outcomes[index].is_budget_exhausted() {
            outcomes[index] = ladder.rescue(cnf, cube);
        }
    }
    outcomes
}

/// Rung 3 directly: the XOR-hash (ε, δ) estimate of `cnf ∧ cube` with the
/// deterministic per-`(formula, cube)` seed. Exposed for `mcml-serve`,
/// which answers degraded units without a plan-level ladder.
pub fn approx_conditioned(cnf: &Cnf, cube: &[Lit], epsilon: f64, delta: f64) -> CountOutcome {
    let seed = derive_seed(cnf, cube);
    let mut conditioned = cnf.clone();
    for &lit in cube {
        conditioned.add_unit(lit);
    }
    let counter = ApproxCounter::new(ApproxConfig {
        epsilon,
        delta,
        seed,
    });
    CountOutcome::Approx {
        estimate: counter.count(&conditioned),
        epsilon,
        delta,
    }
}

/// The deterministic rung-3 seed: a fold of [`cnf_cube_fingerprint`], so it
/// depends only on the conditioned query (which encodes property, scope and
/// region), never on scheduler order or thread count.
pub fn derive_seed(cnf: &Cnf, cube: &[Lit]) -> u64 {
    let fingerprint = cnf_cube_fingerprint(cnf, cube);
    (fingerprint >> 64) as u64 ^ fingerprint as u64
}

/// How many of the `2^(n²)` adjacency matrices the lex-leader predicates
/// for `sb` keep. Counted once per `(n, sb)` per process (an exact
/// projected count of the standalone predicate CNF) and memoized; `None`
/// if even that count blows the retry budget.
fn kept_count(n: usize, sb: SymmetryBreaking) -> Option<u128> {
    let num_primary = n * n;
    if !sb.is_enabled() {
        if num_primary >= 128 {
            return None;
        }
        return Some(1u128 << num_primary);
    }
    type KeptMemo = Mutex<HashMap<(usize, SymmetryBreaking), Option<u128>>>;
    static KEPT: OnceLock<KeptMemo> = OnceLock::new();
    let memo = KEPT.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&cached) = memo.lock().expect("kept-count memo poisoned").get(&(n, sb)) {
        return cached;
    }
    let mut encoder = TseitinEncoder::new(num_primary);
    let predicate = symmetry_breaking_expr(n, sb);
    encoder.assert(&predicate);
    let mut cnf = encoder.into_cnf();
    cnf.set_projection((0..num_primary as u32).map(Var).collect());
    let count = ExactCounter::with_node_budget(RETRY_NODE_BUDGET).count(&cnf);
    memo.lock()
        .expect("kept-count memo poisoned")
        .insert((n, sb), count);
    count
}

/// Conjoins the lex-leader predicates for `sb` over an `n × n` adjacency
/// matrix onto `cnf`. The predicates are Tseitin-encoded standalone and
/// their auxiliary variables are remapped past `cnf`'s existing ones, so
/// the two encodings never collide; `cnf`'s projection is frozen first so
/// the new auxiliaries stay outside the counted set.
fn conjoin_symmetry(cnf: &mut Cnf, n: usize, sb: SymmetryBreaking) {
    let num_primary = n * n;
    debug_assert!(cnf.num_vars() >= num_primary);
    if cnf.projection().is_empty() {
        cnf.set_projection((0..cnf.num_vars() as u32).map(Var).collect());
    }
    let mut encoder = TseitinEncoder::new(num_primary);
    let predicate = symmetry_breaking_expr(n, sb);
    encoder.assert(&predicate);
    let sb_cnf = encoder.into_cnf();
    let offset = cnf.num_vars() - num_primary;
    cnf.ensure_vars(cnf.num_vars() + (sb_cnf.num_vars() - num_primary));
    for clause in sb_cnf.clauses() {
        let remapped: Vec<Lit> = clause
            .iter()
            .map(|&lit| {
                let var = lit.var().index();
                if var < num_primary {
                    lit
                } else {
                    Lit::from_var(Var((var + offset) as u32), lit.is_positive())
                }
            })
            .collect();
        cnf.add_clause(remapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelcount::brute::brute_force_count;
    use relspec::properties::Property;
    use relspec::translate::{translate_to_cnf, TranslateOptions};

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!(
            FallbackPolicy::parse("exact").unwrap(),
            FallbackPolicy::Fail
        );
        assert_eq!(
            FallbackPolicy::parse("approx").unwrap(),
            FallbackPolicy::approx()
        );
        assert_eq!(
            FallbackPolicy::parse("approx:0.8,0.1").unwrap(),
            FallbackPolicy::SymmetryThenApprox {
                epsilon: 0.8,
                delta: 0.1
            }
        );
        assert!(FallbackPolicy::parse("maybe").is_err());
        assert!(FallbackPolicy::parse("approx:0.8").is_err());
        assert!(FallbackPolicy::parse("approx:0,0.1").is_err());
        assert!(FallbackPolicy::parse("approx:0.8,1.5").is_err());
        assert_eq!(
            FallbackPolicy::parse("approx:0.8,0.1").unwrap().to_string(),
            "approx:0.8,0.1"
        );
        assert_eq!(FallbackPolicy::Fail.to_string(), "exact");
    }

    #[test]
    fn fail_policy_builds_no_ladder() {
        assert!(
            FallbackLadder::new(FallbackPolicy::Fail, Some(3), SymmetryBreaking::None).is_none()
        );
        assert!(
            FallbackLadder::new(FallbackPolicy::approx(), Some(3), SymmetryBreaking::None)
                .is_some()
        );
    }

    #[test]
    fn conjoining_full_symmetry_matches_the_baked_translation() {
        // φ ∧ SB_full built by remapped conjunction must count exactly like
        // the translation that bakes Full in from the start.
        for property in [Property::Reflexive, Property::Antisymmetric] {
            let formula = property.spec();
            let plain = translate_to_cnf(&formula, TranslateOptions::new(3));
            let baked = translate_to_cnf(
                &formula,
                TranslateOptions::new(3).with_symmetry(SymmetryBreaking::Full),
            );
            let mut conjoined = plain.cnf_positive();
            conjoin_symmetry(&mut conjoined, 3, SymmetryBreaking::Full);
            let exact = ExactCounter::new();
            assert_eq!(
                exact.count(&conjoined),
                exact.count(baked.cnf_positive_ref()),
                "{} at scope 3",
                property.name()
            );
        }
    }

    #[test]
    fn kept_counts_match_brute_force_at_scope_3() {
        // 512 unconstrained matrices; Full keeps the 104 lex-leaders
        // (pinned by relspec::symmetry's own tests).
        assert_eq!(kept_count(3, SymmetryBreaking::None), Some(512));
        assert_eq!(kept_count(3, SymmetryBreaking::Full), Some(104));
        let transpositions = kept_count(3, SymmetryBreaking::Transpositions).unwrap();
        assert!((104..512).contains(&(transpositions as usize)));
    }

    #[test]
    fn verification_epsilon_squared_stays_within_the_policy_tolerance() {
        for epsilon in [0.05, 0.1, 0.4, 0.8, 1.0, 2.0, 10.0] {
            let inner = verification_epsilon(epsilon);
            assert!(
                inner > 0.0 && inner < epsilon,
                "ε′ out of range for {epsilon}"
            );
            assert!(
                (1.0 + inner) * (1.0 + inner) <= 1.0 + epsilon,
                "(1+ε′)² must not exceed 1+ε for {epsilon}"
            );
        }
    }

    #[test]
    fn band_check_rejects_candidates_outside_the_anchor_tolerance() {
        // ε′ for the default ε = 0.4 is ≈ 0.1832.
        let inner = verification_epsilon(0.4);
        assert!(within_band(100, 100, inner));
        assert!(within_band(110, 100, inner));
        assert!(within_band(100, 110, inner));
        assert!(!within_band(130, 100, inner));
        assert!(!within_band(100, 130, inner));
        assert!(within_band(0, 0, inner));
        assert!(!within_band(0, 100, inner));
        assert!(!within_band(100, 0, inner));
    }

    #[test]
    fn rescue_respects_the_advertised_tolerance() {
        // Rung 2 engages here (scope known, nothing baked), so this pins
        // the whole rescue — orbit-scaled value or anchor, whichever was
        // reported — inside the advertised 1+ε of the brute-force truth.
        let formula = Property::Transitive.spec();
        let truth = translate_to_cnf(&formula, TranslateOptions::new(3));
        let cnf = truth.cnf_positive_ref();
        let ladder =
            FallbackLadder::new(FallbackPolicy::approx(), Some(3), SymmetryBreaking::None).unwrap();
        for cube in [&[][..], &[Lit::pos(0)][..], &[Lit::pos(0), Lit::neg(4)][..]] {
            let mut conditioned = cnf.clone();
            for &lit in cube {
                conditioned.add_unit(lit);
            }
            let expected = brute_force_count(&conditioned);
            match ladder.rescue(cnf, cube) {
                CountOutcome::Approx {
                    estimate, epsilon, ..
                } => {
                    let (est, truth_count) = (estimate as f64, expected as f64);
                    assert!(
                        est <= truth_count * (1.0 + epsilon)
                            && truth_count <= est * (1.0 + epsilon),
                        "estimate {estimate} outside 1+{epsilon} of {expected}"
                    );
                }
                other => panic!("expected an approx outcome, got {other:?}"),
            }
        }
    }

    #[test]
    fn rescue_is_deterministic_and_never_exhausted() {
        let formula = Property::Transitive.spec();
        let truth = translate_to_cnf(&formula, TranslateOptions::new(3));
        let ladder =
            FallbackLadder::new(FallbackPolicy::approx(), Some(3), SymmetryBreaking::None).unwrap();
        let cube = [Lit::pos(0), Lit::neg(4)];
        let first = ladder.rescue(truth.cnf_positive_ref(), &cube);
        let second = ladder.rescue(truth.cnf_positive_ref(), &cube);
        assert_eq!(first, second, "rescue must not depend on call order");
        assert!(!first.is_budget_exhausted());
        assert!(matches!(first, CountOutcome::Approx { .. }));
    }

    #[test]
    fn approx_rung_is_exact_below_the_pivot() {
        // Scope-2 conditioned counts are far below the pivot (~121 at the
        // default ε), where the XOR-hash counter's base case enumerates
        // exactly.
        let formula = Property::Reflexive.spec();
        let truth = translate_to_cnf(&formula, TranslateOptions::new(2));
        let cnf = truth.cnf_positive_ref();
        for cube in [&[][..], &[Lit::pos(1)][..], &[Lit::neg(1), Lit::pos(2)][..]] {
            let mut conditioned = cnf.clone();
            for &lit in cube {
                conditioned.add_unit(lit);
            }
            let expected = brute_force_count(&conditioned);
            let config = ApproxConfig::default();
            match approx_conditioned(cnf, cube, config.epsilon, config.delta) {
                CountOutcome::Approx { estimate, .. } => assert_eq!(estimate, expected),
                other => panic!("expected an approx outcome, got {other:?}"),
            }
        }
    }

    #[test]
    fn rescue_batch_fills_in_omitted_tail_outcomes() {
        let formula = Property::Reflexive.spec();
        let truth = translate_to_cnf(&formula, TranslateOptions::new(2));
        let cnf = truth.cnf_positive_ref();
        let owned_cubes = [vec![], vec![Lit::pos(1)], vec![Lit::neg(2)]];
        let cubes: Vec<&[Lit]> = owned_cubes.iter().map(Vec::as_slice).collect();
        // A batch counter that exhausted on the second cube and omitted the
        // third entirely.
        let partial = vec![
            CountOutcome::Exact(4),
            CountOutcome::BudgetExhausted { nodes_used: 1 },
        ];
        let ladder =
            FallbackLadder::new(FallbackPolicy::approx(), None, SymmetryBreaking::None).unwrap();
        let rescued = rescue_batch(Some(&ladder), cnf, &cubes, partial.clone());
        assert_eq!(rescued.len(), 3);
        assert_eq!(rescued[0], CountOutcome::Exact(4));
        assert!(matches!(rescued[1], CountOutcome::Approx { .. }));
        assert!(matches!(rescued[2], CountOutcome::Approx { .. }));
        // Without a ladder the partial batch passes through untouched.
        assert_eq!(rescue_batch(None, cnf, &cubes, partial.clone()), partial);
    }
}
