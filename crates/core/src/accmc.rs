//! AccMC: quantifying a classifier's performance over the entire bounded
//! input space with respect to a ground-truth formula φ.
//!
//! Following Section 4 of the paper, the four counts are model counts of
//! conjunctions of (¬)φ with the CNF of the model's positive / negative
//! decision region:
//!
//! * `tp = mc(φ ∧ model_true)`     * `fp = mc(¬φ ∧ model_true)`
//! * `tn = mc(¬φ ∧ model_false)`   * `fn = mc(φ ∧ model_false)`
//!
//! from which accuracy, precision, recall and F1 are derived exactly as for
//! dataset-based evaluation — except the "dataset" is now all 2^(n²)
//! adjacency matrices (optionally restricted by symmetry-breaking
//! predicates baked into φ).
//!
//! The analysis is generic on both axes: any
//! [`CnfEncodable`](crate::encode::CnfEncodable) model family (decision
//! trees, random forests, boosted stumps) and any
//! [`ModelCounter`](crate::counter::ModelCounter) backend.

use crate::backend::CounterBackend;
use crate::counter::{CountOutcome, ModelCounter};
use crate::encode::CnfEncodable;
use crate::error::EvalError;
use crate::tree2cnf::TreeLabel;
use mlkit::metrics::BinaryMetrics;
use relspec::translate::GroundTruth;
use std::time::{Duration, Instant};

/// The four whole-space counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceCounts {
    /// Inputs satisfying φ that the model classifies as positive.
    pub tp: u128,
    /// Inputs violating φ that the model classifies as positive.
    pub fp: u128,
    /// Inputs violating φ that the model classifies as negative.
    pub tn: u128,
    /// Inputs satisfying φ that the model classifies as negative.
    pub fn_: u128,
}

impl SpaceCounts {
    /// Total number of inputs covered by the four counts.
    pub fn total(&self) -> u128 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// The derived accuracy / precision / recall / F1 scores.
    pub fn metrics(&self) -> BinaryMetrics {
        BinaryMetrics::from_counts(self.tp, self.fp, self.tn, self.fn_)
    }
}

/// Result of one AccMC evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccMcResult {
    /// The four whole-space counts.
    pub counts: SpaceCounts,
    /// The derived scores.
    pub metrics: BinaryMetrics,
    /// Wall-clock time spent in the four counting calls (the paper's
    /// "Time[s]" column).
    pub counting_time: Duration,
    /// Whether all four counts are exact (`false` when at least one came
    /// from an approximate backend).
    pub exact: bool,
}

/// The AccMC analysis, parameterized by a counting backend.
#[derive(Debug, Clone)]
pub struct AccMc<'a, C: ModelCounter + ?Sized = CounterBackend> {
    backend: &'a C,
}

impl<'a, C: ModelCounter + ?Sized> AccMc<'a, C> {
    /// Creates the analysis over the given backend.
    pub fn new(backend: &'a C) -> Self {
        AccMc { backend }
    }

    /// Computes the whole-space confusion counts of `model` against the
    /// ground truth φ.
    ///
    /// Returns `Ok(None)` if the backend's budget was exhausted on any of
    /// the four counts (the paper's time-outs), and
    /// [`EvalError::FeatureMismatch`] if the model's feature count differs
    /// from the ground truth's primary-variable count.
    pub fn evaluate<M: CnfEncodable + ?Sized>(
        &self,
        ground_truth: &GroundTruth,
        model: &M,
    ) -> Result<Option<AccMcResult>, EvalError> {
        if model.num_features() != ground_truth.num_primary() {
            return Err(EvalError::FeatureMismatch {
                model_features: model.num_features(),
                expected_features: ground_truth.num_primary(),
                context: "ground truth",
            });
        }
        let start = Instant::now();
        let mut exact = true;
        let mut values = [0u128; 4];
        let cells = [
            (true, TreeLabel::True),
            (false, TreeLabel::True),
            (false, TreeLabel::False),
            (true, TreeLabel::False),
        ];
        for (slot, &(phi_positive, label)) in values.iter_mut().zip(&cells) {
            let outcome = self.count_one(ground_truth, model, phi_positive, label);
            match outcome.value() {
                None => return Ok(None),
                Some(v) => *slot = v,
            }
            exact &= outcome.is_exact();
        }
        let counts = SpaceCounts {
            tp: values[0],
            fp: values[1],
            tn: values[2],
            fn_: values[3],
        };
        Ok(Some(AccMcResult {
            counts,
            metrics: counts.metrics(),
            counting_time: start.elapsed(),
            exact,
        }))
    }

    fn count_one<M: CnfEncodable + ?Sized>(
        &self,
        ground_truth: &GroundTruth,
        model: &M,
        phi_positive: bool,
        label: TreeLabel,
    ) -> CountOutcome {
        let mut cnf = if phi_positive {
            ground_truth.cnf_positive()
        } else {
            ground_truth.cnf_negative()
        };
        model.encode_label(&mut cnf, label);
        self.backend.count(&cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::forest::{ForestConfig, RandomForest};
    use mlkit::tree::{DecisionTree, TreeConfig};
    use mlkit::Classifier;
    use relspec::instance::RelInstance;
    use relspec::properties::Property;
    use relspec::symmetry::SymmetryBreaking;
    use relspec::translate::{translate_to_cnf, TranslateOptions};

    /// Brute-force whole-space counts by iterating over every adjacency
    /// matrix at the scope.
    fn brute_counts<M: Classifier>(
        property: Property,
        scope: usize,
        symmetry: SymmetryBreaking,
        model: &M,
    ) -> SpaceCounts {
        let mut counts = SpaceCounts::default();
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            if !symmetry.keeps(&inst) {
                continue;
            }
            let truth = property.holds(&inst);
            let predicted = model.predict(&inst.to_features());
            match (truth, predicted) {
                (true, true) => counts.tp += 1,
                (false, true) => counts.fp += 1,
                (false, false) => counts.tn += 1,
                (true, false) => counts.fn_ += 1,
            }
        }
        counts
    }

    fn labeled_dataset(property: Property, scope: usize) -> Dataset {
        let mut d = Dataset::new(scope * scope);
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            d.push(inst.to_features(), property.holds(&inst));
        }
        d
    }

    #[test]
    fn counts_match_brute_force_scope3() {
        let scope = 3;
        for property in [
            Property::Reflexive,
            Property::Antisymmetric,
            Property::Function,
        ] {
            // Train on a small subsample so the tree is imperfect, which
            // exercises all four counts.
            let dataset = labeled_dataset(property, scope).subsample(60, 3);
            let tree = DecisionTree::fit(&dataset, TreeConfig::default());
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let backend = CounterBackend::exact();
            let result = AccMc::new(&backend)
                .evaluate(&gt, &tree)
                .expect("scopes match")
                .expect("no budget");
            let brute = brute_counts(property, scope, SymmetryBreaking::None, &tree);
            assert_eq!(result.counts, brute, "property {property}");
            assert_eq!(result.counts.total(), 512);
            assert!(result.exact);
        }
    }

    #[test]
    fn counts_match_brute_force_with_symmetry_breaking() {
        let scope = 3;
        let property = Property::PartialOrder;
        let dataset = labeled_dataset(property, scope).subsample(80, 9);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let symmetry = SymmetryBreaking::Transpositions;
        let gt = translate_to_cnf(
            &property.spec(),
            TranslateOptions::new(scope).with_symmetry(symmetry),
        );
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        let brute = brute_counts(property, scope, symmetry, &tree);
        assert_eq!(result.counts, brute);
    }

    #[test]
    fn forest_counts_match_brute_force() {
        let scope = 3;
        let property = Property::Antisymmetric;
        let dataset = labeled_dataset(property, scope).subsample(100, 7);
        let forest = RandomForest::fit(
            &dataset,
            ForestConfig {
                num_trees: 7,
                seed: 5,
                ..ForestConfig::default()
            },
        );
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend)
            .evaluate(&gt, &forest)
            .expect("scopes match")
            .expect("no budget");
        let brute = brute_counts(property, scope, SymmetryBreaking::None, &forest);
        assert_eq!(result.counts, brute);
        assert_eq!(result.counts.total(), 512);
    }

    #[test]
    fn perfect_tree_scores_one() {
        // Reflexive at scope 2 is learnable exactly from the full space.
        let property = Property::Reflexive;
        let dataset = labeled_dataset(property, 2);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(2));
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        assert_eq!(result.counts.fp, 0);
        assert_eq!(result.counts.fn_, 0);
        assert_eq!(result.metrics.accuracy, 1.0);
        assert_eq!(result.metrics.f1, 1.0);
    }

    #[test]
    fn approx_backend_close_to_exact() {
        let property = Property::Antisymmetric;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let exact = CounterBackend::exact();
        let approx = CounterBackend::approx();
        let re = AccMc::new(&exact)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        let ra = AccMc::new(&approx)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("approx always answers");
        assert!(!ra.exact);
        // The whole space at scope 3 is only 512, so the approximate counter
        // enumerates exactly.
        let close = |a: u128, b: u128| (a as f64 - b as f64).abs() <= (b as f64) * 0.6 + 8.0;
        assert!(close(ra.counts.tp, re.counts.tp));
        assert!(close(ra.counts.tn, re.counts.tn));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let property = Property::Transitive;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact_with_budget(1);
        assert_eq!(
            AccMc::new(&backend).evaluate(&gt, &tree),
            Ok(None),
            "budget exhaustion is a value, not an error"
        );
    }

    #[test]
    fn mismatched_scope_is_a_typed_error() {
        let dataset = labeled_dataset(Property::Reflexive, 2);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&Property::Reflexive.spec(), TranslateOptions::new(3));
        let backend = CounterBackend::exact();
        assert_eq!(
            AccMc::new(&backend).evaluate(&gt, &tree),
            Err(EvalError::FeatureMismatch {
                model_features: 4,
                expected_features: 9,
                context: "ground truth",
            })
        );
    }
}
