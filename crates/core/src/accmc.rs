//! AccMC: quantifying a classifier's performance over the entire bounded
//! input space with respect to a ground-truth formula φ.
//!
//! Following Section 4 of the paper, the four counts are model counts of
//! conjunctions of (¬)φ with the CNF of the model's positive / negative
//! decision region:
//!
//! * `tp = mc(φ ∧ model_true)`     * `fp = mc(¬φ ∧ model_true)`
//! * `tn = mc(¬φ ∧ model_false)`   * `fn = mc(φ ∧ model_false)`
//!
//! from which accuracy, precision, recall and F1 are derived exactly as for
//! dataset-based evaluation — except the "dataset" is now all 2^(n²)
//! adjacency matrices (optionally restricted by symmetry-breaking
//! predicates baked into φ).
//!
//! The analysis is generic on both axes: any
//! [`CnfEncodable`] model family (decision
//! trees, random forests, boosted stumps) and any
//! [`QueryCounter`] backend. Two evaluation
//! strategies are selectable through [`CountingEngine`]:
//!
//! * [`Classic`](CountingEngine::Classic) — encode the model's decision
//!   region into (¬)φ and run four fresh counts, exactly as above;
//! * [`Compiled`](CountingEngine::Compiled) — a *query plan* over the
//!   model's [`decision_regions`](CnfEncodable::decision_regions): never
//!   encode the model at all, and instead sum `mc(φ | region-cube)` over
//!   the regions. Against a
//!   [`CompiledCounter`](crate::counter::CompiledCounter) backend, φ and
//!   ¬φ are compiled to d-DNNF once per (property, scope) and every model
//!   of a batch costs only linear circuit traversals — the φ search is no
//!   longer repeated per model. All four families ride this plan: trees
//!   list their root-to-leaf paths, and the ensembles (RFT/GBDT/ABT)
//!   compile their vote circuits into region cube lists through
//!   [`satkit::bdd`], guarded by a configurable
//!   [vote-node budget](AccMc::vote_node_bound).

use crate::backend::CounterBackend;
use crate::counter::{CountOutcome, QueryCounter};
use crate::encode::CnfEncodable;
use crate::error::EvalError;
use crate::fallback::{rescue_batch, FallbackLadder, FallbackPolicy};
use crate::tree2cnf::TreeLabel;
use mlkit::metrics::BinaryMetrics;
use relspec::translate::GroundTruth;
use satkit::cnf::Lit;
use std::time::{Duration, Instant};

/// Which counting strategy an analysis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CountingEngine {
    /// One CNF, one search: encode the model region into (¬)φ and count
    /// each of the four conjunctions from scratch.
    #[default]
    Classic,
    /// Compile once, query many: condition a compiled φ / ¬φ on the
    /// model's decision-region cubes and sum the per-region counts.
    /// Covers every [`CnfEncodable`] family (trees and voting ensembles).
    Compiled,
}

impl CountingEngine {
    /// Parses a case-insensitive engine name (`"classic"`, `"compiled"`).
    pub fn parse(name: &str) -> Option<CountingEngine> {
        match name.to_ascii_lowercase().as_str() {
            "classic" => Some(CountingEngine::Classic),
            "compiled" => Some(CountingEngine::Compiled),
            _ => None,
        }
    }

    /// The engine's lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            CountingEngine::Classic => "classic",
            CountingEngine::Compiled => "compiled",
        }
    }

    /// Reads the engine from the `MCML_ENGINE` environment variable — the
    /// switch the CI conformance matrix uses to run the same test suite
    /// under both engines. Unset or empty means [`CountingEngine::Classic`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value, so a typo in a CI matrix fails
    /// loudly instead of silently testing the default engine.
    pub fn from_env() -> CountingEngine {
        match std::env::var("MCML_ENGINE") {
            Err(_) => CountingEngine::Classic,
            Ok(v) if v.is_empty() => CountingEngine::Classic,
            Ok(v) => CountingEngine::parse(&v)
                .unwrap_or_else(|| panic!("MCML_ENGINE={v:?} is not a counting engine")),
        }
    }
}

impl std::fmt::Display for CountingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The (ε, δ) guarantee attached to an approximate whole-space result.
///
/// A result built from several approximate counts only holds when *every*
/// contributing estimate does, so ε is the largest per-count tolerance and
/// δ is the **union bound** over the contributing counts — the sum of
/// their failure probabilities, saturated at 1 (at which point the
/// combined guarantee is vacuous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxInfo {
    /// Largest per-count tolerance ε among the approximate counts.
    pub epsilon: f64,
    /// Union-bound failure probability: the sum of the contributing
    /// counts' δ parameters, capped at 1.
    pub delta: f64,
}

/// The four whole-space counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceCounts {
    /// Inputs satisfying φ that the model classifies as positive.
    pub tp: u128,
    /// Inputs violating φ that the model classifies as positive.
    pub fp: u128,
    /// Inputs violating φ that the model classifies as negative.
    pub tn: u128,
    /// Inputs satisfying φ that the model classifies as negative.
    pub fn_: u128,
}

impl SpaceCounts {
    /// Total number of inputs covered by the four counts.
    pub fn total(&self) -> u128 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// The derived accuracy / precision / recall / F1 scores.
    pub fn metrics(&self) -> BinaryMetrics {
        BinaryMetrics::from_counts(self.tp, self.fp, self.tn, self.fn_)
    }
}

/// Result of one AccMC evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccMcResult {
    /// The four whole-space counts.
    pub counts: SpaceCounts,
    /// The derived scores.
    pub metrics: BinaryMetrics,
    /// Wall-clock time spent in the counting calls (the paper's "Time\[s\]"
    /// column).
    pub counting_time: Duration,
    /// The combined (ε, δ) guarantee of the approximate counts contributing
    /// to the result; `None` when every count is exact.
    pub approx: Option<ApproxInfo>,
}

impl AccMcResult {
    /// Whether every contributing count is exact.
    pub fn is_exact(&self) -> bool {
        self.approx.is_none()
    }
}

/// Accumulates per-count outcome metadata — exactness, largest ε,
/// union-bound δ — across the counts of one evaluation.
#[derive(Debug, Default)]
pub(crate) struct OutcomeMeta {
    approx: Option<ApproxInfo>,
}

impl OutcomeMeta {
    /// Folds one outcome in, returning its value (`None` = budget ran out).
    pub(crate) fn absorb(&mut self, outcome: CountOutcome) -> Option<u128> {
        match outcome {
            CountOutcome::Exact(v) => Some(v),
            CountOutcome::Approx {
                estimate,
                epsilon,
                delta,
            } => {
                let info = self.approx.get_or_insert(ApproxInfo {
                    epsilon: 0.0,
                    delta: 0.0,
                });
                info.epsilon = info.epsilon.max(epsilon);
                // Union bound: the joint result fails if any contributing
                // estimate does, so failure probabilities add.
                info.delta = (info.delta + delta).min(1.0);
                Some(estimate)
            }
            CountOutcome::BudgetExhausted { .. } => None,
        }
    }

    pub(crate) fn approx(&self) -> Option<ApproxInfo> {
        self.approx
    }
}

/// The AccMC analysis, parameterized by a counting backend and a
/// [`CountingEngine`].
#[derive(Debug, Clone)]
pub struct AccMc<'a, C: QueryCounter + ?Sized = CounterBackend> {
    backend: &'a C,
    engine: CountingEngine,
    vote_node_bound: usize,
    fallback: FallbackPolicy,
}

impl<'a, C: QueryCounter + ?Sized> AccMc<'a, C> {
    /// Creates the analysis over the given backend with the classic
    /// four-conjunction strategy.
    pub fn new(backend: &'a C) -> Self {
        AccMc::with_engine(backend, CountingEngine::Classic)
    }

    /// Creates the analysis with an explicit counting engine.
    pub fn with_engine(backend: &'a C, engine: CountingEngine) -> Self {
        AccMc {
            backend,
            engine,
            vote_node_bound: crate::encode::MAX_VOTE_NODES,
            fallback: FallbackPolicy::default(),
        }
    }

    /// Sets the degradation policy applied when a count exhausts its
    /// budget (default [`FallbackPolicy::Fail`], which preserves the
    /// exact-or-`None` contract of [`AccMc::evaluate`]).
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Sets the vote-circuit node budget (default
    /// [`MAX_VOTE_NODES`](crate::encode::MAX_VOTE_NODES)): it bounds the
    /// vote BDDs the compiled engine extracts decision regions from *and*
    /// the ABT weighted-vote diagram of the classic engine's CNF encoding.
    /// An ensemble whose diagram exceeds it reports
    /// [`EvalError::VoteCircuitTooLarge`].
    pub fn vote_node_bound(mut self, bound: usize) -> Self {
        self.vote_node_bound = bound;
        self
    }

    /// The engine this analysis evaluates with.
    pub fn engine(&self) -> CountingEngine {
        self.engine
    }

    /// Computes the whole-space confusion counts of `model` against the
    /// ground truth φ.
    ///
    /// Returns `Ok(None)` if the backend's budget was exhausted on any
    /// count (the paper's time-outs), [`EvalError::FeatureMismatch`] if the
    /// model's feature count differs from the ground truth's
    /// primary-variable count, and propagates encoding errors (e.g.
    /// [`EvalError::VoteCircuitTooLarge`]).
    pub fn evaluate<M: CnfEncodable + ?Sized>(
        &self,
        ground_truth: &GroundTruth,
        model: &M,
    ) -> Result<Option<AccMcResult>, EvalError> {
        if model.num_features() != ground_truth.num_primary() {
            return Err(EvalError::FeatureMismatch {
                model_features: model.num_features(),
                expected_features: ground_truth.num_primary(),
                context: "ground truth",
            });
        }
        let start = Instant::now();
        let mut meta = OutcomeMeta::default();
        let ladder = FallbackLadder::new(
            self.fallback,
            Some(ground_truth.scope()),
            ground_truth.symmetry(),
        );
        let counts = match self.engine {
            CountingEngine::Compiled => {
                let regions = model.decision_regions_bounded(self.vote_node_bound)?;
                self.counts_by_regions(ground_truth, &regions, ladder.as_ref(), &mut meta)
            }
            CountingEngine::Classic => {
                self.counts_classic(ground_truth, model, ladder.as_ref(), &mut meta)?
            }
        };
        Ok(counts.map(|counts| AccMcResult {
            counts,
            metrics: counts.metrics(),
            counting_time: start.elapsed(),
            approx: meta.approx(),
        }))
    }

    /// The classic strategy: four conjunction CNFs, four counts.
    fn counts_classic<M: CnfEncodable + ?Sized>(
        &self,
        ground_truth: &GroundTruth,
        model: &M,
        ladder: Option<&FallbackLadder>,
        meta: &mut OutcomeMeta,
    ) -> Result<Option<SpaceCounts>, EvalError> {
        let mut values = [0u128; 4];
        let cells = [
            (true, TreeLabel::True),
            (false, TreeLabel::True),
            (false, TreeLabel::False),
            (true, TreeLabel::False),
        ];
        for (slot, &(phi_positive, label)) in values.iter_mut().zip(&cells) {
            let mut cnf = if phi_positive {
                ground_truth.cnf_positive()
            } else {
                ground_truth.cnf_negative()
            };
            model.try_encode_label_bounded(&mut cnf, label, self.vote_node_bound)?;
            // The conjunction is unique to this (model, cell) pair: count
            // it transiently so compiling backends don't cache a circuit
            // that can never be reused.
            let mut outcome = self.backend.count_transient(&cnf);
            if outcome.is_budget_exhausted() {
                if let Some(ladder) = ladder {
                    outcome = ladder.rescue(&cnf, &[]);
                }
            }
            match meta.absorb(outcome) {
                None => return Ok(None),
                Some(v) => *slot = v,
            }
        }
        Ok(Some(SpaceCounts {
            tp: values[0],
            fp: values[1],
            tn: values[2],
            fn_: values[3],
        }))
    }

    /// The query plan: φ and ¬φ are fixed queries, the model contributes
    /// only condition cubes. The model's regions partition the space, so
    /// summing `mc(φ | cube)` over the positive regions equals
    /// `mc(φ ∧ model_true)` (and analogously for the other three cells) —
    /// asserted by the engine-agreement regression tests.
    ///
    /// All regions of the model are evaluated **batched**: one
    /// [`count_cubes`](QueryCounter::count_cubes) call against φ and one
    /// against ¬φ, which a compiled backend answers with a single
    /// topological sweep per side instead of one circuit walk per region.
    fn counts_by_regions(
        &self,
        ground_truth: &GroundTruth,
        regions: &[crate::encode::DecisionRegion],
        ladder: Option<&FallbackLadder>,
        meta: &mut OutcomeMeta,
    ) -> Option<SpaceCounts> {
        let positive = ground_truth.cnf_positive_ref();
        let negative = ground_truth.cnf_negative_ref();
        let cubes: Vec<&[Lit]> = regions.iter().map(|r| r.cube.as_slice()).collect();
        // Absorb the φ side before paying for the ¬φ batch: if a count
        // already blew the budget here, the evaluation is void and the
        // second batch would be wasted work. An enabled fallback ladder
        // rescues exhausted (and batch-omitted) outcomes per region first,
        // so under it nothing here short-circuits.
        let phi_outcomes = self.backend.count_cubes(positive, &cubes);
        crate::counter::debug_assert_batch_complete(&phi_outcomes, cubes.len());
        let phi_outcomes = rescue_batch(ladder, positive, &cubes, phi_outcomes);
        let mut in_phi = Vec::with_capacity(regions.len());
        for outcome in phi_outcomes {
            in_phi.push(meta.absorb(outcome)?);
        }
        let in_not_phi = self.backend.count_cubes(negative, &cubes);
        crate::counter::debug_assert_batch_complete(&in_not_phi, cubes.len());
        let in_not_phi = rescue_batch(ladder, negative, &cubes, in_not_phi);
        let mut counts = SpaceCounts::default();
        for (region, (in_phi, not_phi)) in regions.iter().zip(in_phi.into_iter().zip(in_not_phi)) {
            let in_not_phi = meta.absorb(not_phi)?;
            match region.label {
                TreeLabel::True => {
                    counts.tp += in_phi;
                    counts.fp += in_not_phi;
                }
                TreeLabel::False => {
                    counts.fn_ += in_phi;
                    counts.tn += in_not_phi;
                }
            }
        }
        Some(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::forest::{ForestConfig, RandomForest};
    use mlkit::tree::{DecisionTree, TreeConfig};
    use mlkit::Classifier;
    use relspec::instance::RelInstance;
    use relspec::properties::Property;
    use relspec::symmetry::SymmetryBreaking;
    use relspec::translate::{translate_to_cnf, TranslateOptions};

    /// Brute-force whole-space counts by iterating over every adjacency
    /// matrix at the scope.
    fn brute_counts<M: Classifier>(
        property: Property,
        scope: usize,
        symmetry: SymmetryBreaking,
        model: &M,
    ) -> SpaceCounts {
        let mut counts = SpaceCounts::default();
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            if !symmetry.keeps(&inst) {
                continue;
            }
            let truth = property.holds(&inst);
            let predicted = model.predict(&inst.to_features());
            match (truth, predicted) {
                (true, true) => counts.tp += 1,
                (false, true) => counts.fp += 1,
                (false, false) => counts.tn += 1,
                (true, false) => counts.fn_ += 1,
            }
        }
        counts
    }

    fn labeled_dataset(property: Property, scope: usize) -> Dataset {
        let mut d = Dataset::new(scope * scope);
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            d.push(inst.to_features(), property.holds(&inst));
        }
        d
    }

    #[test]
    fn counts_match_brute_force_scope3() {
        let scope = 3;
        for property in [
            Property::Reflexive,
            Property::Antisymmetric,
            Property::Function,
        ] {
            // Train on a small subsample so the tree is imperfect, which
            // exercises all four counts.
            let dataset = labeled_dataset(property, scope).subsample(60, 3);
            let tree = DecisionTree::fit(&dataset, TreeConfig::default());
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let backend = CounterBackend::exact();
            let result = AccMc::new(&backend)
                .evaluate(&gt, &tree)
                .expect("scopes match")
                .expect("no budget");
            let brute = brute_counts(property, scope, SymmetryBreaking::None, &tree);
            assert_eq!(result.counts, brute, "property {property}");
            assert_eq!(result.counts.total(), 512);
            assert!(result.is_exact());
        }
    }

    #[test]
    fn counts_match_brute_force_with_symmetry_breaking() {
        let scope = 3;
        let property = Property::PartialOrder;
        let dataset = labeled_dataset(property, scope).subsample(80, 9);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let symmetry = SymmetryBreaking::Transpositions;
        let gt = translate_to_cnf(
            &property.spec(),
            TranslateOptions::new(scope).with_symmetry(symmetry),
        );
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        let brute = brute_counts(property, scope, symmetry, &tree);
        assert_eq!(result.counts, brute);
    }

    #[test]
    fn forest_counts_match_brute_force() {
        let scope = 3;
        let property = Property::Antisymmetric;
        let dataset = labeled_dataset(property, scope).subsample(100, 7);
        let forest = RandomForest::fit(
            &dataset,
            ForestConfig {
                num_trees: 7,
                seed: 5,
                ..ForestConfig::default()
            },
        );
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend)
            .evaluate(&gt, &forest)
            .expect("scopes match")
            .expect("no budget");
        let brute = brute_counts(property, scope, SymmetryBreaking::None, &forest);
        assert_eq!(result.counts, brute);
        assert_eq!(result.counts.total(), 512);
    }

    #[test]
    fn perfect_tree_scores_one() {
        // Reflexive at scope 2 is learnable exactly from the full space.
        let property = Property::Reflexive;
        let dataset = labeled_dataset(property, 2);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(2));
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        assert_eq!(result.counts.fp, 0);
        assert_eq!(result.counts.fn_, 0);
        assert_eq!(result.metrics.accuracy, 1.0);
        assert_eq!(result.metrics.f1, 1.0);
    }

    #[test]
    fn approx_backend_close_to_exact() {
        let property = Property::Antisymmetric;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let exact = CounterBackend::exact();
        let approx = CounterBackend::approx();
        let re = AccMc::new(&exact)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        let ra = AccMc::new(&approx)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("approx always answers");
        assert!(!ra.is_exact());
        // The whole space at scope 3 is only 512, so the approximate counter
        // enumerates exactly.
        let close = |a: u128, b: u128| (a as f64 - b as f64).abs() <= (b as f64) * 0.6 + 8.0;
        assert!(close(ra.counts.tp, re.counts.tp));
        assert!(close(ra.counts.tn, re.counts.tn));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let property = Property::Transitive;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact_with_budget(1);
        assert_eq!(
            AccMc::new(&backend).evaluate(&gt, &tree),
            Ok(None),
            "budget exhaustion is a value, not an error"
        );
    }

    #[test]
    fn compiled_engine_matches_classic_and_brute_force() {
        use crate::counter::CompiledCounter;
        let scope = 3;
        for property in [
            Property::Reflexive,
            Property::Antisymmetric,
            Property::Function,
        ] {
            let dataset = labeled_dataset(property, scope).subsample(60, 3);
            let tree = DecisionTree::fit(&dataset, TreeConfig::default());
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let exact = CounterBackend::exact();
            let classic = AccMc::new(&exact)
                .evaluate(&gt, &tree)
                .expect("scopes match")
                .expect("no budget");
            let compiled_backend = CompiledCounter::new();
            let compiled = AccMc::with_engine(&compiled_backend, CountingEngine::Compiled)
                .evaluate(&gt, &tree)
                .expect("scopes match")
                .expect("no budget");
            assert_eq!(compiled.counts, classic.counts, "property {property}");
            assert_eq!(
                compiled.counts,
                brute_counts(property, scope, SymmetryBreaking::None, &tree)
            );
            assert!(compiled.is_exact());
            assert_eq!(compiled.approx, None);
            // Exactly two formulas (φ and ¬φ) were compiled, regardless of
            // how many regions the tree has.
            assert_eq!(compiled_backend.stats().misses, 2, "property {property}");
        }
    }

    #[test]
    fn compiled_engine_covers_ensembles_by_regions() {
        use crate::counter::CompiledCounter;
        let scope = 3;
        let property = Property::Antisymmetric;
        let dataset = labeled_dataset(property, scope).subsample(100, 7);
        let forest = RandomForest::fit(
            &dataset,
            ForestConfig {
                num_trees: 5,
                seed: 5,
                ..ForestConfig::default()
            },
        );
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CompiledCounter::new();
        let result = AccMc::with_engine(&backend, CountingEngine::Compiled)
            .evaluate(&gt, &forest)
            .expect("scopes match")
            .expect("no budget");
        let brute = brute_counts(property, scope, SymmetryBreaking::None, &forest);
        assert_eq!(result.counts, brute);
        assert_eq!(
            backend.stats().misses,
            2,
            "the ensemble rides the region plan: only φ and ¬φ are compiled"
        );
    }

    #[test]
    fn compiled_engine_vote_bound_is_a_typed_error() {
        use crate::counter::CompiledCounter;
        let scope = 3;
        let property = Property::Antisymmetric;
        let dataset = labeled_dataset(property, scope).subsample(100, 7);
        let forest = RandomForest::fit(
            &dataset,
            ForestConfig {
                num_trees: 5,
                seed: 5,
                ..ForestConfig::default()
            },
        );
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CompiledCounter::new();
        let result = AccMc::with_engine(&backend, CountingEngine::Compiled)
            .vote_node_bound(1)
            .evaluate(&gt, &forest);
        assert!(
            matches!(result, Err(EvalError::VoteCircuitTooLarge { bound: 1, .. })),
            "unexpected result {result:?}"
        );
    }

    #[test]
    fn classic_engine_honours_the_vote_node_bound() {
        // The same knob bounds the classic path's ABT weighted-vote CNF
        // diagram — `--vote-nodes` is never a silent no-op.
        use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
        let scope = 3;
        let property = Property::Antisymmetric;
        let dataset = labeled_dataset(property, scope).subsample(100, 7);
        let ensemble = AdaBoost::fit(
            &dataset,
            AdaBoostConfig {
                num_rounds: 4,
                weak_depth: 1,
                seed: 3,
            },
        );
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact();
        let result = AccMc::with_engine(&backend, CountingEngine::Classic)
            .vote_node_bound(1)
            .evaluate(&gt, &ensemble);
        assert!(
            matches!(result, Err(EvalError::VoteCircuitTooLarge { bound: 1, .. })),
            "unexpected result {result:?}"
        );
        assert!(AccMc::with_engine(&backend, CountingEngine::Classic)
            .evaluate(&gt, &ensemble)
            .expect("scopes match")
            .is_some());
    }

    #[test]
    fn approx_metadata_reaches_the_result() {
        let property = Property::Antisymmetric;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let approx = CounterBackend::approx();
        let result = AccMc::new(&approx)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("approx always answers");
        assert!(!result.is_exact());
        let info = result.approx.expect("approximate runs carry (ε, δ)");
        assert!(info.epsilon > 0.0 && info.delta > 0.0);

        // An exact run carries no (ε, δ).
        let exact = CounterBackend::exact();
        let exact_result = AccMc::new(&exact)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");
        assert!(exact_result.is_exact());
        assert_eq!(exact_result.approx, None);
    }

    #[test]
    fn outcome_meta_takes_max_epsilon_and_union_bound_delta() {
        let mut meta = OutcomeMeta::default();
        assert_eq!(meta.absorb(CountOutcome::Exact(5)), Some(5));
        assert_eq!(meta.approx(), None);
        for (epsilon, delta) in [(0.4, 0.2), (0.2, 0.3)] {
            meta.absorb(CountOutcome::Approx {
                estimate: 1,
                epsilon,
                delta,
            });
        }
        let info = meta.approx().expect("approximate counts were absorbed");
        assert_eq!(info.epsilon, 0.4, "largest per-count tolerance");
        assert!(
            (info.delta - 0.5).abs() < 1e-12,
            "failure probabilities add (union bound), got {}",
            info.delta
        );
        // The union bound saturates at 1 (a vacuous guarantee).
        for _ in 0..4 {
            meta.absorb(CountOutcome::Approx {
                estimate: 1,
                epsilon: 0.1,
                delta: 0.3,
            });
        }
        assert_eq!(meta.approx().unwrap().delta, 1.0);
    }

    #[test]
    fn engine_parsing_round_trips() {
        for engine in [CountingEngine::Classic, CountingEngine::Compiled] {
            assert_eq!(CountingEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(CountingEngine::parse("ddnnf"), None);
        assert_eq!(CountingEngine::default(), CountingEngine::Classic);
    }

    #[test]
    fn mismatched_scope_is_a_typed_error() {
        let dataset = labeled_dataset(Property::Reflexive, 2);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&Property::Reflexive.spec(), TranslateOptions::new(3));
        let backend = CounterBackend::exact();
        assert_eq!(
            AccMc::new(&backend).evaluate(&gt, &tree),
            Err(EvalError::FeatureMismatch {
                model_features: 4,
                expected_features: 9,
                context: "ground truth",
            })
        );
    }
}
