//! AccMC: quantifying a decision tree's performance over the entire bounded
//! input space with respect to a ground-truth formula φ.
//!
//! Following Section 4 of the paper, the four counts are model counts of
//! conjunctions of (¬)φ with the CNF of the tree's positive / negative
//! decision region:
//!
//! * `tp = mc(φ ∧ tree_true)`     * `fp = mc(¬φ ∧ tree_true)`
//! * `tn = mc(¬φ ∧ tree_false)`   * `fn = mc(φ ∧ tree_false)`
//!
//! from which accuracy, precision, recall and F1 are derived exactly as for
//! dataset-based evaluation — except the "dataset" is now all 2^(n²)
//! adjacency matrices (optionally restricted by symmetry-breaking
//! predicates baked into φ).

use crate::backend::CounterBackend;
use crate::tree2cnf::{append_tree_label, TreeLabel};
use mlkit::metrics::BinaryMetrics;
use mlkit::tree::DecisionTree;
use relspec::translate::GroundTruth;
use std::time::{Duration, Instant};

/// The four whole-space counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceCounts {
    /// Inputs satisfying φ that the tree classifies as positive.
    pub tp: u128,
    /// Inputs violating φ that the tree classifies as positive.
    pub fp: u128,
    /// Inputs violating φ that the tree classifies as negative.
    pub tn: u128,
    /// Inputs satisfying φ that the tree classifies as negative.
    pub fn_: u128,
}

impl SpaceCounts {
    /// Total number of inputs covered by the four counts.
    pub fn total(&self) -> u128 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// The derived accuracy / precision / recall / F1 scores.
    pub fn metrics(&self) -> BinaryMetrics {
        BinaryMetrics::from_counts(self.tp, self.fp, self.tn, self.fn_)
    }
}

/// Result of one AccMC evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccMcResult {
    /// The four whole-space counts.
    pub counts: SpaceCounts,
    /// The derived scores.
    pub metrics: BinaryMetrics,
    /// Wall-clock time spent in the four counting calls (the paper's
    /// "Time[s]" column).
    pub counting_time: Duration,
}

/// The AccMC analysis, parameterized by a counting backend.
#[derive(Debug, Clone)]
pub struct AccMc<'a> {
    backend: &'a CounterBackend,
}

impl<'a> AccMc<'a> {
    /// Creates the analysis over the given backend.
    pub fn new(backend: &'a CounterBackend) -> Self {
        AccMc { backend }
    }

    /// Computes the whole-space confusion counts of `tree` against the
    /// ground truth φ. Returns `None` if the backend's budget was exhausted
    /// on any of the four counts (the paper's time-outs).
    ///
    /// # Panics
    ///
    /// Panics if the tree's feature count differs from the ground truth's
    /// primary-variable count.
    pub fn evaluate(&self, ground_truth: &GroundTruth, tree: &DecisionTree) -> Option<AccMcResult> {
        assert_eq!(
            tree.num_features(),
            ground_truth.num_primary(),
            "tree was trained on {} features but the ground truth has {} primary variables",
            tree.num_features(),
            ground_truth.num_primary()
        );
        let start = Instant::now();
        let tp = self.count_one(ground_truth, tree, true, TreeLabel::True)?;
        let fp = self.count_one(ground_truth, tree, false, TreeLabel::True)?;
        let tn = self.count_one(ground_truth, tree, false, TreeLabel::False)?;
        let fn_ = self.count_one(ground_truth, tree, true, TreeLabel::False)?;
        let counts = SpaceCounts { tp, fp, tn, fn_ };
        Some(AccMcResult {
            counts,
            metrics: counts.metrics(),
            counting_time: start.elapsed(),
        })
    }

    fn count_one(
        &self,
        ground_truth: &GroundTruth,
        tree: &DecisionTree,
        phi_positive: bool,
        label: TreeLabel,
    ) -> Option<u128> {
        let mut cnf = if phi_positive {
            ground_truth.cnf_positive()
        } else {
            ground_truth.cnf_negative()
        };
        append_tree_label(&mut cnf, tree, label);
        self.backend.count(&cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::tree::TreeConfig;
    use mlkit::Classifier;
    use relspec::instance::RelInstance;
    use relspec::properties::Property;
    use relspec::symmetry::SymmetryBreaking;
    use relspec::translate::{translate_to_cnf, TranslateOptions};

    /// Brute-force whole-space counts by iterating over every adjacency
    /// matrix at the scope.
    fn brute_counts(
        property: Property,
        scope: usize,
        symmetry: SymmetryBreaking,
        tree: &DecisionTree,
    ) -> SpaceCounts {
        let mut counts = SpaceCounts::default();
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            if !symmetry.keeps(&inst) {
                continue;
            }
            let truth = property.holds(&inst);
            let predicted = tree.predict(&inst.to_features());
            match (truth, predicted) {
                (true, true) => counts.tp += 1,
                (false, true) => counts.fp += 1,
                (false, false) => counts.tn += 1,
                (true, false) => counts.fn_ += 1,
            }
        }
        counts
    }

    fn labeled_dataset(property: Property, scope: usize) -> Dataset {
        let mut d = Dataset::new(scope * scope);
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            d.push(inst.to_features(), property.holds(&inst));
        }
        d
    }

    #[test]
    fn counts_match_brute_force_scope3() {
        let scope = 3;
        for property in [Property::Reflexive, Property::Antisymmetric, Property::Function] {
            // Train on a small subsample so the tree is imperfect, which
            // exercises all four counts.
            let dataset = labeled_dataset(property, scope).subsample(60, 3);
            let tree = DecisionTree::fit(&dataset, TreeConfig::default());
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let backend = CounterBackend::exact();
            let result = AccMc::new(&backend).evaluate(&gt, &tree).unwrap();
            let brute = brute_counts(property, scope, SymmetryBreaking::None, &tree);
            assert_eq!(result.counts, brute, "property {property}");
            assert_eq!(result.counts.total(), 512);
        }
    }

    #[test]
    fn counts_match_brute_force_with_symmetry_breaking() {
        let scope = 3;
        let property = Property::PartialOrder;
        let dataset = labeled_dataset(property, scope).subsample(80, 9);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let symmetry = SymmetryBreaking::Transpositions;
        let gt = translate_to_cnf(
            &property.spec(),
            TranslateOptions::new(scope).with_symmetry(symmetry),
        );
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend).evaluate(&gt, &tree).unwrap();
        let brute = brute_counts(property, scope, symmetry, &tree);
        assert_eq!(result.counts, brute);
    }

    #[test]
    fn perfect_tree_scores_one() {
        // Reflexive at scope 2 is learnable exactly from the full space.
        let property = Property::Reflexive;
        let dataset = labeled_dataset(property, 2);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(2));
        let backend = CounterBackend::exact();
        let result = AccMc::new(&backend).evaluate(&gt, &tree).unwrap();
        assert_eq!(result.counts.fp, 0);
        assert_eq!(result.counts.fn_, 0);
        assert_eq!(result.metrics.accuracy, 1.0);
        assert_eq!(result.metrics.f1, 1.0);
    }

    #[test]
    fn approx_backend_close_to_exact() {
        let property = Property::Antisymmetric;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let exact = CounterBackend::exact();
        let approx = CounterBackend::approx();
        let re = AccMc::new(&exact).evaluate(&gt, &tree).unwrap();
        let ra = AccMc::new(&approx).evaluate(&gt, &tree).unwrap();
        // The whole space at scope 3 is only 512, so the approximate counter
        // enumerates exactly.
        let close = |a: u128, b: u128| (a as f64 - b as f64).abs() <= (b as f64) * 0.6 + 8.0;
        assert!(close(ra.counts.tp, re.counts.tp));
        assert!(close(ra.counts.tn, re.counts.tn));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let property = Property::Transitive;
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(100, 5);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact_with_budget(1);
        assert!(AccMc::new(&backend).evaluate(&gt, &tree).is_none());
    }

    #[test]
    #[should_panic(expected = "primary variables")]
    fn mismatched_scope_panics() {
        let dataset = labeled_dataset(Property::Reflexive, 2);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&Property::Reflexive.spec(), TranslateOptions::new(3));
        let backend = CounterBackend::exact();
        let _ = AccMc::new(&backend).evaluate(&gt, &tree);
    }
}
