//! DiffMC: quantifying the semantic difference between two trained models
//! over the entire input space — without any ground truth or dataset.
//!
//! Following Section 4 of the paper, the four counts are model counts of
//! conjunctions of the models' decision-region CNFs:
//!
//! * `tt = mc(m1_true ∧ m2_true)`    * `tf = mc(m1_true ∧ m2_false)`
//! * `ft = mc(m1_false ∧ m2_true)`   * `ff = mc(m1_false ∧ m2_false)`
//!
//! and `diff = (tf + ft) / 2ⁿ`, `sim = 1 - diff`.
//!
//! Like AccMC, the comparison is generic over
//! [`CnfEncodable`](crate::encode::CnfEncodable) model families — the two
//! sides may even belong to *different* families (e.g. a decision tree
//! against the random forest distilled from the same data).

use crate::backend::CounterBackend;
use crate::counter::ModelCounter;
use crate::encode::CnfEncodable;
use crate::error::EvalError;
use crate::tree2cnf::TreeLabel;
use satkit::cnf::{Cnf, Var};
use std::time::{Duration, Instant};

/// The four whole-space agreement/disagreement counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiffCounts {
    /// Inputs both models classify as positive.
    pub tt: u128,
    /// Inputs the first model classifies as positive and the second as negative.
    pub tf: u128,
    /// Inputs the first model classifies as negative and the second as positive.
    pub ft: u128,
    /// Inputs both models classify as negative.
    pub ff: u128,
}

impl DiffCounts {
    /// Total number of inputs covered (equals 2ⁿ).
    pub fn total(&self) -> u128 {
        self.tt + self.tf + self.ft + self.ff
    }

    /// Fraction of inputs on which the models disagree.
    pub fn diff(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.tf + self.ft) as f64 / total as f64
    }

    /// Fraction of inputs on which the models agree (`1 - diff`).
    pub fn sim(&self) -> f64 {
        1.0 - self.diff()
    }
}

/// Result of one DiffMC comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffMcResult {
    /// The four agreement/disagreement counts.
    pub counts: DiffCounts,
    /// Wall-clock time spent counting.
    pub counting_time: Duration,
}

/// The DiffMC analysis, parameterized by a counting backend.
#[derive(Debug, Clone)]
pub struct DiffMc<'a, C: ModelCounter + ?Sized = CounterBackend> {
    backend: &'a C,
}

impl<'a, C: ModelCounter + ?Sized> DiffMc<'a, C> {
    /// Creates the analysis over the given backend.
    pub fn new(backend: &'a C) -> Self {
        DiffMc { backend }
    }

    /// Computes the whole-space agreement/disagreement counts of two models.
    ///
    /// Returns `Ok(None)` if the backend's budget was exhausted, and
    /// [`EvalError::FeatureMismatch`] if the models classify different
    /// feature spaces.
    pub fn compare<A: CnfEncodable + ?Sized, B: CnfEncodable + ?Sized>(
        &self,
        m1: &A,
        m2: &B,
    ) -> Result<Option<DiffMcResult>, EvalError> {
        if m1.num_features() != m2.num_features() {
            return Err(EvalError::FeatureMismatch {
                model_features: m2.num_features(),
                expected_features: m1.num_features(),
                context: "first model",
            });
        }
        let start = Instant::now();
        let mut values = [0u128; 4];
        let cells = [
            (TreeLabel::True, TreeLabel::True),
            (TreeLabel::True, TreeLabel::False),
            (TreeLabel::False, TreeLabel::True),
            (TreeLabel::False, TreeLabel::False),
        ];
        for (slot, &(l1, l2)) in values.iter_mut().zip(&cells) {
            match self.count_one(m1, l1, m2, l2).value() {
                None => return Ok(None),
                Some(v) => *slot = v,
            }
        }
        Ok(Some(DiffMcResult {
            counts: DiffCounts {
                tt: values[0],
                tf: values[1],
                ft: values[2],
                ff: values[3],
            },
            counting_time: start.elapsed(),
        }))
    }

    fn count_one<A: CnfEncodable + ?Sized, B: CnfEncodable + ?Sized>(
        &self,
        m1: &A,
        l1: TreeLabel,
        m2: &B,
        l2: TreeLabel,
    ) -> crate::counter::CountOutcome {
        let n = m1.num_features();
        let mut cnf = Cnf::new(n);
        cnf.set_projection((0..n as u32).map(Var).collect());
        m1.encode_label(&mut cnf, l1);
        m2.encode_label(&mut cnf, l2);
        self.backend.count(&cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::forest::{ForestConfig, RandomForest};
    use mlkit::tree::{DecisionTree, TreeConfig};
    use mlkit::Classifier;

    fn dataset_from_fn(num_features: usize, f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(num_features);
        for bits in 0u32..(1 << num_features) {
            let row: Vec<u8> = (0..num_features).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn brute_diff<A: Classifier, B: Classifier>(m1: &A, m2: &B, n: usize) -> DiffCounts {
        let mut counts = DiffCounts::default();
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            match (m1.predict(&features), m2.predict(&features)) {
                (true, true) => counts.tt += 1,
                (true, false) => counts.tf += 1,
                (false, true) => counts.ft += 1,
                (false, false) => counts.ff += 1,
            }
        }
        counts
    }

    #[test]
    fn identical_trees_have_zero_diff() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && x[2] == 1);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(r.counts.tf, 0);
        assert_eq!(r.counts.ft, 0);
        assert_eq!(r.counts.diff(), 0.0);
        assert_eq!(r.counts.sim(), 1.0);
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    fn counts_match_brute_force_for_different_trees() {
        let full = dataset_from_fn(5, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let t1 = DecisionTree::fit(&full, TreeConfig::default());
        // Train the second tree on a subsample with a depth limit so the two
        // trees genuinely differ.
        let t2 = DecisionTree::fit(&full.subsample(12, 3), TreeConfig::with_max_depth(2));
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        let brute = brute_diff(&t1, &t2, 5);
        assert_eq!(r.counts, brute);
        assert!((r.counts.diff() + r.counts.sim() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_family_diff_matches_brute_force() {
        // A decision tree against a random forest trained on the same data.
        let full = dataset_from_fn(4, |x| (x[0] ^ x[1]) == 1 || x[3] == 1);
        let tree = DecisionTree::fit(&full, TreeConfig::with_max_depth(2));
        let forest = RandomForest::fit(
            &full,
            ForestConfig {
                num_trees: 5,
                seed: 9,
                ..ForestConfig::default()
            },
        );
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&tree, &forest)
            .expect("feature spaces match")
            .expect("no budget");
        let brute = brute_diff(&tree, &forest, 4);
        assert_eq!(r.counts, brute);
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    fn complementary_trees_have_diff_one() {
        let d = dataset_from_fn(3, |x| x[1] == 1);
        let d_inv = dataset_from_fn(3, |x| x[1] == 0);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d_inv, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(r.counts.tt, 0);
        assert_eq!(r.counts.ff, 0);
        assert_eq!(r.counts.diff(), 1.0);
    }

    #[test]
    fn mismatched_feature_counts_are_a_typed_error() {
        let t1 = DecisionTree::fit(&dataset_from_fn(3, |x| x[0] == 1), TreeConfig::default());
        let t2 = DecisionTree::fit(&dataset_from_fn(4, |x| x[0] == 1), TreeConfig::default());
        let backend = CounterBackend::exact();
        assert_eq!(
            DiffMc::new(&backend).compare(&t1, &t2),
            Err(EvalError::FeatureMismatch {
                model_features: 4,
                expected_features: 3,
                context: "first model",
            })
        );
    }
}
