//! DiffMC: quantifying the semantic difference between two decision trees
//! over the entire input space — without any ground truth or dataset.
//!
//! Following Section 4 of the paper, the four counts are model counts of
//! conjunctions of the trees' decision-region CNFs:
//!
//! * `tt = mc(tree1_true ∧ tree2_true)`    * `tf = mc(tree1_true ∧ tree2_false)`
//! * `ft = mc(tree1_false ∧ tree2_true)`   * `ff = mc(tree1_false ∧ tree2_false)`
//!
//! and `diff = (tf + ft) / 2ⁿ`, `sim = 1 - diff`.

use crate::backend::CounterBackend;
use crate::tree2cnf::{append_tree_label, tree_label_cnf, TreeLabel};
use mlkit::tree::DecisionTree;
use std::time::{Duration, Instant};

/// The four whole-space agreement/disagreement counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiffCounts {
    /// Inputs both trees classify as positive.
    pub tt: u128,
    /// Inputs the first tree classifies as positive and the second as negative.
    pub tf: u128,
    /// Inputs the first tree classifies as negative and the second as positive.
    pub ft: u128,
    /// Inputs both trees classify as negative.
    pub ff: u128,
}

impl DiffCounts {
    /// Total number of inputs covered (equals 2ⁿ).
    pub fn total(&self) -> u128 {
        self.tt + self.tf + self.ft + self.ff
    }

    /// Fraction of inputs on which the trees disagree.
    pub fn diff(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.tf + self.ft) as f64 / total as f64
    }

    /// Fraction of inputs on which the trees agree (`1 - diff`).
    pub fn sim(&self) -> f64 {
        1.0 - self.diff()
    }
}

/// Result of one DiffMC comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffMcResult {
    /// The four agreement/disagreement counts.
    pub counts: DiffCounts,
    /// Wall-clock time spent counting.
    pub counting_time: Duration,
}

/// The DiffMC analysis, parameterized by a counting backend.
#[derive(Debug, Clone)]
pub struct DiffMc<'a> {
    backend: &'a CounterBackend,
}

impl<'a> DiffMc<'a> {
    /// Creates the analysis over the given backend.
    pub fn new(backend: &'a CounterBackend) -> Self {
        DiffMc { backend }
    }

    /// Computes the whole-space agreement/disagreement counts of two trees.
    /// Returns `None` if the backend's budget was exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the trees were trained over different numbers of features.
    pub fn compare(&self, d1: &DecisionTree, d2: &DecisionTree) -> Option<DiffMcResult> {
        assert_eq!(
            d1.num_features(),
            d2.num_features(),
            "trees classify different feature spaces ({} vs {})",
            d1.num_features(),
            d2.num_features()
        );
        let start = Instant::now();
        let tt = self.count_one(d1, TreeLabel::True, d2, TreeLabel::True)?;
        let tf = self.count_one(d1, TreeLabel::True, d2, TreeLabel::False)?;
        let ft = self.count_one(d1, TreeLabel::False, d2, TreeLabel::True)?;
        let ff = self.count_one(d1, TreeLabel::False, d2, TreeLabel::False)?;
        Some(DiffMcResult {
            counts: DiffCounts { tt, tf, ft, ff },
            counting_time: start.elapsed(),
        })
    }

    fn count_one(
        &self,
        d1: &DecisionTree,
        l1: TreeLabel,
        d2: &DecisionTree,
        l2: TreeLabel,
    ) -> Option<u128> {
        let mut cnf = tree_label_cnf(d1, l1);
        append_tree_label(&mut cnf, d2, l2);
        self.backend.count(&cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::tree::TreeConfig;
    use mlkit::Classifier;

    fn dataset_from_fn(num_features: usize, f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(num_features);
        for bits in 0u32..(1 << num_features) {
            let row: Vec<u8> = (0..num_features).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn brute_diff(d1: &DecisionTree, d2: &DecisionTree) -> DiffCounts {
        let n = d1.num_features();
        let mut counts = DiffCounts::default();
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            match (d1.predict(&features), d2.predict(&features)) {
                (true, true) => counts.tt += 1,
                (true, false) => counts.tf += 1,
                (false, true) => counts.ft += 1,
                (false, false) => counts.ff += 1,
            }
        }
        counts
    }

    #[test]
    fn identical_trees_have_zero_diff() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && x[2] == 1);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend).compare(&t1, &t2).unwrap();
        assert_eq!(r.counts.tf, 0);
        assert_eq!(r.counts.ft, 0);
        assert_eq!(r.counts.diff(), 0.0);
        assert_eq!(r.counts.sim(), 1.0);
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    fn counts_match_brute_force_for_different_trees() {
        let full = dataset_from_fn(5, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let t1 = DecisionTree::fit(&full, TreeConfig::default());
        // Train the second tree on a subsample with a depth limit so the two
        // trees genuinely differ.
        let t2 = DecisionTree::fit(&full.subsample(12, 3), TreeConfig::with_max_depth(2));
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend).compare(&t1, &t2).unwrap();
        let brute = brute_diff(&t1, &t2);
        assert_eq!(r.counts, brute);
        assert!((r.counts.diff() + r.counts.sim() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complementary_trees_have_diff_one() {
        let d = dataset_from_fn(3, |x| x[1] == 1);
        let d_inv = dataset_from_fn(3, |x| x[1] == 0);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d_inv, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend).compare(&t1, &t2).unwrap();
        assert_eq!(r.counts.tt, 0);
        assert_eq!(r.counts.ff, 0);
        assert_eq!(r.counts.diff(), 1.0);
    }

    #[test]
    #[should_panic(expected = "different feature spaces")]
    fn mismatched_feature_counts_panic() {
        let t1 = DecisionTree::fit(&dataset_from_fn(3, |x| x[0] == 1), TreeConfig::default());
        let t2 = DecisionTree::fit(&dataset_from_fn(4, |x| x[0] == 1), TreeConfig::default());
        let backend = CounterBackend::exact();
        let _ = DiffMc::new(&backend).compare(&t1, &t2);
    }
}
