//! DiffMC: quantifying the semantic difference between two trained models
//! over the entire input space — without any ground truth or dataset.
//!
//! Following Section 4 of the paper, the four counts are model counts of
//! conjunctions of the models' decision-region CNFs:
//!
//! * `tt = mc(m1_true ∧ m2_true)`    * `tf = mc(m1_true ∧ m2_false)`
//! * `ft = mc(m1_false ∧ m2_true)`   * `ff = mc(m1_false ∧ m2_false)`
//!
//! and `diff = (tf + ft) / 2ⁿ`, `sim = 1 - diff`.
//!
//! Like AccMC, the comparison is generic over
//! [`CnfEncodable`] model families — the two
//! sides may even belong to *different* families (e.g. a decision tree
//! against the random forest distilled from the same data) — and over the
//! [`CountingEngine`]: with [`CountingEngine::Compiled`], the first side's
//! [`decision_regions`](CnfEncodable::decision_regions) contribute
//! condition cubes against the *other* side's compiled label circuits
//! instead of four conjunction encodings. Every family exposes regions
//! (ensembles through their vote BDDs), so no comparison falls back to the
//! classic path; if the first side's vote circuit blows its node budget,
//! the second side's regions are used transposed before giving up.

use crate::accmc::{ApproxInfo, CountingEngine, OutcomeMeta};
use crate::backend::CounterBackend;
use crate::counter::QueryCounter;
use crate::encode::{CnfEncodable, DecisionRegion};
use crate::error::EvalError;
use crate::fallback::{rescue_batch, FallbackLadder, FallbackPolicy};
use crate::tree2cnf::TreeLabel;
use relspec::symmetry::SymmetryBreaking;
use satkit::cnf::{Cnf, Lit, Var};
use std::time::{Duration, Instant};

/// The four whole-space agreement/disagreement counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiffCounts {
    /// Inputs both models classify as positive.
    pub tt: u128,
    /// Inputs the first model classifies as positive and the second as negative.
    pub tf: u128,
    /// Inputs the first model classifies as negative and the second as positive.
    pub ft: u128,
    /// Inputs both models classify as negative.
    pub ff: u128,
}

impl DiffCounts {
    /// Total number of inputs covered (equals 2ⁿ).
    pub fn total(&self) -> u128 {
        self.tt + self.tf + self.ft + self.ff
    }

    /// Fraction of inputs on which the models disagree.
    pub fn diff(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.tf + self.ft) as f64 / total as f64
    }

    /// Fraction of inputs on which the models agree (`1 - diff`).
    pub fn sim(&self) -> f64 {
        1.0 - self.diff()
    }
}

/// Result of one DiffMC comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffMcResult {
    /// The four agreement/disagreement counts.
    pub counts: DiffCounts,
    /// Wall-clock time spent counting.
    pub counting_time: Duration,
    /// The combined (ε, δ) guarantee of the approximate counts contributing
    /// to the comparison (largest ε, union-bound δ); `None` when every
    /// count is exact.
    pub approx: Option<ApproxInfo>,
}

impl DiffMcResult {
    /// Whether every contributing count is exact.
    pub fn is_exact(&self) -> bool {
        self.approx.is_none()
    }
}

/// The DiffMC analysis, parameterized by a counting backend and a
/// [`CountingEngine`].
#[derive(Debug, Clone)]
pub struct DiffMc<'a, C: QueryCounter + ?Sized = CounterBackend> {
    backend: &'a C,
    engine: CountingEngine,
    vote_node_bound: usize,
    fallback: FallbackPolicy,
}

impl<'a, C: QueryCounter + ?Sized> DiffMc<'a, C> {
    /// Creates the analysis over the given backend with the classic
    /// four-conjunction strategy.
    pub fn new(backend: &'a C) -> Self {
        DiffMc::with_engine(backend, CountingEngine::Classic)
    }

    /// Creates the analysis with an explicit counting engine.
    pub fn with_engine(backend: &'a C, engine: CountingEngine) -> Self {
        DiffMc {
            backend,
            engine,
            vote_node_bound: crate::encode::MAX_VOTE_NODES,
            fallback: FallbackPolicy::default(),
        }
    }

    /// Sets the degradation policy applied when a count exhausts its
    /// budget (default [`FallbackPolicy::Fail`], which preserves the
    /// exact-or-`None` contract of [`DiffMc::compare`]).
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// The rescue ladder for this comparison. Model label CNFs carry no
    /// baked symmetry; the adjacency-matrix scope is recovered from the
    /// feature count when it is a perfect square (the rung-2 symmetry
    /// retry is skipped otherwise).
    fn ladder(&self, num_features: usize) -> Option<FallbackLadder> {
        let scope = (1..=num_features)
            .take_while(|n| n * n <= num_features)
            .find(|n| n * n == num_features);
        FallbackLadder::new(self.fallback, scope, SymmetryBreaking::None)
    }

    /// Sets the vote-circuit node budget (default
    /// [`MAX_VOTE_NODES`](crate::encode::MAX_VOTE_NODES)): it bounds the
    /// region-extraction vote BDDs of the compiled engine and the ABT
    /// weighted-vote diagrams of the classic engine's CNF encodings.
    pub fn vote_node_bound(mut self, bound: usize) -> Self {
        self.vote_node_bound = bound;
        self
    }

    /// Computes the whole-space agreement/disagreement counts of two models.
    ///
    /// Returns `Ok(None)` if the backend's budget was exhausted,
    /// [`EvalError::FeatureMismatch`] if the models classify different
    /// feature spaces, and propagates encoding errors (e.g.
    /// [`EvalError::VoteCircuitTooLarge`]).
    pub fn compare<A: CnfEncodable + ?Sized, B: CnfEncodable + ?Sized>(
        &self,
        m1: &A,
        m2: &B,
    ) -> Result<Option<DiffMcResult>, EvalError> {
        if m1.num_features() != m2.num_features() {
            return Err(EvalError::FeatureMismatch {
                model_features: m2.num_features(),
                expected_features: m1.num_features(),
                context: "first model",
            });
        }
        let start = Instant::now();
        let mut meta = OutcomeMeta::default();
        let ladder = self.ladder(m1.num_features());
        let counts = match self.engine {
            CountingEngine::Compiled => {
                match m1.decision_regions_bounded(self.vote_node_bound) {
                    Ok(regions) => {
                        self.counts_by_regions(&regions, m2, false, ladder.as_ref(), &mut meta)?
                    }
                    // If only m1's vote circuit blows the budget, m2's
                    // regions still carry the plan: conditioning on them
                    // computes the transposed matrix, and the disagreement
                    // cells are swapped back. The original error is kept
                    // when both sides blow up.
                    Err(e @ EvalError::VoteCircuitTooLarge { .. }) => {
                        let regions = m2
                            .decision_regions_bounded(self.vote_node_bound)
                            .map_err(|_| e)?;
                        self.counts_by_regions(&regions, m1, true, ladder.as_ref(), &mut meta)?
                    }
                    Err(e) => return Err(e),
                }
            }
            CountingEngine::Classic => self.counts_classic(m1, m2, ladder.as_ref(), &mut meta)?,
        };
        Ok(counts.map(|counts| DiffMcResult {
            counts,
            counting_time: start.elapsed(),
            approx: meta.approx(),
        }))
    }

    /// The classic strategy: encode both models into one CNF per cell.
    fn counts_classic<A: CnfEncodable + ?Sized, B: CnfEncodable + ?Sized>(
        &self,
        m1: &A,
        m2: &B,
        ladder: Option<&FallbackLadder>,
        meta: &mut OutcomeMeta,
    ) -> Result<Option<DiffCounts>, EvalError> {
        let mut values = [0u128; 4];
        let cells = [
            (TreeLabel::True, TreeLabel::True),
            (TreeLabel::True, TreeLabel::False),
            (TreeLabel::False, TreeLabel::True),
            (TreeLabel::False, TreeLabel::False),
        ];
        for (slot, &(l1, l2)) in values.iter_mut().zip(&cells) {
            let n = m1.num_features();
            let mut cnf = Cnf::new(n);
            cnf.set_projection((0..n as u32).map(Var).collect());
            m1.try_encode_label_bounded(&mut cnf, l1, self.vote_node_bound)?;
            m2.try_encode_label_bounded(&mut cnf, l2, self.vote_node_bound)?;
            // Unique per (model pair, cell): count transiently so compiling
            // backends don't cache one-shot circuits.
            let mut outcome = self.backend.count_transient(&cnf);
            if outcome.is_budget_exhausted() {
                if let Some(ladder) = ladder {
                    outcome = ladder.rescue(&cnf, &[]);
                }
            }
            match meta.absorb(outcome) {
                None => return Ok(None),
                Some(v) => *slot = v,
            }
        }
        Ok(Some(DiffCounts {
            tt: values[0],
            tf: values[1],
            ft: values[2],
            ff: values[3],
        }))
    }

    /// The query plan: compile `other`'s two label circuits once, then
    /// condition them on every region cube of the region-listing side —
    /// batched, one [`count_cubes`](QueryCounter::count_cubes) call per
    /// label circuit, so a compiled backend sweeps each circuit exactly
    /// once for the whole model. With `transposed`, `regions` belong to
    /// the *second* model and the disagreement cells swap.
    fn counts_by_regions<B: CnfEncodable + ?Sized>(
        &self,
        regions: &[DecisionRegion],
        other: &B,
        transposed: bool,
        ladder: Option<&FallbackLadder>,
        meta: &mut OutcomeMeta,
    ) -> Result<Option<DiffCounts>, EvalError> {
        let other_true = other.try_label_cnf_bounded(TreeLabel::True, self.vote_node_bound)?;
        let other_false = other.try_label_cnf_bounded(TreeLabel::False, self.vote_node_bound)?;
        let cubes: Vec<&[Lit]> = regions.iter().map(|r| r.cube.as_slice()).collect();
        // Absorb the first label circuit's batch before paying for the
        // second: if a count already blew the budget, the evaluation is
        // void and the second batch would be wasted work. An enabled
        // fallback ladder rescues exhausted (and batch-omitted) outcomes
        // per region first, so under it nothing here short-circuits.
        let true_outcomes = self.backend.count_cubes(&other_true, &cubes);
        crate::counter::debug_assert_batch_complete(&true_outcomes, cubes.len());
        let true_outcomes = rescue_batch(ladder, &other_true, &cubes, true_outcomes);
        let mut in_true = Vec::with_capacity(regions.len());
        for outcome in true_outcomes {
            match meta.absorb(outcome) {
                Some(count) => in_true.push(count),
                None => return Ok(None),
            }
        }
        let in_false = self.backend.count_cubes(&other_false, &cubes);
        crate::counter::debug_assert_batch_complete(&in_false, cubes.len());
        let in_false = rescue_batch(ladder, &other_false, &cubes, in_false);
        let mut counts = DiffCounts::default();
        for (region, (both, only_region)) in regions.iter().zip(in_true.into_iter().zip(in_false)) {
            let Some(only_region) = meta.absorb(only_region) else {
                return Ok(None);
            };
            match region.label {
                TreeLabel::True => {
                    counts.tt += both;
                    counts.tf += only_region;
                }
                TreeLabel::False => {
                    counts.ft += both;
                    counts.ff += only_region;
                }
            }
        }
        if transposed {
            std::mem::swap(&mut counts.tf, &mut counts.ft);
        }
        Ok(Some(counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::forest::{ForestConfig, RandomForest};
    use mlkit::tree::{DecisionTree, TreeConfig};
    use mlkit::Classifier;

    fn dataset_from_fn(num_features: usize, f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(num_features);
        for bits in 0u32..(1 << num_features) {
            let row: Vec<u8> = (0..num_features).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn brute_diff<A: Classifier, B: Classifier>(m1: &A, m2: &B, n: usize) -> DiffCounts {
        let mut counts = DiffCounts::default();
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            match (m1.predict(&features), m2.predict(&features)) {
                (true, true) => counts.tt += 1,
                (true, false) => counts.tf += 1,
                (false, true) => counts.ft += 1,
                (false, false) => counts.ff += 1,
            }
        }
        counts
    }

    #[test]
    fn identical_trees_have_zero_diff() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && x[2] == 1);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(r.counts.tf, 0);
        assert_eq!(r.counts.ft, 0);
        assert_eq!(r.counts.diff(), 0.0);
        assert_eq!(r.counts.sim(), 1.0);
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    fn counts_match_brute_force_for_different_trees() {
        let full = dataset_from_fn(5, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let t1 = DecisionTree::fit(&full, TreeConfig::default());
        // Train the second tree on a subsample with a depth limit so the two
        // trees genuinely differ.
        let t2 = DecisionTree::fit(&full.subsample(12, 3), TreeConfig::with_max_depth(2));
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        let brute = brute_diff(&t1, &t2, 5);
        assert_eq!(r.counts, brute);
        assert!((r.counts.diff() + r.counts.sim() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_family_diff_matches_brute_force() {
        // A decision tree against a random forest trained on the same data.
        let full = dataset_from_fn(4, |x| (x[0] ^ x[1]) == 1 || x[3] == 1);
        let tree = DecisionTree::fit(&full, TreeConfig::with_max_depth(2));
        let forest = RandomForest::fit(
            &full,
            ForestConfig {
                num_trees: 5,
                seed: 9,
                ..ForestConfig::default()
            },
        );
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&tree, &forest)
            .expect("feature spaces match")
            .expect("no budget");
        let brute = brute_diff(&tree, &forest, 4);
        assert_eq!(r.counts, brute);
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    fn complementary_trees_have_diff_one() {
        let d = dataset_from_fn(3, |x| x[1] == 1);
        let d_inv = dataset_from_fn(3, |x| x[1] == 0);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d_inv, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(r.counts.tt, 0);
        assert_eq!(r.counts.ff, 0);
        assert_eq!(r.counts.diff(), 1.0);
    }

    #[test]
    fn compiled_engine_matches_classic_for_trees() {
        use crate::counter::CompiledCounter;
        let full = dataset_from_fn(5, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let t1 = DecisionTree::fit(&full, TreeConfig::default());
        let t2 = DecisionTree::fit(&full.subsample(12, 3), TreeConfig::with_max_depth(2));
        let backend = CompiledCounter::new();
        let compiled = DiffMc::with_engine(&backend, CountingEngine::Compiled)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(compiled.counts, brute_diff(&t1, &t2, 5));
        // Only t2's two label circuits were compiled.
        assert_eq!(backend.stats().misses, 2);
    }

    #[test]
    fn compiled_engine_uses_ensemble_regions_directly() {
        use crate::counter::CompiledCounter;
        // Both orders of a forest-vs-tree comparison ride the region plan
        // (the first side's regions condition the other side's circuits).
        let full = dataset_from_fn(4, |x| (x[0] ^ x[1]) == 1 || x[3] == 1);
        let tree = DecisionTree::fit(&full, TreeConfig::with_max_depth(2));
        let forest = RandomForest::fit(
            &full,
            ForestConfig {
                num_trees: 5,
                seed: 9,
                ..ForestConfig::default()
            },
        );
        let backend = CompiledCounter::new();
        let r = DiffMc::with_engine(&backend, CountingEngine::Compiled)
            .compare(&forest, &tree)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(r.counts, brute_diff(&forest, &tree, 4));

        // Both orders agree up to transposition of the disagreement cells.
        let swapped = DiffMc::with_engine(&backend, CountingEngine::Compiled)
            .compare(&tree, &forest)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(swapped.counts.tf, r.counts.ft);
        assert_eq!(swapped.counts.ft, r.counts.tf);
        assert_eq!(swapped.counts.tt, r.counts.tt);
    }

    #[test]
    fn compiled_engine_transposes_when_the_first_vote_circuit_blows_its_budget() {
        use crate::counter::CompiledCounter;
        // With a one-node vote budget the forest's region extraction fails,
        // but the tree (whose regions need no vote circuit) still carries
        // the plan through the transposed path.
        let full = dataset_from_fn(4, |x| (x[0] ^ x[1]) == 1 || x[3] == 1);
        let tree = DecisionTree::fit(&full, TreeConfig::with_max_depth(2));
        let forest = RandomForest::fit(
            &full,
            ForestConfig {
                num_trees: 5,
                seed: 9,
                ..ForestConfig::default()
            },
        );
        let backend = CompiledCounter::new();
        let r = DiffMc::with_engine(&backend, CountingEngine::Compiled)
            .vote_node_bound(1)
            .compare(&forest, &tree)
            .expect("feature spaces match")
            .expect("no budget");
        assert_eq!(r.counts, brute_diff(&forest, &tree, 4));

        // Two budget-blown ensembles propagate the typed error.
        let err = DiffMc::with_engine(&backend, CountingEngine::Compiled)
            .vote_node_bound(1)
            .compare(&forest, &forest)
            .expect_err("both vote circuits exceed one node");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn approx_metadata_reaches_the_diff_result() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && x[2] == 1);
        let t1 = DecisionTree::fit(&d, TreeConfig::default());
        let t2 = DecisionTree::fit(&d, TreeConfig::with_max_depth(1));
        let exact = CounterBackend::exact();
        let exact_result = DiffMc::new(&exact)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("no budget");
        assert!(exact_result.is_exact());
        assert_eq!(exact_result.approx, None);

        let approx = CounterBackend::approx();
        let approx_result = DiffMc::new(&approx)
            .compare(&t1, &t2)
            .expect("feature spaces match")
            .expect("approx always answers");
        assert!(!approx_result.is_exact());
        let info = approx_result.approx.expect("approximate runs carry (ε, δ)");
        assert!(info.epsilon > 0.0 && info.delta > 0.0);
    }

    #[test]
    fn mismatched_feature_counts_are_a_typed_error() {
        let t1 = DecisionTree::fit(&dataset_from_fn(3, |x| x[0] == 1), TreeConfig::default());
        let t2 = DecisionTree::fit(&dataset_from_fn(4, |x| x[0] == 1), TreeConfig::default());
        let backend = CounterBackend::exact();
        assert_eq!(
            DiffMc::new(&backend).compare(&t1, &t2),
            Err(EvalError::FeatureMismatch {
                model_features: 4,
                expected_features: 3,
                context: "first model",
            })
        );
    }
}
