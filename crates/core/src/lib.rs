//! # mcml
//!
//! The core MCML contribution: quantifying the performance of (and semantic
//! differences among) trained classifiers **over the entire bounded input
//! space** by reduction to projected model counting.
//!
//! The evaluation core is built around three abstractions:
//!
//! * [`encode`] — the [`CnfEncodable`] trait for model
//!   families whose decision regions translate to CNF, implemented by
//!   decision trees (the auxiliary-variable-free Tree2CNF translation),
//!   random forests (majority vote via a totalizer cardinality encoding)
//!   and AdaBoost ensembles (weighted-vote threshold compiled to clauses);
//! * [`counter`] — the [`ModelCounter`] trait with
//!   structured [`CountOutcome`]s (exact / (ε, δ)
//!   approximate / budget-exhausted) and the memoizing
//!   [`CachedCounter`] wrapper;
//! * [`framework`] — the end-to-end pipeline (dataset → training → test-set
//!   metrics → whole-space metrics), including the parallel batch
//!   [`Runner`] used by the table harnesses.
//!
//! On top of those sit the metrics and plumbing:
//!
//! * [`tree2cnf`] — the decision-tree-specific translation (negate the DNF
//!   of the complementary label's paths);
//! * [`accmc`] — `AccMC`: whole-space true/false positive/negative counts of
//!   a model against a ground-truth formula φ, and the derived accuracy,
//!   precision, recall and F1 metrics;
//! * [`diffmc`] — `DiffMC`: whole-space agreement/disagreement counts of two
//!   models (TT / TF / FT / FF) and the derived diff/sim ratios — no ground
//!   truth or dataset required;
//! * [`backend`] — the exact/approximate [`CounterBackend`] selector;
//! * [`error`] — typed [`EvalError`]s replacing the
//!   panics of the original concrete-type API;
//! * [`report`] — plain-text table formatting shared by the harness
//!   binaries.
//!
//! # Example: one table row, sequentially
//!
//! ```
//! use mcml::backend::CounterBackend;
//! use mcml::framework::{Experiment, ExperimentConfig};
//! use relspec::properties::Property;
//!
//! // One row of Table 5 (no symmetry breaking) at a small scope.
//! let config = ExperimentConfig::table5(Property::Reflexive, 3);
//! let result = Experiment::new(config).run(&CounterBackend::exact());
//! let whole_space = result.whole_space.expect("exact backend has no budget");
//! assert_eq!(whole_space.counts.total(), 512);
//! ```
//!
//! # Example: a batch of rows, in parallel, with shared counting
//!
//! ```
//! use mcml::counter::{CachedCounter, ModelCounter};
//! use mcml::framework::{ExperimentConfig, ModelFamily, Runner};
//! use modelcount::exact::ExactCounter;
//! use relspec::properties::Property;
//!
//! let configs: Vec<ExperimentConfig> = [Property::Reflexive, Property::Function]
//!     .into_iter()
//!     .map(|p| ExperimentConfig::table5(p, 3))
//!     .collect();
//! let backend = CachedCounter::new(ExactCounter::new());
//! let rows = Runner::new()
//!     .families(&[ModelFamily::Dt, ModelFamily::Rft])
//!     .rft_trees(5)
//!     .run(&configs, &backend)
//!     .expect("well-formed configs");
//! assert_eq!(rows.len(), 4); // 2 properties x 2 model families
//! for row in &rows {
//!     let ws = row.whole_space.expect("exact backend has no budget");
//!     assert_eq!(ws.counts.total(), 512);
//! }
//! ```

pub mod accmc;
pub mod artifact;
pub mod backend;
pub mod counter;
pub mod diffmc;
pub mod encode;
pub mod error;
pub mod fallback;
pub mod framework;
pub mod neural;
pub mod persist;
pub mod report;
pub mod tree2cnf;

pub use accmc::{AccMc, AccMcResult, ApproxInfo, CountingEngine, SpaceCounts};
pub use artifact::{CircuitArtifact, RegionCover};
pub use backend::CounterBackend;
pub use counter::{CachedCounter, CompiledCounter, CountOutcome, ModelCounter, QueryCounter};
pub use diffmc::{DiffCounts, DiffMc, DiffMcResult};
pub use encode::CnfEncodable;
pub use error::EvalError;
pub use fallback::FallbackPolicy;
pub use framework::{
    evaluate_all_models, Experiment, ExperimentConfig, ExperimentResult, ModelFamily, Runner,
    RunnerRow,
};
pub use tree2cnf::{tree_label_cnf, TreeLabel};
