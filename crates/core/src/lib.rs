//! # mcml
//!
//! The core MCML contribution: quantifying the performance of (and semantic
//! differences among) trained decision trees **over the entire bounded input
//! space** by reduction to projected model counting.
//!
//! * [`tree2cnf`] — the auxiliary-variable-free translation of decision-tree
//!   logic to CNF (negate the DNF of the complementary label's paths);
//! * [`accmc`] — `AccMC`: whole-space true/false positive/negative counts of
//!   a tree against a ground-truth formula φ, and the derived accuracy,
//!   precision, recall and F1 metrics;
//! * [`diffmc`] — `DiffMC`: whole-space agreement/disagreement counts of two
//!   trees (TT / TF / FT / FF) and the derived diff/sim ratios — no ground
//!   truth or dataset required;
//! * [`backend`] — selection of the counting backend (exact / approximate);
//! * [`framework`] — the end-to-end pipeline (dataset → training → test-set
//!   metrics → whole-space metrics) used by the experiment harness;
//! * [`report`] — plain-text table formatting shared by the harness
//!   binaries.
//!
//! # Example
//!
//! ```
//! use mcml::backend::CounterBackend;
//! use mcml::framework::{Experiment, ExperimentConfig};
//! use relspec::properties::Property;
//!
//! // One row of Table 5 (no symmetry breaking) at a small scope.
//! let config = ExperimentConfig::table5(Property::Reflexive, 3);
//! let result = Experiment::new(config).run(&CounterBackend::exact());
//! let whole_space = result.whole_space.expect("exact backend has no budget");
//! assert_eq!(whole_space.counts.total(), 512);
//! ```

pub mod accmc;
pub mod backend;
pub mod diffmc;
pub mod framework;
pub mod report;
pub mod tree2cnf;

pub use accmc::{AccMc, AccMcResult, SpaceCounts};
pub use backend::CounterBackend;
pub use diffmc::{DiffCounts, DiffMc, DiffMcResult};
pub use framework::{evaluate_all_models, Experiment, ExperimentConfig, ExperimentResult};
pub use tree2cnf::{tree_label_cnf, TreeLabel};
