//! Model-counter backend selection.
//!
//! MCML's tool supports two back-ends: the exact counter (ProjMC in the
//! paper, [`modelcount::exact`] here) and the approximate counter (ApproxMC
//! in the paper, [`modelcount::approx`] here). The metrics in [`crate::accmc`]
//! and [`crate::diffmc`] are agnostic to which one is used.

use modelcount::approx::{ApproxConfig, ApproxCounter};
use modelcount::exact::ExactCounter;
use satkit::cnf::Cnf;

/// A projected model-counting backend.
#[derive(Debug, Clone)]
pub enum CounterBackend {
    /// Exact counting (the ProjMC role). Returns `None` when the node budget
    /// is exhausted.
    Exact(ExactCounter),
    /// Approximate counting (the ApproxMC role).
    Approx(ApproxCounter),
}

impl CounterBackend {
    /// An exact backend with no budget.
    pub fn exact() -> Self {
        CounterBackend::Exact(ExactCounter::new())
    }

    /// An exact backend that gives up after `max_nodes` search nodes.
    pub fn exact_with_budget(max_nodes: u64) -> Self {
        CounterBackend::Exact(ExactCounter::with_node_budget(max_nodes))
    }

    /// An approximate backend with default (ε, δ).
    pub fn approx() -> Self {
        CounterBackend::Approx(ApproxCounter::default())
    }

    /// An approximate backend with a specific configuration.
    pub fn approx_with(config: ApproxConfig) -> Self {
        CounterBackend::Approx(ApproxCounter::new(config))
    }

    /// Short name for reports ("ProjMC-like" exact vs "ApproxMC-like").
    pub fn name(&self) -> &'static str {
        match self {
            CounterBackend::Exact(_) => "exact",
            CounterBackend::Approx(_) => "approx",
        }
    }

    /// Counts the models of `cnf` projected onto its effective projection
    /// set. Returns `None` only for an exact backend whose budget ran out.
    pub fn count(&self, cnf: &Cnf) -> Option<u128> {
        match self {
            CounterBackend::Exact(c) => c.count(cnf),
            CounterBackend::Approx(c) => Some(c.count(cnf)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satkit::cnf::Lit;

    #[test]
    fn both_backends_count_a_small_formula() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        assert_eq!(CounterBackend::exact().count(&cnf), Some(6));
        assert_eq!(CounterBackend::approx().count(&cnf), Some(6));
    }

    #[test]
    fn budgeted_exact_backend_gives_up() {
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        assert_eq!(CounterBackend::exact_with_budget(2).count(&cnf), None);
    }

    #[test]
    fn names() {
        assert_eq!(CounterBackend::exact().name(), "exact");
        assert_eq!(CounterBackend::approx().name(), "approx");
    }
}
