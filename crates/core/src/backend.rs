//! Model-counter backend selection.
//!
//! MCML's tool supports two back-ends: the exact counter (ProjMC in the
//! paper, [`modelcount::exact`] here) and the approximate counter (ApproxMC
//! in the paper, [`modelcount::approx`] here). [`CounterBackend`] is a thin
//! runtime selector between the two, kept for CLI-style call sites; the
//! evaluation core itself is generic over any
//! [`ModelCounter`](crate::counter::ModelCounter), which this enum
//! implements. Counts are reported as structured
//! [`CountOutcome`](crate::counter::CountOutcome) values.

use crate::counter::{CountOutcome, ModelCounter};
use modelcount::approx::{ApproxConfig, ApproxCounter};
use modelcount::exact::ExactCounter;
use satkit::cnf::Cnf;

/// A projected model-counting backend selector.
#[derive(Debug, Clone)]
pub enum CounterBackend {
    /// Exact counting (the ProjMC role); reports
    /// [`CountOutcome::BudgetExhausted`] when its node budget runs out.
    Exact(ExactCounter),
    /// Approximate counting (the ApproxMC role).
    Approx(ApproxCounter),
}

impl CounterBackend {
    /// An exact backend with no budget.
    pub fn exact() -> Self {
        CounterBackend::Exact(ExactCounter::new())
    }

    /// An exact backend that gives up after `max_nodes` search nodes.
    pub fn exact_with_budget(max_nodes: u64) -> Self {
        CounterBackend::Exact(ExactCounter::with_node_budget(max_nodes))
    }

    /// An approximate backend with default (ε, δ).
    pub fn approx() -> Self {
        CounterBackend::Approx(ApproxCounter::default())
    }

    /// An approximate backend with a specific configuration.
    pub fn approx_with(config: ApproxConfig) -> Self {
        CounterBackend::Approx(ApproxCounter::new(config))
    }

    /// Short name for reports ("ProjMC-like" exact vs "ApproxMC-like").
    pub fn name(&self) -> &'static str {
        match self {
            CounterBackend::Exact(_) => "exact",
            CounterBackend::Approx(_) => "approx",
        }
    }

    /// Counts the models of `cnf` projected onto its effective projection
    /// set (inherent convenience for [`ModelCounter::count`]).
    pub fn count(&self, cnf: &Cnf) -> CountOutcome {
        ModelCounter::count(self, cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satkit::cnf::Lit;

    #[test]
    fn both_backends_count_a_small_formula() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        assert_eq!(CounterBackend::exact().count(&cnf), CountOutcome::Exact(6));
        assert_eq!(CounterBackend::approx().count(&cnf).value(), Some(6));
        assert!(!CounterBackend::approx().count(&cnf).is_exact());
    }

    #[test]
    fn budgeted_exact_backend_gives_up() {
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let outcome = CounterBackend::exact_with_budget(2).count(&cnf);
        assert!(outcome.is_budget_exhausted());
        match outcome {
            CountOutcome::BudgetExhausted { nodes_used } => assert!(nodes_used >= 2),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn names() {
        assert_eq!(CounterBackend::exact().name(), "exact");
        assert_eq!(CounterBackend::approx().name(), "approx");
    }
}
