//! Model-counter backend selection.
//!
//! MCML's tool supports two back-ends: the exact counter (ProjMC in the
//! paper, [`modelcount::exact`] here) and the approximate counter (ApproxMC
//! in the paper, [`modelcount::approx`] here); the reproduction adds a
//! third, the compile-once/query-many
//! [`CompiledCounter`] built on
//! [`satkit::ddnnf`]. [`CounterBackend`] is a thin runtime selector among
//! them, kept for CLI-style call sites; the evaluation core itself is
//! generic over any [`ModelCounter`] (and
//! [`QueryCounter`](crate::counter::QueryCounter) for conditioned query
//! plans), which this enum implements. Counts are reported as structured
//! [`CountOutcome`] values.

use crate::counter::{CompiledCounter, CountOutcome, ModelCounter};
use modelcount::approx::{ApproxConfig, ApproxCounter};
use modelcount::exact::ExactCounter;
use satkit::cnf::Cnf;

/// A projected model-counting backend selector.
#[derive(Debug, Clone)]
pub enum CounterBackend {
    /// Exact counting (the ProjMC role); reports
    /// [`CountOutcome::BudgetExhausted`] when its node budget runs out.
    Exact(ExactCounter),
    /// Approximate counting (the ApproxMC role).
    Approx(ApproxCounter),
    /// Exact counting through a cached d-DNNF compilation (the knowledge
    /// compilation lineage); clones share the circuit cache.
    Compiled(CompiledCounter),
}

impl CounterBackend {
    /// An exact backend with no budget.
    pub fn exact() -> Self {
        CounterBackend::Exact(ExactCounter::new())
    }

    /// An exact backend that gives up after `max_nodes` search nodes.
    pub fn exact_with_budget(max_nodes: u64) -> Self {
        CounterBackend::Exact(ExactCounter::with_node_budget(max_nodes))
    }

    /// An approximate backend with default (ε, δ).
    pub fn approx() -> Self {
        CounterBackend::Approx(ApproxCounter::default())
    }

    /// An approximate backend with a specific configuration.
    pub fn approx_with(config: ApproxConfig) -> Self {
        CounterBackend::Approx(ApproxCounter::new(config))
    }

    /// A compiled (d-DNNF) backend with no compilation budget.
    pub fn compiled() -> Self {
        CounterBackend::Compiled(CompiledCounter::new())
    }

    /// A compiled backend that gives up on a formula after `max_decisions`
    /// compilation decisions.
    pub fn compiled_with_budget(max_decisions: u64) -> Self {
        CounterBackend::Compiled(CompiledCounter::with_decision_budget(max_decisions))
    }

    /// Short name for reports (`"exact"`, `"approx"` or `"compiled"`).
    pub fn name(&self) -> &'static str {
        match self {
            CounterBackend::Exact(_) => "exact",
            CounterBackend::Approx(_) => "approx",
            CounterBackend::Compiled(_) => "compiled",
        }
    }

    /// The tag the persisted count cache is keyed by. For the exact and
    /// compiled backends this is just [`CounterBackend::name`] — their
    /// outcomes mean the same thing under any configuration — but an
    /// approximate backend's estimates are only reusable under the *same*
    /// `(ε, δ, seed)`, so its tag spells the configuration out. A cache
    /// saved under one tolerance is therefore never served to a query
    /// demanding a tighter one: the file name and header simply don't
    /// match.
    pub fn cache_tag(&self) -> String {
        match self {
            CounterBackend::Exact(_) | CounterBackend::Compiled(_) => self.name().to_string(),
            CounterBackend::Approx(counter) => {
                let config = counter.config();
                format!(
                    "approx-e{}-d{}-s{:#x}",
                    config.epsilon, config.delta, config.seed
                )
            }
        }
    }

    /// The inner [`CompiledCounter`] when this is the compiled backend —
    /// the handle the artifact warm-start path needs for
    /// preloading/snapshotting circuits (a clone of it shares the cache).
    pub fn as_compiled(&self) -> Option<&CompiledCounter> {
        match self {
            CounterBackend::Compiled(c) => Some(c),
            _ => None,
        }
    }

    /// Counts the models of `cnf` projected onto its effective projection
    /// set (inherent convenience for [`ModelCounter::count`]).
    pub fn count(&self, cnf: &Cnf) -> CountOutcome {
        ModelCounter::count(self, cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satkit::cnf::Lit;

    #[test]
    fn both_backends_count_a_small_formula() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        assert_eq!(CounterBackend::exact().count(&cnf), CountOutcome::Exact(6));
        assert_eq!(CounterBackend::approx().count(&cnf).value(), Some(6));
        assert!(!CounterBackend::approx().count(&cnf).is_exact());
    }

    #[test]
    fn budgeted_exact_backend_gives_up() {
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let outcome = CounterBackend::exact_with_budget(2).count(&cnf);
        assert!(outcome.is_budget_exhausted());
        match outcome {
            CountOutcome::BudgetExhausted { nodes_used } => assert!(nodes_used >= 2),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn names() {
        assert_eq!(CounterBackend::exact().name(), "exact");
        assert_eq!(CounterBackend::approx().name(), "approx");
    }

    #[test]
    fn cache_tags_distinguish_approx_configurations() {
        assert_eq!(CounterBackend::exact().cache_tag(), "exact");
        assert_eq!(CounterBackend::compiled().cache_tag(), "compiled");
        let defaults = CounterBackend::approx().cache_tag();
        let tighter = CounterBackend::approx_with(ApproxConfig {
            epsilon: 0.1,
            ..ApproxConfig::default()
        })
        .cache_tag();
        assert_ne!(defaults, tighter);
        assert!(defaults.starts_with("approx-e"));
        let reseeded = CounterBackend::approx_with(ApproxConfig {
            seed: 7,
            ..ApproxConfig::default()
        })
        .cache_tag();
        assert_ne!(defaults, reseeded);
    }
}
