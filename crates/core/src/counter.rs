//! The pluggable model-counting abstraction: the [`ModelCounter`] trait, the
//! structured [`CountOutcome`] it returns, the [`QueryCounter`] extension
//! for conditioned (cube) queries, the compile-once/query-many
//! [`CompiledCounter`], and the memoizing [`CachedCounter`] wrapper.
//!
//! Historically the evaluation core took a concrete `CounterBackend` whose
//! `count` returned `Option<u128>` — conflating "the budget ran out" with
//! the absence of a value and hiding whether a number was exact or an
//! (ε, δ)-estimate. [`CountOutcome`] makes the three cases explicit, and any
//! counter implementing [`ModelCounter`] can drive the AccMC/DiffMC metrics:
//! the built-in exact and approximate counters, the [`CounterBackend`] enum
//! (kept as a thin selector for CLI-style call sites), or a
//! [`CachedCounter`] wrapping any of them so repeated formulas — e.g. the
//! shared φ / ¬φ prefixes of the four AccMC counts across table rows — are
//! counted once.
//!
//! [`QueryCounter`] extends the contract with
//! [`count_conditioned`](QueryCounter::count_conditioned): counting the
//! models of a formula restricted to a cube of projection literals. Search
//! counters answer it by re-counting the conjunction; [`CompiledCounter`]
//! compiles the formula to a d-DNNF circuit **once** ([`satkit::ddnnf`])
//! and answers every subsequent cube query in time linear in the circuit —
//! the access pattern of the AccMC/DiffMC query plans, where one φ is hit
//! with the decision regions of many models.

use crate::backend::CounterBackend;
use modelcount::approx::ApproxCounter;
use modelcount::exact::ExactCounter;
use satkit::cnf::{Cnf, Lit};
use satkit::ddnnf::{CompileError, CompileStats, Compiler, Ddnnf, SharedComponentCache};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The structured result of one projected model count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountOutcome {
    /// An exact count.
    Exact(u128),
    /// An (ε, δ)-approximate count: within a factor `1 + epsilon` of the
    /// true count with probability at least `1 - delta`.
    Approx {
        /// The estimated count.
        estimate: u128,
        /// Tolerance ε of the estimate.
        epsilon: f64,
        /// Confidence parameter δ of the estimate.
        delta: f64,
    },
    /// The counter gave up before producing a value (the paper's time-outs).
    BudgetExhausted {
        /// Search nodes explored before the budget ran out.
        nodes_used: u64,
    },
}

impl CountOutcome {
    /// The counted (or estimated) value, `None` when the budget ran out.
    pub fn value(&self) -> Option<u128> {
        match *self {
            CountOutcome::Exact(v) => Some(v),
            CountOutcome::Approx { estimate, .. } => Some(estimate),
            CountOutcome::BudgetExhausted { .. } => None,
        }
    }

    /// Whether this outcome carries an exact count.
    pub fn is_exact(&self) -> bool {
        matches!(self, CountOutcome::Exact(_))
    }

    /// Whether the counter gave up.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, CountOutcome::BudgetExhausted { .. })
    }
}

/// A projected model-counting backend usable by the evaluation core.
///
/// Implementations must be shareable across the threads of a
/// [`Runner`](crate::framework::Runner), hence the `Send + Sync` supertrait.
pub trait ModelCounter: Send + Sync {
    /// Short name for reports (e.g. `"exact"`, `"approx"`, `"cached"`).
    fn name(&self) -> &str;

    /// Counts the models of `cnf` projected onto its effective projection
    /// set.
    fn count(&self, cnf: &Cnf) -> CountOutcome;

    /// Counts a formula the caller will **not** ask about again (e.g. the
    /// per-model conjunction CNFs of the classic AccMC/DiffMC paths).
    ///
    /// Most backends answer exactly like [`count`](Self::count); backends
    /// that build a per-formula artifact ([`CompiledCounter`]'s circuits)
    /// answer with a transient strategy instead of growing their caches
    /// with entries that can never be reused.
    fn count_transient(&self, cnf: &Cnf) -> CountOutcome {
        self.count(cnf)
    }
}

/// Conditioned counting: the extension trait behind the compiled AccMC and
/// DiffMC query plans.
///
/// `count_conditioned(cnf, cube)` is semantically `count(cnf ∧ cube)` for a
/// cube of literals over the formula's projection variables. The provided
/// implementation literally builds that conjunction and delegates to
/// [`ModelCounter::count`] — correct for every backend, with no sharing.
/// [`CompiledCounter`] overrides it to answer from a circuit compiled once
/// per formula, which is what makes region-cube query plans asymptotically
/// cheaper than four-conjunction counting.
pub trait QueryCounter: ModelCounter {
    /// Counts the models of `cnf ∧ cube` projected onto the effective
    /// projection set of `cnf`.
    fn count_conditioned(&self, cnf: &Cnf, cube: &[Lit]) -> CountOutcome {
        if cube.is_empty() {
            return self.count(cnf);
        }
        let mut conditioned = cnf.clone();
        for &lit in cube {
            conditioned.add_unit(lit);
        }
        self.count(&conditioned)
    }

    /// Counts `cnf ∧ cube` for **every** cube of a batch — the query shape
    /// of the compiled AccMC/DiffMC region-sum plans, which evaluate one
    /// model side with its whole decision-region cube list at once.
    ///
    /// The provided implementation answers cube by cube (correct for any
    /// backend). [`CompiledCounter`] overrides it to resolve the circuit
    /// once and evaluate the entire batch in a single topological sweep
    /// ([`Ddnnf::count_cubes`]); [`CachedCounter`] overrides it to serve
    /// memoized cubes from its cache and forward only the misses to the
    /// inner counter's batch path.
    ///
    /// Cubes are borrowed slices so the region-sum plans can pass their
    /// decision-region cube lists without cloning a single literal.
    ///
    /// A batch with a [`BudgetExhausted`](CountOutcome::BudgetExhausted)
    /// count is void for the region-sum plans, so implementations may stop
    /// early: the result always contains the outcomes **up to and
    /// including the first exhausted count**, and outcomes past it may be
    /// omitted. Callers must absorb outcomes in order and treat the
    /// exhausted one as ending the batch.
    fn count_cubes(&self, cnf: &Cnf, cubes: &[&[Lit]]) -> Vec<CountOutcome> {
        let mut outcomes = Vec::with_capacity(cubes.len());
        for cube in cubes {
            let outcome = self.count_conditioned(cnf, cube);
            let exhausted = matches!(outcome, CountOutcome::BudgetExhausted { .. });
            outcomes.push(outcome);
            if exhausted {
                break;
            }
        }
        outcomes
    }
}

/// Debug-asserts the early-exit contract of
/// [`QueryCounter::count_cubes`]: a batch shorter than its cube list must
/// end in the exhausted count that voided it. The AccMC/DiffMC region-sum
/// plans zip outcomes against their region lists, so a contract-violating
/// short batch would otherwise silently drop regions and mis-sum the
/// space counts.
pub(crate) fn debug_assert_batch_complete(outcomes: &[CountOutcome], cubes: usize) {
    debug_assert!(
        outcomes.len() == cubes
            || matches!(outcomes.last(), Some(CountOutcome::BudgetExhausted { .. })),
        "count_cubes returned {} outcomes for {cubes} cubes without a trailing exhausted count",
        outcomes.len(),
    );
}

impl ModelCounter for ExactCounter {
    fn name(&self) -> &str {
        "exact"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        match self.try_count(cnf) {
            Ok((value, _)) => CountOutcome::Exact(value),
            Err(stats) => CountOutcome::BudgetExhausted {
                nodes_used: stats.nodes,
            },
        }
    }
}

impl ModelCounter for ApproxCounter {
    fn name(&self) -> &str {
        "approx"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        CountOutcome::Approx {
            estimate: self.count(cnf),
            epsilon: self.config().epsilon,
            delta: self.config().delta,
        }
    }
}

impl ModelCounter for CounterBackend {
    fn name(&self) -> &str {
        CounterBackend::name(self)
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        match self {
            CounterBackend::Exact(c) => ModelCounter::count(c, cnf),
            CounterBackend::Approx(c) => ModelCounter::count(c, cnf),
            CounterBackend::Compiled(c) => ModelCounter::count(c, cnf),
        }
    }

    fn count_transient(&self, cnf: &Cnf) -> CountOutcome {
        match self {
            CounterBackend::Exact(c) => c.count_transient(cnf),
            CounterBackend::Approx(c) => c.count_transient(cnf),
            CounterBackend::Compiled(c) => c.count_transient(cnf),
        }
    }
}

impl QueryCounter for ExactCounter {}

impl QueryCounter for ApproxCounter {}

impl QueryCounter for CounterBackend {
    fn count_conditioned(&self, cnf: &Cnf, cube: &[Lit]) -> CountOutcome {
        match self {
            CounterBackend::Exact(c) => QueryCounter::count_conditioned(c, cnf, cube),
            CounterBackend::Approx(c) => QueryCounter::count_conditioned(c, cnf, cube),
            CounterBackend::Compiled(c) => QueryCounter::count_conditioned(c, cnf, cube),
        }
    }

    fn count_cubes(&self, cnf: &Cnf, cubes: &[&[Lit]]) -> Vec<CountOutcome> {
        match self {
            CounterBackend::Exact(c) => QueryCounter::count_cubes(c, cnf, cubes),
            CounterBackend::Approx(c) => QueryCounter::count_cubes(c, cnf, cubes),
            CounterBackend::Compiled(c) => QueryCounter::count_cubes(c, cnf, cubes),
        }
    }
}

/// Statistics of a [`CompiledCounter`]'s compilation cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Queries served from an already-compiled circuit.
    pub hits: u64,
    /// Formulas compiled (including failed compilations).
    pub misses: u64,
}

/// A compile-once/query-many counting backend built on [`satkit::ddnnf`].
///
/// The first count of a formula compiles it into a d-DNNF circuit; the
/// circuit is cached (keyed on [`cnf_fingerprint`]) and every later count —
/// plain or cube-conditioned via [`QueryCounter::count_conditioned`] — is a
/// linear circuit traversal. This is the engine behind
/// [`CountingEngine::Compiled`](crate::accmc::CountingEngine): AccMC
/// compiles φ and ¬φ once per (property, scope) and then evaluates every
/// model of the batch with per-region cube queries.
///
/// Cloning is cheap and **shares** the circuit cache (it lives behind an
/// [`Arc`]), so one counter can serve all threads of a
/// [`Runner`](crate::framework::Runner) whether shared by reference or by
/// clone.
///
/// Beyond whole-circuit reuse, the counter owns a cross-query
/// [`SharedComponentCache`] for the lifetime of the batch: every
/// compilation it runs feeds and probes one content-addressed component
/// store, so φ, φ∧ψ and the per-family label CNFs reuse each other's
/// interned components even though their fingerprints differ. The
/// cross-query hit rate is surfaced through
/// [`compile_stats`](Self::compile_stats) (`shared_hits` /
/// `shared_lookups`); [`advance_shared_generation`](Self::advance_shared_generation)
/// bounds the component store to its live working set at batch boundaries.
///
/// A formula whose projection set exceeds the circuit representation's
/// 128-variable limit (beyond every scope of the study) falls back to an
/// in-place [`ExactCounter`] search with the same node budget.
#[derive(Debug, Clone)]
pub struct CompiledCounter {
    compiler: Compiler,
    fallback: ExactCounter,
    circuits: Arc<Mutex<CircuitCache>>,
    shared: Arc<SharedComponentCache>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

/// Fingerprint-keyed store of compilation results (shared via [`Arc`] so a
/// hit hands out the circuit without cloning it). Each entry remembers
/// whether the circuit was compiled by this process or seeded from a
/// persisted artifact, so warm-start claims stay verifiable.
type CircuitCache = HashMap<u128, CachedCircuit>;

#[derive(Debug, Clone)]
struct CachedCircuit {
    result: Arc<Result<Ddnnf, CompileError>>,
    preloaded: bool,
}

impl Default for CompiledCounter {
    fn default() -> Self {
        CompiledCounter::new()
    }
}

impl CompiledCounter {
    /// A compiled counter with no compilation budget.
    pub fn new() -> Self {
        CompiledCounter::with_budget(Compiler::new(), ExactCounter::new())
    }

    /// A compiled counter that gives up on a formula after `max_decisions`
    /// compilation decisions (reported as
    /// [`CountOutcome::BudgetExhausted`], like the search counters).
    pub fn with_decision_budget(max_decisions: u64) -> Self {
        CompiledCounter::with_budget(
            Compiler::with_decision_budget(max_decisions),
            ExactCounter::with_node_budget(max_decisions),
        )
    }

    fn with_budget(compiler: Compiler, fallback: ExactCounter) -> Self {
        let shared = Arc::new(SharedComponentCache::new());
        CompiledCounter {
            compiler: compiler.with_shared_cache(Arc::clone(&shared)),
            fallback,
            circuits: Arc::new(Mutex::new(HashMap::new())),
            shared,
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cross-query component cache every compilation of this counter
    /// (and its clones) feeds and probes. Exposed so long-lived owners —
    /// the query server, a multi-batch harness — can inspect its size and
    /// cumulative hit counters.
    pub fn shared_cache(&self) -> &Arc<SharedComponentCache> {
        &self.shared
    }

    /// Closes the component cache's current generation, dropping entries
    /// the finished batch never touched. Call between batches to keep the
    /// cross-query store bounded to its live working set.
    pub fn advance_shared_generation(&self) {
        self.shared.advance_generation();
    }

    /// Hit/miss statistics of the circuit cache.
    pub fn stats(&self) -> CompileCacheStats {
        CompileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The summed [`CompileStats`] of every circuit **compiled by this
    /// process** — decisions, conflicts, component-cache hit counts — the
    /// numbers the counting benches export to `BENCH_counting.json` so
    /// branching-heuristic regressions show up in the perf trail, not just
    /// as slower wall-clock. Circuits seeded by
    /// [`preload_circuits`](Self::preload_circuits) are excluded: their
    /// work was paid by an earlier process, so a fully warm start reports
    /// zero decisions here (the warm-start proof the artifact tests
    /// assert).
    pub fn compile_stats(&self) -> CompileStats {
        let circuits = self.circuits.lock().expect("circuit cache poisoned");
        let mut total = CompileStats::default();
        for entry in circuits.values() {
            if entry.preloaded {
                continue;
            }
            if let Ok(circuit) = entry.result.as_ref() {
                let s = circuit.stats();
                total.decisions += s.decisions;
                total.cache_hits += s.cache_hits;
                total.cache_lookups += s.cache_lookups;
                total.conflicts += s.conflicts;
                total.sat_calls += s.sat_calls;
                total.shared_hits += s.shared_hits;
                total.shared_lookups += s.shared_lookups;
            }
        }
        total
    }

    /// Seeds the circuit cache with circuits deserialized from an
    /// artifact. Entries already in the cache win (a circuit this process
    /// compiled is at least as fresh as the artifact's copy), and
    /// preloaded circuits are excluded from
    /// [`compile_stats`](Self::compile_stats).
    pub fn preload_circuits<I: IntoIterator<Item = (u128, Ddnnf)>>(&self, circuits: I) {
        use std::collections::hash_map::Entry;
        let mut cache = self.circuits.lock().expect("circuit cache poisoned");
        for (key, circuit) in circuits {
            if let Entry::Vacant(slot) = cache.entry(key) {
                slot.insert(CachedCircuit {
                    result: Arc::new(Ok(circuit)),
                    preloaded: true,
                });
            }
        }
    }

    /// Number of cached circuits that were seeded by
    /// [`preload_circuits`](Self::preload_circuits) rather than compiled
    /// by this process.
    pub fn preloaded_len(&self) -> usize {
        self.circuits
            .lock()
            .expect("circuit cache poisoned")
            .values()
            .filter(|entry| entry.preloaded)
            .count()
    }

    /// A clone of every successfully compiled circuit in the cache,
    /// process-compiled and preloaded alike, keyed by fingerprint — the
    /// payload [`crate::artifact::save_artifact`] persists. Failed
    /// compilations are never persisted: a later run may carry a larger
    /// budget and should retry them.
    pub fn snapshot_circuits(&self) -> Vec<(u128, Ddnnf)> {
        let cache = self.circuits.lock().expect("circuit cache poisoned");
        let mut out = Vec::new();
        for (key, entry) in cache.iter() {
            if let Ok(circuit) = entry.result.as_ref() {
                out.push((*key, circuit.clone()));
            }
        }
        out
    }

    /// Number of distinct formulas compiled (successfully or not).
    pub fn len(&self) -> usize {
        self.circuits.lock().expect("circuit cache poisoned").len()
    }

    /// Whether no formula has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached circuit (statistics are kept).
    pub fn clear(&self) {
        self.circuits
            .lock()
            .expect("circuit cache poisoned")
            .clear();
    }

    /// The compiled circuit for `cnf`, compiling on first sight.
    fn circuit(&self, cnf: &Cnf) -> Arc<Result<Ddnnf, CompileError>> {
        let key = cnf_fingerprint(cnf);
        if let Some(c) = self
            .circuits
            .lock()
            .expect("circuit cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&c.result);
        }
        // Compile outside the lock so concurrent misses on different
        // formulas proceed in parallel (a duplicated compile on the same
        // formula is merely redundant work, never wrong).
        let compiled = Arc::new(self.compiler.compile(cnf));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.circuits
            .lock()
            .expect("circuit cache poisoned")
            .insert(
                key,
                CachedCircuit {
                    result: Arc::clone(&compiled),
                    preloaded: false,
                },
            );
        compiled
    }

    fn outcome(&self, cnf: &Cnf, cube: &[Lit]) -> CountOutcome {
        match &*self.circuit(cnf) {
            Ok(circuit) => CountOutcome::Exact(circuit.count_conditioned(cube)),
            Err(CompileError::BudgetExhausted { decisions }) => CountOutcome::BudgetExhausted {
                nodes_used: *decisions,
            },
            Err(CompileError::TooManyProjectionVars { .. }) => {
                QueryCounter::count_conditioned(&self.fallback, cnf, cube)
            }
        }
    }
}

impl ModelCounter for CompiledCounter {
    fn name(&self) -> &str {
        "compiled"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        self.outcome(cnf, &[])
    }

    /// One-shot formulas are answered by the search fallback (same budget)
    /// — compiling them would cost more than the search and permanently
    /// cache a circuit that is never queried again.
    fn count_transient(&self, cnf: &Cnf) -> CountOutcome {
        ModelCounter::count(&self.fallback, cnf)
    }
}

impl QueryCounter for CompiledCounter {
    fn count_conditioned(&self, cnf: &Cnf, cube: &[Lit]) -> CountOutcome {
        self.outcome(cnf, cube)
    }

    /// The whole batch is answered from **one** circuit resolution (a
    /// single cache probe) and one topological sweep
    /// ([`Ddnnf::count_cubes`]) — no per-cube walk, no per-cube memo.
    fn count_cubes(&self, cnf: &Cnf, cubes: &[&[Lit]]) -> Vec<CountOutcome> {
        if cubes.is_empty() {
            return Vec::new();
        }
        match &*self.circuit(cnf) {
            Ok(circuit) => circuit
                .count_cubes(cubes)
                .into_iter()
                .map(CountOutcome::Exact)
                .collect(),
            // Compilation is all-or-nothing: one exhausted outcome ends
            // the batch (the early-exit contract of the trait method).
            Err(CompileError::BudgetExhausted { decisions }) => {
                vec![CountOutcome::BudgetExhausted {
                    nodes_used: *decisions,
                }]
            }
            Err(CompileError::TooManyProjectionVars { .. }) => {
                QueryCounter::count_cubes(&self.fallback, cnf, cubes)
            }
        }
    }
}

/// A 128-bit structural fingerprint of a CNF (variables, projection and
/// clause list), used as the memoization key by [`CachedCounter`].
///
/// Two independently salted SipHash-1-3 passes give a 128-bit digest; a
/// collision between distinct formulas in one process is vanishingly
/// unlikely (birthday bound ≈ 2⁻⁶⁴ at a billion cached entries).
pub fn cnf_fingerprint(cnf: &Cnf) -> u128 {
    cnf_cube_fingerprint(cnf, &[])
}

/// Fingerprint of `cnf ∧ cube`, used by [`CachedCounter`] to memoize
/// conditioned queries. With an empty cube this equals [`cnf_fingerprint`],
/// so plain and conditioned counts of the same formula share one entry.
pub fn cnf_cube_fingerprint(cnf: &Cnf, cube: &[Lit]) -> u128 {
    CnfPrefixHashers::new(cnf).cube_fingerprint(cube)
}

/// The two salted hasher states of [`cnf_cube_fingerprint`] with the CNF
/// prefix already absorbed. Batch callers hash the formula **once** and
/// clone the states per cube, so fingerprinting a k-cube batch costs one
/// pass over the CNF plus k passes over the (tiny) cubes — not k full
/// formula re-hashes.
struct CnfPrefixHashers(DefaultHasher, DefaultHasher);

impl CnfPrefixHashers {
    fn new(cnf: &Cnf) -> Self {
        let pass = |salt: u64| -> DefaultHasher {
            let mut h = DefaultHasher::new();
            salt.hash(&mut h);
            cnf.num_vars().hash(&mut h);
            for v in cnf.projection() {
                v.0.hash(&mut h);
            }
            0xffff_ffffu64.hash(&mut h); // separator between projection and clauses
            for clause in cnf.clauses() {
                for lit in clause.iter() {
                    lit.code().hash(&mut h);
                }
                u64::MAX.hash(&mut h); // clause separator
            }
            h
        };
        CnfPrefixHashers(pass(0x9E37_79B9_7F4A_7C15), pass(0xC2B2_AE3D_27D4_EB4F))
    }

    fn cube_fingerprint(&self, cube: &[Lit]) -> u128 {
        let finish = |prefix: &DefaultHasher| -> u64 {
            let mut h = prefix.clone();
            // A cube literal hashes exactly like the equivalent unit clause,
            // so the fingerprint of (cnf, cube) equals that of cnf ∧ cube
            // built by appending units — cache entries are shared across
            // both routes.
            for lit in cube {
                lit.code().hash(&mut h);
                u64::MAX.hash(&mut h);
            }
            h.finish()
        };
        (u128::from(finish(&self.0)) << 64) | u128::from(finish(&self.1))
    }
}

/// Hit/miss statistics of a [`CachedCounter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counts served from the cache.
    pub hits: u64,
    /// Counts delegated to the inner counter.
    pub misses: u64,
}

/// A memoizing wrapper around any [`ModelCounter`], keyed on
/// [`cnf_fingerprint`].
///
/// AccMC issues four counts per evaluated model, and table harnesses repeat
/// structurally identical formulas across rows (the φ / ¬φ ground-truth
/// halves, identical re-trained models, …). Wrapping the backend in a
/// `CachedCounter` makes every repeat free. The cache is internally
/// synchronized, so one instance can serve all threads of a
/// [`Runner`](crate::framework::Runner).
#[derive(Debug, Default)]
pub struct CachedCounter<C> {
    inner: C,
    cache: Mutex<HashMap<u128, CountOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<C: ModelCounter> CachedCounter<C> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: C) -> Self {
        CachedCounter {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct formulas cached.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached outcomes (statistics are kept).
    pub fn clear(&self) {
        self.cache.lock().expect("cache poisoned").clear();
    }

    /// A snapshot of the cached outcomes, e.g. for persisting to disk with
    /// [`persist::save_outcomes`](crate::persist::save_outcomes).
    pub fn snapshot(&self) -> HashMap<u128, CountOutcome> {
        self.cache.lock().expect("cache poisoned").clone()
    }

    /// Seeds the cache with previously computed outcomes (e.g. loaded from
    /// disk by [`persist::load_outcomes`](crate::persist::load_outcomes)).
    /// Existing entries win on key collisions.
    pub fn preload<I: IntoIterator<Item = (u128, CountOutcome)>>(&self, entries: I) {
        let mut cache = self.cache.lock().expect("cache poisoned");
        for (key, outcome) in entries {
            cache.entry(key).or_insert(outcome);
        }
    }

    /// Memoized lookup shared by the plain and conditioned count paths.
    fn count_keyed(&self, key: u128, compute: impl FnOnce() -> CountOutcome) -> CountOutcome {
        if let Some(&outcome) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return outcome;
        }
        // Count outside the lock so concurrent misses on *different*
        // formulas proceed in parallel (a duplicated count on the same
        // formula is merely redundant work, never wrong).
        let outcome = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key, outcome);
        outcome
    }
}

impl<C: ModelCounter> ModelCounter for CachedCounter<C> {
    fn name(&self) -> &str {
        "cached"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        self.count_keyed(cnf_fingerprint(cnf), || self.inner.count(cnf))
    }

    /// Outcomes of transient counts are still memoized (they are cheap to
    /// keep, and identical table rows do repeat them); only the inner
    /// counter is told not to build reusable artifacts.
    fn count_transient(&self, cnf: &Cnf) -> CountOutcome {
        self.count_keyed(cnf_fingerprint(cnf), || self.inner.count_transient(cnf))
    }
}

impl<C: QueryCounter> QueryCounter for CachedCounter<C> {
    /// Memoizes conditioned counts too, delegating cache misses to the
    /// inner counter's *native* conditioned path — so a cached
    /// [`CompiledCounter`] still answers misses from its compiled circuit
    /// instead of re-counting a conjunction.
    fn count_conditioned(&self, cnf: &Cnf, cube: &[Lit]) -> CountOutcome {
        self.count_keyed(cnf_cube_fingerprint(cnf, cube), || {
            self.inner.count_conditioned(cnf, cube)
        })
    }

    /// Splits the batch into memoized and novel cubes: hits come straight
    /// from the cache, and the misses are forwarded **together** to the
    /// inner counter's batch path so a compiled backend still answers them
    /// with one circuit sweep.
    fn count_cubes(&self, cnf: &Cnf, cubes: &[&[Lit]]) -> Vec<CountOutcome> {
        // Hash the formula once; each cube only finishes the cloned state.
        let prefix = CnfPrefixHashers::new(cnf);
        let keys: Vec<u128> = cubes
            .iter()
            .map(|cube| prefix.cube_fingerprint(cube))
            .collect();
        // Each resolved slot remembers whether it came from the cache, so
        // the hit/miss statistics below count exactly the outcomes the
        // caller receives — preserving the scalar path's invariant of one
        // increment per delivered count even when the batch truncates.
        let mut results: Vec<Option<(CountOutcome, bool)>> = vec![None; cubes.len()];
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = self.cache.lock().expect("cache poisoned");
            for (i, key) in keys.iter().enumerate() {
                match cache.get(key) {
                    Some(&outcome) => results[i] = Some((outcome, true)),
                    None => missing.push(i),
                }
            }
        }
        if !missing.is_empty() {
            // Count outside the lock, like the scalar path.
            let novel: Vec<&[Lit]> = missing.iter().map(|&i| cubes[i]).collect();
            let outcomes = self.inner.count_cubes(cnf, &novel);
            let mut cache = self.cache.lock().expect("cache poisoned");
            for (&i, outcome) in missing.iter().zip(outcomes) {
                cache.insert(keys[i], outcome);
                results[i] = Some((outcome, false));
            }
        }
        // The inner counter may have stopped at an exhausted count,
        // leaving later misses unresolved. Honor the trait contract by
        // truncating at the first exhausted outcome **inclusive** — a
        // memoized hit sitting past it must be dropped too, or the batch
        // would end in a non-exhausted outcome while still being short.
        let mut complete = Vec::with_capacity(results.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for result in results {
            let Some((outcome, from_cache)) = result else {
                break;
            };
            if from_cache {
                hits += 1;
            } else {
                misses += 1;
            }
            let exhausted = outcome.is_budget_exhausted();
            complete.push(outcome);
            if exhausted {
                break;
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satkit::cnf::{Lit, Var};

    fn clause_cnf() -> Cnf {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf
    }

    #[test]
    fn outcome_value_accessors() {
        assert_eq!(CountOutcome::Exact(7).value(), Some(7));
        assert!(CountOutcome::Exact(7).is_exact());
        let approx = CountOutcome::Approx {
            estimate: 9,
            epsilon: 0.4,
            delta: 0.2,
        };
        assert_eq!(approx.value(), Some(9));
        assert!(!approx.is_exact());
        let exhausted = CountOutcome::BudgetExhausted { nodes_used: 5 };
        assert_eq!(exhausted.value(), None);
        assert!(exhausted.is_budget_exhausted());
    }

    #[test]
    fn exact_counter_reports_outcomes() {
        let cnf = clause_cnf();
        assert_eq!(
            ModelCounter::count(&ExactCounter::new(), &cnf),
            CountOutcome::Exact(6)
        );
        let budgeted = ExactCounter::with_node_budget(0);
        assert!(ModelCounter::count(&budgeted, &chain_cnf()).is_budget_exhausted());
    }

    #[test]
    fn approx_counter_reports_config() {
        let cnf = clause_cnf();
        match ModelCounter::count(&ApproxCounter::default(), &cnf) {
            CountOutcome::Approx {
                estimate,
                epsilon,
                delta,
            } => {
                assert_eq!(estimate, 6);
                assert!(epsilon > 0.0 && delta > 0.0);
            }
            other => panic!("expected approx outcome, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let a = clause_cnf();
        let mut b = clause_cnf();
        b.add_clause(vec![Lit::neg(2)]);
        assert_ne!(cnf_fingerprint(&a), cnf_fingerprint(&b));
        assert_eq!(cnf_fingerprint(&a), cnf_fingerprint(&clause_cnf()));

        // Projection changes the count, so it must change the fingerprint.
        let mut c = clause_cnf();
        c.set_projection(vec![Var(0)]);
        assert_ne!(cnf_fingerprint(&a), cnf_fingerprint(&c));
    }

    #[test]
    fn cached_counter_memoizes() {
        let cached = CachedCounter::new(ExactCounter::new());
        let cnf = clause_cnf();
        assert_eq!(cached.count(&cnf).value(), Some(6));
        assert_eq!(cached.count(&cnf).value(), Some(6));
        assert_eq!(cached.count(&cnf).value(), Some(6));
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(cached.len(), 1);
        cached.clear();
        assert!(cached.is_empty());
    }

    #[test]
    fn cached_counter_is_shareable_across_threads() {
        let cached = CachedCounter::new(ExactCounter::new());
        let cnf = clause_cnf();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cached.count(&cnf).value(), Some(6));
                    }
                });
            }
        });
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert!(stats.hits >= 28, "stats: {stats:?}");
    }

    #[test]
    fn backend_implements_model_counter() {
        let cnf = clause_cnf();
        let exact: &dyn ModelCounter = &CounterBackend::exact();
        assert_eq!(exact.count(&cnf), CountOutcome::Exact(6));
        assert_eq!(exact.name(), "exact");
        let approx: &dyn ModelCounter = &CounterBackend::approx();
        assert_eq!(approx.count(&cnf).value(), Some(6));
        assert_eq!(approx.name(), "approx");
        let compiled: &dyn ModelCounter = &CounterBackend::compiled();
        assert_eq!(compiled.count(&cnf), CountOutcome::Exact(6));
        assert_eq!(compiled.name(), "compiled");
    }

    #[test]
    fn compiled_counter_agrees_with_exact() {
        let cnf = clause_cnf();
        let compiled = CompiledCounter::new();
        assert_eq!(compiled.count(&cnf), CountOutcome::Exact(6));
        // Second count of the same formula is a cache hit.
        assert_eq!(compiled.count(&cnf), CountOutcome::Exact(6));
        let stats = compiled.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(compiled.len(), 1);
    }

    #[test]
    fn compiled_counter_conditioned_queries_share_one_circuit() {
        let cnf = clause_cnf();
        let compiled = CompiledCounter::new();
        // mc((x0 | x1) ∧ x0) = 4, mc((x0 | x1) ∧ ¬x0) = 2 over 3 vars.
        assert_eq!(
            compiled.count_conditioned(&cnf, &[Lit::pos(0)]),
            CountOutcome::Exact(4)
        );
        assert_eq!(
            compiled.count_conditioned(&cnf, &[Lit::neg(0)]),
            CountOutcome::Exact(2)
        );
        assert_eq!(
            compiled.count_conditioned(&cnf, &[Lit::neg(0), Lit::neg(1)]),
            CountOutcome::Exact(0)
        );
        // One compile served every query.
        assert_eq!(compiled.stats().misses, 1);
        assert_eq!(compiled.stats().hits, 2);
    }

    #[test]
    fn compiled_counter_transient_counts_skip_the_circuit_cache() {
        let compiled = CompiledCounter::new();
        let cnf = clause_cnf();
        assert_eq!(compiled.count_transient(&cnf), CountOutcome::Exact(6));
        assert!(
            compiled.is_empty(),
            "one-shot counts must not populate the circuit cache"
        );
        assert_eq!(compiled.count(&cnf), CountOutcome::Exact(6));
        assert_eq!(compiled.len(), 1);
    }

    #[test]
    fn compiled_counter_budget_reports_exhaustion() {
        let compiled = CompiledCounter::with_decision_budget(2);
        assert!(compiled.count(&chain_cnf()).is_budget_exhausted());
    }

    /// A chain CNF that exhausts any zero/low decision budget.
    fn chain_cnf() -> Cnf {
        let mut chain = Cnf::new(20);
        for i in 0..19u32 {
            chain.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        chain
    }

    #[test]
    fn count_cubes_stops_at_the_first_exhausted_count() {
        let budgeted = ExactCounter::with_node_budget(0);
        let chain = chain_cnf();
        let cube = [Lit::pos(0)];
        let cubes: Vec<&[Lit]> = vec![&cube, &cube, &cube];
        let outcomes = QueryCounter::count_cubes(&budgeted, &chain, &cubes);
        assert_eq!(
            outcomes.len(),
            1,
            "the batch must end at the first exhausted count"
        );
        assert!(outcomes[0].is_budget_exhausted());
    }

    #[test]
    fn cached_batch_truncates_when_the_inner_counter_gives_up() {
        let cached = CachedCounter::new(CompiledCounter::with_decision_budget(2));
        let chain = chain_cnf();
        let a = [Lit::pos(0)];
        let b = [Lit::pos(1)];
        let c = [Lit::pos(2)];
        let cubes: Vec<&[Lit]> = vec![&a, &b, &c];
        let outcomes = cached.count_cubes(&chain, &cubes);
        assert_eq!(outcomes.len(), 1, "nothing past the exhausted count");
        assert!(outcomes[0].is_budget_exhausted());
    }

    #[test]
    fn cached_batch_drops_memoized_hits_past_the_exhausted_count() {
        let cached = CachedCounter::new(CompiledCounter::with_decision_budget(2));
        let chain = chain_cnf();
        let a = [Lit::pos(0)];
        let b = [Lit::pos(1)];
        let c = [Lit::pos(2)];
        // Plant a memoized success for the middle cube, as a persist
        // preload would; the inner counter exhausts on the surrounding
        // misses, so the batch must still end at the exhausted count —
        // not at the stale hit behind it.
        cached.preload([(cnf_cube_fingerprint(&chain, &b), CountOutcome::Exact(7))]);
        let cubes: Vec<&[Lit]> = vec![&a, &b, &c];
        let outcomes = cached.count_cubes(&chain, &cubes);
        assert!(
            outcomes
                .last()
                .expect("non-empty batch")
                .is_budget_exhausted(),
            "a short batch must end in the exhausted count, got {outcomes:?}"
        );
        assert!(outcomes.len() <= 2);
        let stats = cached.stats();
        assert_eq!(
            stats.hits + stats.misses,
            outcomes.len() as u64,
            "one hit-or-miss increment per delivered outcome, got {stats:?}"
        );
    }

    #[test]
    fn compiled_counter_shares_components_across_distinct_formulas() {
        // φ and φ∧ψ have distinct fingerprints (no whole-circuit reuse),
        // but φ's connected components reappear untouched in φ∧ψ over the
        // disjoint ψ variables — exactly the cross-query shape the shared
        // component cache exists for.
        // One connected φ component, large enough to clear the sharing
        // gate (small components are cheaper to recompile than to intern).
        let mut phi = Cnf::new(8);
        phi.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        phi.add_clause(vec![Lit::neg(1), Lit::pos(2), Lit::pos(3)]);
        phi.add_clause(vec![Lit::neg(2), Lit::pos(3)]);
        phi.add_clause(vec![Lit::pos(0), Lit::neg(3), Lit::pos(1)]);
        let mut phi_and_psi = phi.clone();
        phi_and_psi.add_clause(vec![Lit::pos(4), Lit::neg(5)]);
        phi_and_psi.add_clause(vec![Lit::pos(6), Lit::pos(7)]);

        let compiled = CompiledCounter::new();
        let phi_count = compiled.count(&phi);
        let both_count = compiled.count(&phi_and_psi);
        assert_eq!(compiled.stats().misses, 2, "two distinct circuits");
        let stats = compiled.compile_stats();
        assert!(
            stats.shared_hits > 0,
            "φ∧ψ must reuse φ's components, stats {stats:?}"
        );
        // Reuse never changes the counts: a cold counter agrees bit for bit.
        let cold = CompiledCounter::new();
        assert_eq!(cold.count(&phi), phi_count);
        assert_eq!(cold.count(&phi_and_psi), both_count);
        // Generation hygiene: the owner can close a batch.
        compiled.advance_shared_generation();
        assert_eq!(compiled.shared_cache().generation(), 1);
    }

    #[test]
    fn compiled_counter_clones_share_the_cache() {
        let compiled = CompiledCounter::new();
        let clone = compiled.clone();
        assert_eq!(clone.count(&clause_cnf()), CountOutcome::Exact(6));
        assert_eq!(compiled.len(), 1, "clone populated the shared cache");
        assert_eq!(compiled.count(&clause_cnf()), CountOutcome::Exact(6));
        assert_eq!(compiled.stats().hits, 1);
    }

    #[test]
    fn query_counter_default_matches_unit_assertion() {
        let cnf = clause_cnf();
        let exact = ExactCounter::new();
        let mut asserted = cnf.clone();
        asserted.add_unit(Lit::pos(0));
        assert_eq!(
            QueryCounter::count_conditioned(&exact, &cnf, &[Lit::pos(0)]),
            ModelCounter::count(&exact, &asserted)
        );
    }

    #[test]
    fn cube_fingerprint_matches_appended_units() {
        let cnf = clause_cnf();
        let cube = [Lit::pos(0), Lit::neg(2)];
        let mut asserted = cnf.clone();
        for &l in &cube {
            asserted.add_unit(l);
        }
        assert_eq!(
            cnf_cube_fingerprint(&cnf, &cube),
            cnf_fingerprint(&asserted),
            "conditioned and conjunction routes must share cache entries"
        );
        assert_eq!(cnf_cube_fingerprint(&cnf, &[]), cnf_fingerprint(&cnf));
    }

    #[test]
    fn cached_counter_memoizes_conditioned_counts() {
        let cached = CachedCounter::new(CompiledCounter::new());
        let cnf = clause_cnf();
        let cube = [Lit::pos(0)];
        assert_eq!(cached.count_conditioned(&cnf, &cube).value(), Some(4));
        assert_eq!(cached.count_conditioned(&cnf, &cube).value(), Some(4));
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn snapshot_and_preload_round_trip() {
        let cached = CachedCounter::new(ExactCounter::new());
        let cnf = clause_cnf();
        assert_eq!(cached.count(&cnf).value(), Some(6));
        let snapshot = cached.snapshot();
        assert_eq!(snapshot.len(), 1);

        let fresh = CachedCounter::new(ExactCounter::new());
        fresh.preload(snapshot);
        assert_eq!(fresh.count(&cnf).value(), Some(6));
        let stats = fresh.stats();
        assert_eq!(stats.hits, 1, "preloaded entry must serve the count");
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn preloaded_circuits_are_excluded_from_compile_stats() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(3)]);

        // First "process" compiles and reports its own decisions.
        let warm = CompiledCounter::new();
        let expected = warm.count(&cnf);
        assert!(warm.compile_stats().decisions > 0);
        assert_eq!(warm.preloaded_len(), 0);

        // Second "process" preloads the snapshot into a zero-budget
        // counter: the count is served, yet compile_stats stays empty —
        // the compilation work verifiably happened elsewhere.
        let cold = CompiledCounter::with_decision_budget(0);
        cold.preload_circuits(warm.snapshot_circuits());
        assert_eq!(cold.preloaded_len(), 1);
        assert_eq!(cold.count(&cnf), expected);
        assert_eq!(cold.compile_stats(), CompileStats::default());
        assert_eq!(cold.stats().misses, 0);

        // A process-compiled entry wins over a later preload of the same
        // key, and keeps counting as compiled-here.
        let compiled_first = CompiledCounter::new();
        compiled_first.count(&cnf);
        compiled_first.preload_circuits(warm.snapshot_circuits());
        assert_eq!(compiled_first.preloaded_len(), 0);
        assert!(compiled_first.compile_stats().decisions > 0);
    }
}
