//! The pluggable model-counting abstraction: the [`ModelCounter`] trait, the
//! structured [`CountOutcome`] it returns, and the memoizing
//! [`CachedCounter`] wrapper.
//!
//! Historically the evaluation core took a concrete `CounterBackend` whose
//! `count` returned `Option<u128>` — conflating "the budget ran out" with
//! the absence of a value and hiding whether a number was exact or an
//! (ε, δ)-estimate. [`CountOutcome`] makes the three cases explicit, and any
//! counter implementing [`ModelCounter`] can drive the AccMC/DiffMC metrics:
//! the built-in exact and approximate counters, the [`CounterBackend`] enum
//! (kept as a thin selector for CLI-style call sites), or a
//! [`CachedCounter`] wrapping any of them so repeated formulas — e.g. the
//! shared φ / ¬φ prefixes of the four AccMC counts across table rows — are
//! counted once.

use crate::backend::CounterBackend;
use modelcount::approx::ApproxCounter;
use modelcount::exact::ExactCounter;
use satkit::cnf::Cnf;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The structured result of one projected model count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountOutcome {
    /// An exact count.
    Exact(u128),
    /// An (ε, δ)-approximate count: within a factor `1 + epsilon` of the
    /// true count with probability at least `1 - delta`.
    Approx {
        /// The estimated count.
        estimate: u128,
        /// Tolerance ε of the estimate.
        epsilon: f64,
        /// Confidence parameter δ of the estimate.
        delta: f64,
    },
    /// The counter gave up before producing a value (the paper's time-outs).
    BudgetExhausted {
        /// Search nodes explored before the budget ran out.
        nodes_used: u64,
    },
}

impl CountOutcome {
    /// The counted (or estimated) value, `None` when the budget ran out.
    pub fn value(&self) -> Option<u128> {
        match *self {
            CountOutcome::Exact(v) => Some(v),
            CountOutcome::Approx { estimate, .. } => Some(estimate),
            CountOutcome::BudgetExhausted { .. } => None,
        }
    }

    /// Whether this outcome carries an exact count.
    pub fn is_exact(&self) -> bool {
        matches!(self, CountOutcome::Exact(_))
    }

    /// Whether the counter gave up.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, CountOutcome::BudgetExhausted { .. })
    }
}

/// A projected model-counting backend usable by the evaluation core.
///
/// Implementations must be shareable across the threads of a
/// [`Runner`](crate::framework::Runner), hence the `Send + Sync` supertrait.
pub trait ModelCounter: Send + Sync {
    /// Short name for reports (e.g. `"exact"`, `"approx"`, `"cached"`).
    fn name(&self) -> &str;

    /// Counts the models of `cnf` projected onto its effective projection
    /// set.
    fn count(&self, cnf: &Cnf) -> CountOutcome;
}

impl ModelCounter for ExactCounter {
    fn name(&self) -> &str {
        "exact"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        match self.try_count(cnf) {
            Ok((value, _)) => CountOutcome::Exact(value),
            Err(stats) => CountOutcome::BudgetExhausted {
                nodes_used: stats.nodes,
            },
        }
    }
}

impl ModelCounter for ApproxCounter {
    fn name(&self) -> &str {
        "approx"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        CountOutcome::Approx {
            estimate: self.count(cnf),
            epsilon: self.config().epsilon,
            delta: self.config().delta,
        }
    }
}

impl ModelCounter for CounterBackend {
    fn name(&self) -> &str {
        match self {
            CounterBackend::Exact(_) => "exact",
            CounterBackend::Approx(_) => "approx",
        }
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        match self {
            CounterBackend::Exact(c) => ModelCounter::count(c, cnf),
            CounterBackend::Approx(c) => ModelCounter::count(c, cnf),
        }
    }
}

/// A 128-bit structural fingerprint of a CNF (variables, projection and
/// clause list), used as the memoization key by [`CachedCounter`].
///
/// Two independently salted SipHash-1-3 passes give a 128-bit digest; a
/// collision between distinct formulas in one process is vanishingly
/// unlikely (birthday bound ≈ 2⁻⁶⁴ at a billion cached entries).
pub fn cnf_fingerprint(cnf: &Cnf) -> u128 {
    let pass = |salt: u64| -> u64 {
        let mut h = DefaultHasher::new();
        salt.hash(&mut h);
        cnf.num_vars().hash(&mut h);
        for v in cnf.projection() {
            v.0.hash(&mut h);
        }
        0xffff_ffffu64.hash(&mut h); // separator between projection and clauses
        for clause in cnf.clauses() {
            for lit in clause.iter() {
                lit.code().hash(&mut h);
            }
            u64::MAX.hash(&mut h); // clause separator
        }
        h.finish()
    };
    (u128::from(pass(0x9E37_79B9_7F4A_7C15)) << 64) | u128::from(pass(0xC2B2_AE3D_27D4_EB4F))
}

/// Hit/miss statistics of a [`CachedCounter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counts served from the cache.
    pub hits: u64,
    /// Counts delegated to the inner counter.
    pub misses: u64,
}

/// A memoizing wrapper around any [`ModelCounter`], keyed on
/// [`cnf_fingerprint`].
///
/// AccMC issues four counts per evaluated model, and table harnesses repeat
/// structurally identical formulas across rows (the φ / ¬φ ground-truth
/// halves, identical re-trained models, …). Wrapping the backend in a
/// `CachedCounter` makes every repeat free. The cache is internally
/// synchronized, so one instance can serve all threads of a
/// [`Runner`](crate::framework::Runner).
#[derive(Debug, Default)]
pub struct CachedCounter<C> {
    inner: C,
    cache: Mutex<HashMap<u128, CountOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<C: ModelCounter> CachedCounter<C> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: C) -> Self {
        CachedCounter {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct formulas cached.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached outcomes (statistics are kept).
    pub fn clear(&self) {
        self.cache.lock().expect("cache poisoned").clear();
    }
}

impl<C: ModelCounter> ModelCounter for CachedCounter<C> {
    fn name(&self) -> &str {
        "cached"
    }

    fn count(&self, cnf: &Cnf) -> CountOutcome {
        let key = cnf_fingerprint(cnf);
        if let Some(&outcome) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return outcome;
        }
        // Count outside the lock so concurrent misses on *different*
        // formulas proceed in parallel (a duplicated count on the same
        // formula is merely redundant work, never wrong).
        let outcome = self.inner.count(cnf);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key, outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satkit::cnf::{Lit, Var};

    fn clause_cnf() -> Cnf {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf
    }

    #[test]
    fn outcome_value_accessors() {
        assert_eq!(CountOutcome::Exact(7).value(), Some(7));
        assert!(CountOutcome::Exact(7).is_exact());
        let approx = CountOutcome::Approx {
            estimate: 9,
            epsilon: 0.4,
            delta: 0.2,
        };
        assert_eq!(approx.value(), Some(9));
        assert!(!approx.is_exact());
        let exhausted = CountOutcome::BudgetExhausted { nodes_used: 5 };
        assert_eq!(exhausted.value(), None);
        assert!(exhausted.is_budget_exhausted());
    }

    #[test]
    fn exact_counter_reports_outcomes() {
        let cnf = clause_cnf();
        assert_eq!(
            ModelCounter::count(&ExactCounter::new(), &cnf),
            CountOutcome::Exact(6)
        );
        let budgeted = ExactCounter::with_node_budget(0);
        let mut chain = Cnf::new(20);
        for i in 0..19u32 {
            chain.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        assert!(ModelCounter::count(&budgeted, &chain).is_budget_exhausted());
    }

    #[test]
    fn approx_counter_reports_config() {
        let cnf = clause_cnf();
        match ModelCounter::count(&ApproxCounter::default(), &cnf) {
            CountOutcome::Approx {
                estimate,
                epsilon,
                delta,
            } => {
                assert_eq!(estimate, 6);
                assert!(epsilon > 0.0 && delta > 0.0);
            }
            other => panic!("expected approx outcome, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let a = clause_cnf();
        let mut b = clause_cnf();
        b.add_clause(vec![Lit::neg(2)]);
        assert_ne!(cnf_fingerprint(&a), cnf_fingerprint(&b));
        assert_eq!(cnf_fingerprint(&a), cnf_fingerprint(&clause_cnf()));

        // Projection changes the count, so it must change the fingerprint.
        let mut c = clause_cnf();
        c.set_projection(vec![Var(0)]);
        assert_ne!(cnf_fingerprint(&a), cnf_fingerprint(&c));
    }

    #[test]
    fn cached_counter_memoizes() {
        let cached = CachedCounter::new(ExactCounter::new());
        let cnf = clause_cnf();
        assert_eq!(cached.count(&cnf).value(), Some(6));
        assert_eq!(cached.count(&cnf).value(), Some(6));
        assert_eq!(cached.count(&cnf).value(), Some(6));
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(cached.len(), 1);
        cached.clear();
        assert!(cached.is_empty());
    }

    #[test]
    fn cached_counter_is_shareable_across_threads() {
        let cached = CachedCounter::new(ExactCounter::new());
        let cnf = clause_cnf();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cached.count(&cnf).value(), Some(6));
                    }
                });
            }
        });
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert!(stats.hits >= 28, "stats: {stats:?}");
    }

    #[test]
    fn backend_implements_model_counter() {
        let cnf = clause_cnf();
        let exact: &dyn ModelCounter = &CounterBackend::exact();
        assert_eq!(exact.count(&cnf), CountOutcome::Exact(6));
        assert_eq!(exact.name(), "exact");
        let approx: &dyn ModelCounter = &CounterBackend::approx();
        assert_eq!(approx.count(&cnf).value(), Some(6));
        assert_eq!(approx.name(), "approx");
    }
}
