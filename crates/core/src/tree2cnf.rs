//! Tree2CNF: translating decision-tree logic to CNF without auxiliary
//! variables.
//!
//! A decision tree over binary features is a set of root-to-leaf paths; any
//! input follows exactly one path, and each path is a conjunction of literals
//! (feature = 0 or feature = 1). The disjunction of the paths predicting
//! label ℓ therefore characterizes the inputs the tree classifies as ℓ — a
//! DNF. Following the observation the paper borrows from Håstad, the *other*
//! label's region is the negation of that DNF, which is already a CNF: one
//! clause per opposite-label path, each clause the disjunction of the negated
//! path literals.
//!
//! The translation is linear in the tree size, introduces no auxiliary
//! variables, and therefore preserves model counts over the feature
//! variables exactly — the key enabler of the AccMC and DiffMC metrics.

use mlkit::tree::DecisionTree;
use satkit::cnf::{Clause, Cnf, Lit, Var};

/// Which decision region of the tree to characterize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeLabel {
    /// The inputs the tree classifies as positive.
    True,
    /// The inputs the tree classifies as negative.
    False,
}

impl TreeLabel {
    fn as_bool(self) -> bool {
        matches!(self, TreeLabel::True)
    }
}

/// The clauses characterizing the inputs that `tree` classifies as `label`:
/// one clause per path of the *opposite* label, containing the negations of
/// that path's literals.
pub fn tree_label_clauses(tree: &DecisionTree, label: TreeLabel) -> Vec<Clause> {
    tree.paths()
        .into_iter()
        .filter(|p| p.label != label.as_bool())
        .map(|p| {
            p.conditions
                .iter()
                .map(|&(feature, value)| Lit::from_var(Var(feature as u32), !value))
                .collect()
        })
        .collect()
}

/// A standalone CNF over the tree's feature variables whose models are
/// exactly the inputs classified as `label`. The projection set is the full
/// feature block.
pub fn tree_label_cnf(tree: &DecisionTree, label: TreeLabel) -> Cnf {
    let mut cnf = Cnf::new(tree.num_features());
    cnf.set_projection((0..tree.num_features() as u32).map(Var).collect());
    for clause in tree_label_clauses(tree, label) {
        cnf.add_clause(clause);
    }
    cnf
}

/// Conjoins the tree's `label` region onto an existing CNF whose first
/// `tree.num_features()` variables are the feature variables (as is the case
/// for the ground-truth CNFs produced by `relspec`).
///
/// # Panics
///
/// Panics if the target CNF has fewer variables than the tree has features.
pub fn append_tree_label(cnf: &mut Cnf, tree: &DecisionTree, label: TreeLabel) {
    assert!(
        cnf.num_vars() >= tree.num_features(),
        "CNF has {} variables but the tree uses {} features",
        cnf.num_vars(),
        tree.num_features()
    );
    for clause in tree_label_clauses(tree, label) {
        cnf.add_clause(clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::data::Dataset;
    use mlkit::tree::TreeConfig;
    use mlkit::Classifier;

    fn dataset_from_fn(num_features: usize, f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(num_features);
        for bits in 0u32..(1 << num_features) {
            let row: Vec<u8> = (0..num_features).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    /// The CNF of each label region must agree with the tree's own
    /// predictions on every input.
    fn check_cnf_matches_tree(tree: &DecisionTree) {
        let n = tree.num_features();
        let cnf_true = tree_label_cnf(tree, TreeLabel::True);
        let cnf_false = tree_label_cnf(tree, TreeLabel::False);
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let assignment: Vec<bool> = features.iter().map(|&b| b != 0).collect();
            let predicted = tree.predict(&features);
            assert_eq!(cnf_true.eval(&assignment), predicted, "true-region CNF");
            assert_eq!(cnf_false.eval(&assignment), !predicted, "false-region CNF");
        }
    }

    #[test]
    fn regions_partition_the_input_space() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && (x[1] == 1 || x[3] == 0));
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        check_cnf_matches_tree(&tree);
    }

    #[test]
    fn works_for_constant_trees() {
        // A pure dataset yields a single-leaf tree; one region is the whole
        // space (no clauses), the other is empty (one empty clause).
        let mut d = Dataset::new(2);
        d.push(vec![0, 1], true);
        d.push(vec![1, 0], true);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let cnf_true = tree_label_cnf(&tree, TreeLabel::True);
        let cnf_false = tree_label_cnf(&tree, TreeLabel::False);
        assert_eq!(cnf_true.num_clauses(), 0);
        assert_eq!(cnf_false.num_clauses(), 1);
        assert!(cnf_false.clauses()[0].is_empty());
    }

    #[test]
    fn xor_tree_regions() {
        let d = dataset_from_fn(3, |x| (x[0] ^ x[1]) == 1);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        check_cnf_matches_tree(&tree);
    }

    #[test]
    fn clause_count_is_linear_in_opposite_paths() {
        let d = dataset_from_fn(4, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 2);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let paths = tree.paths();
        let true_paths = paths.iter().filter(|p| p.label).count();
        let false_paths = paths.len() - true_paths;
        assert_eq!(
            tree_label_cnf(&tree, TreeLabel::True).num_clauses(),
            false_paths
        );
        assert_eq!(
            tree_label_cnf(&tree, TreeLabel::False).num_clauses(),
            true_paths
        );
    }

    #[test]
    fn no_auxiliary_variables_are_introduced() {
        let d = dataset_from_fn(5, |x| x[2] == 1 || (x[0] == 1 && x[4] == 1));
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let cnf = tree_label_cnf(&tree, TreeLabel::True);
        assert_eq!(cnf.num_vars(), 5);
        assert_eq!(cnf.projection().len(), 5);
    }

    #[test]
    fn model_counts_of_regions_sum_to_space_size() {
        use modelcount::exact::ExactCounter;
        let d = dataset_from_fn(4, |x| (x[0] & x[1]) == 1 || x[3] == 0);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let counter = ExactCounter::new();
        let t = counter
            .count(&tree_label_cnf(&tree, TreeLabel::True))
            .unwrap();
        let f = counter
            .count(&tree_label_cnf(&tree, TreeLabel::False))
            .unwrap();
        assert_eq!(t + f, 16);
    }

    #[test]
    #[should_panic(expected = "variables but the tree uses")]
    fn append_rejects_narrow_cnf() {
        let d = dataset_from_fn(3, |x| x[0] == 1);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let mut cnf = Cnf::new(2);
        append_tree_label(&mut cnf, &tree, TreeLabel::True);
    }
}
