//! Typed errors for the evaluation core.
//!
//! The original API `panic!`ed on malformed inputs (e.g. evaluating a model
//! against a ground truth at a different scope). The redesigned entry
//! points — [`AccMc::evaluate`](crate::accmc::AccMc::evaluate),
//! [`DiffMc::compare`](crate::diffmc::DiffMc::compare) and the batch
//! [`Runner`](crate::framework::Runner) — surface these conditions as
//! [`EvalError`] values instead, so harnesses driving many rows can report
//! a bad row and keep going.

use std::error::Error;
use std::fmt;

/// An error raised by the evaluation core before any counting happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The model's feature count does not match the variable block it is
    /// being evaluated against.
    FeatureMismatch {
        /// Features the model was trained on.
        model_features: usize,
        /// Primary variables of the ground truth (or features of the other
        /// model, for DiffMC).
        expected_features: usize,
        /// What the expectation came from (e.g. `"ground truth"`).
        context: &'static str,
    },
    /// A batch run was asked to evaluate zero model families.
    NoModelFamilies,
    /// The weighted-vote branching program of an AdaBoost encoding exceeded
    /// its node bound. With pairwise-distinct vote weights the diagram can
    /// reach `2^rounds` nodes; the bound turns that silent blow-up into a
    /// typed, reportable condition.
    VoteCircuitTooLarge {
        /// Nodes materialized before the bound was hit.
        nodes: usize,
        /// The configured node bound.
        bound: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FeatureMismatch {
                model_features,
                expected_features,
                context,
            } => write!(
                f,
                "feature-count mismatch: the model under evaluation has {model_features} \
                 features but the {context} expects {expected_features}"
            ),
            EvalError::NoModelFamilies => {
                write!(f, "batch run configured with zero model families")
            }
            EvalError::VoteCircuitTooLarge { nodes, bound } => write!(
                f,
                "weighted-vote branching program exceeded its node bound \
                 ({nodes} nodes materialized, bound {bound}); reduce the \
                 boosting rounds or quantize the vote weights"
            ),
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::FeatureMismatch {
            model_features: 9,
            expected_features: 16,
            context: "ground truth",
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains("16") && msg.contains("ground truth"));
        assert!(EvalError::NoModelFamilies.to_string().contains("zero"));
    }
}
