//! Typed errors for the evaluation core.
//!
//! The original API `panic!`ed on malformed inputs (e.g. evaluating a model
//! against a ground truth at a different scope). The redesigned entry
//! points — [`AccMc::evaluate`](crate::accmc::AccMc::evaluate),
//! [`DiffMc::compare`](crate::diffmc::DiffMc::compare) and the batch
//! [`Runner`](crate::framework::Runner) — surface these conditions as
//! [`EvalError`] values instead, so harnesses driving many rows can report
//! a bad row and keep going.

use std::error::Error;
use std::fmt;

/// An error raised by the evaluation core before any counting happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The model's feature count does not match the variable block it is
    /// being evaluated against.
    FeatureMismatch {
        /// Features the model was trained on.
        model_features: usize,
        /// Primary variables of the ground truth (or features of the other
        /// model, for DiffMC).
        expected_features: usize,
        /// What the expectation came from (e.g. `"ground truth"`).
        context: &'static str,
    },
    /// A batch run was asked to evaluate zero model families.
    NoModelFamilies,
    /// An ensemble vote circuit — the AdaBoost weighted-vote branching
    /// program of the CNF encoding, or the feature-space vote BDD behind
    /// decision-region extraction — exceeded its node bound. With
    /// pairwise-distinct vote weights a weighted-vote diagram can reach
    /// `2^rounds` nodes; the bound turns that silent blow-up into a typed,
    /// reportable condition.
    VoteCircuitTooLarge {
        /// Nodes — or, for a cube-cover blow-up, extracted region cubes —
        /// materialized before the bound was hit.
        nodes: usize,
        /// The configured node bound.
        bound: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FeatureMismatch {
                model_features,
                expected_features,
                context,
            } => write!(
                f,
                "feature-count mismatch: the model under evaluation has {model_features} \
                 features but the {context} expects {expected_features}"
            ),
            EvalError::NoModelFamilies => {
                write!(f, "batch run configured with zero model families")
            }
            EvalError::VoteCircuitTooLarge { nodes, bound } => write!(
                f,
                "ensemble vote circuit exceeded its budget ({nodes} diagram \
                 nodes or region cubes materialized, bound {bound}); raise \
                 the vote-node budget or shrink the ensemble"
            ),
        }
    }
}

impl Error for EvalError {}

/// Size blow-ups inside a [`satkit::bdd`] vote compilation (too many
/// diagram nodes, or a cube cover past the budget) all surface as
/// [`EvalError::VoteCircuitTooLarge`] — the caller's remedy is the same:
/// raise the vote-node budget, reduce the ensemble, or fall back to the
/// classic engine.
impl From<satkit::bdd::BddError> for EvalError {
    fn from(e: satkit::bdd::BddError) -> Self {
        match e {
            satkit::bdd::BddError::TooManyNodes { nodes, bound } => {
                EvalError::VoteCircuitTooLarge { nodes, bound }
            }
            satkit::bdd::BddError::TooManyCubes { cubes, bound } => {
                EvalError::VoteCircuitTooLarge {
                    nodes: cubes,
                    bound,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::FeatureMismatch {
            model_features: 9,
            expected_features: 16,
            context: "ground truth",
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains("16") && msg.contains("ground truth"));
        assert!(EvalError::NoModelFamilies.to_string().contains("zero"));
    }
}
