//! Versioned on-disk persistence for compiled circuits and region covers.
//!
//! [`crate::persist`] caches count *outcomes*; this module caches the
//! expensive intermediates behind them — compiled d-DNNF circuits and the
//! decision-region cube covers of trained models — so a later process (a
//! table re-run, or the `mcml-serve` query service) starts warm: zero
//! compilation decisions, straight to batched `count_cubes` sweeps.
//!
//! One [`CircuitArtifact`] file per backend lives under `--artifact-dir`:
//!
//! ```text
//! mcml-circuits v2 backend=compiled encoder=0123456789abcdef
//! <u64 checksum> <u64 payload length> <binary payload>
//! ```
//!
//! The artifact store carries its own schema version
//! ([`ARTIFACT_VERSION`], bumped to 2 when region covers grew the
//! ground truth's symmetry-breaking setting) — the count cache's
//! [`crate::persist::STORE_VERSION`] stays independent, so bumping one
//! store never invalidates the other. The ASCII header follows the
//! [`crate::persist`] store discipline (kind, schema version and
//! producing backend spelled out, mismatches rejected
//! with [`std::io::ErrorKind::InvalidData`]) and additionally pins the
//! **encoder fingerprint**: a hash over the cache-key fingerprints of
//! canonical CNFs and the byte image of a canonically compiled circuit.
//! Circuit-cache keys come from [`cnf_fingerprint`], which is built on the
//! standard library's unstable-by-contract `DefaultHasher` — if a toolchain
//! bump (or a compiler/serializer change) shifts either, the fingerprint
//! shifts, and stale artifacts are rejected instead of silently missing
//! (or worse, mis-keying) every lookup.
//!
//! The binary payload is length-prefixed throughout and guarded by a
//! checksum, so corruption and truncation surface as `InvalidData` before
//! any circuit is decoded; each circuit blob is then revalidated
//! structurally by [`Ddnnf::from_bytes`].

use crate::counter::cnf_fingerprint;
use crate::encode::DecisionRegion;
use crate::persist::invalid;
use crate::tree2cnf::TreeLabel;
use relspec::symmetry::SymmetryBreaking;
use satkit::cnf::{Cnf, Lit};
use satkit::ddnnf::{Compiler, Ddnnf};
use std::io;
use std::path::Path;
use std::sync::OnceLock;

/// The decision-region cover of one trained model, keyed by the experiment
/// coordinates the serving layer routes on, plus the circuit-cache
/// fingerprints of the ground truth's φ and ¬φ CNFs — everything an
/// accuracy or diff query needs once the fingerprinted circuits are warm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionCover {
    /// Property name as spelled by `relspec::properties::Property::name`.
    pub property: String,
    /// Relational scope the cover was extracted at.
    pub scope: usize,
    /// Model family name as spelled by `ModelFamily::name` (`DT`, `RFT`, …).
    pub family: String,
    /// The symmetry-breaking setting baked into the ground truth's φ / ¬φ
    /// circuits. When it is enabled, those circuits partition the
    /// *symmetry-constrained* space, not the full feature space — the
    /// serving layer must refuse whole-space plans (`diff`) that would
    /// silently disagree with `DiffMc` over the full space.
    pub symmetry: SymmetryBreaking,
    /// Circuit-cache fingerprint of the property's φ CNF.
    pub phi: u128,
    /// Circuit-cache fingerprint of the property's ¬φ CNF.
    pub not_phi: u128,
    /// The model's decision regions partitioning the input space.
    pub regions: Vec<DecisionRegion>,
}

/// Everything a warm start needs: the compiled circuits of one backend's
/// circuit cache (keyed by CNF fingerprint) and the region covers of the
/// models evaluated against them.
#[derive(Debug, Clone)]
pub struct CircuitArtifact {
    /// Name of the backend whose cache these circuits came from.
    pub backend: String,
    /// Fingerprint-keyed compiled circuits, sorted by key on disk.
    pub circuits: Vec<(u128, Ddnnf)>,
    /// Region covers of the trained models, in evaluation order.
    pub covers: Vec<RegionCover>,
}

/// Schema version of the circuit artifact store, independent of the count
/// cache's [`crate::persist::STORE_VERSION`]. v2 added the ground truth's
/// symmetry-breaking setting to every region cover; v1 files are rejected
/// by the header check instead of being misread.
pub const ARTIFACT_VERSION: u32 = 2;

/// The artifact file name for a backend under `--artifact-dir` (e.g.
/// `circuits.compiled.v2.bin`) — kind, backend and schema version all
/// spelled out so differently-configured runs never collide on disk.
pub fn artifact_file_name(backend: &str) -> String {
    format!("circuits.{backend}.v{ARTIFACT_VERSION}.bin")
}

/// Fingerprint of the fingerprint-and-compile pipeline itself, pinned into
/// every artifact header. Combines the [`cnf_fingerprint`] of canonical
/// CNFs (catching `DefaultHasher` drift across toolchains — the circuit
/// cache keys would silently change) with a hash of a canonically compiled
/// circuit's byte image (catching compiler or serializer drift).
/// Compilation is deterministic, so the value is stable within a build.
pub fn encoder_fingerprint() -> u64 {
    static FINGERPRINT: OnceLock<u64> = OnceLock::new();
    *FINGERPRINT.get_or_init(|| {
        let mut cnf = Cnf::new(6);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(1)]);
        cnf.add_clause(vec![Lit::pos(1), Lit::pos(2), Lit::neg(3)]);
        cnf.add_clause(vec![Lit::neg(4), Lit::pos(5)]);
        cnf.add_clause(vec![Lit::neg(0), Lit::pos(3), Lit::pos(4)]);
        let key = cnf_fingerprint(&cnf);
        let circuit = Compiler::new()
            .compile(&cnf)
            .expect("the canonical fingerprint CNF compiles without a budget");
        let mut h = splitmix64((key >> 64) as u64 ^ key as u64);
        h = splitmix64(h ^ payload_checksum(&circuit.to_bytes()));
        h
    })
}

/// Writes `artifact` to `path`, creating parent directories as needed, and
/// returns the number of circuits written. The current process's
/// [`encoder_fingerprint`] is stamped into the header; circuits are sorted
/// by fingerprint so identical caches produce identical files.
pub fn save_artifact(path: &Path, artifact: &CircuitArtifact) -> io::Result<usize> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut circuits: Vec<&(u128, Ddnnf)> = artifact.circuits.iter().collect();
    circuits.sort_by_key(|(key, _)| *key);

    let mut payload = Vec::new();
    push_u32(&mut payload, circuits.len())?;
    for (key, circuit) in &circuits {
        payload.extend_from_slice(&key.to_le_bytes());
        let blob = circuit.to_bytes();
        payload.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        payload.extend_from_slice(&blob);
    }
    push_u32(&mut payload, artifact.covers.len())?;
    for cover in &artifact.covers {
        push_str(&mut payload, &cover.property)?;
        push_u32(&mut payload, cover.scope)?;
        push_str(&mut payload, &cover.family)?;
        payload.push(symmetry_tag(cover.symmetry));
        payload.extend_from_slice(&cover.phi.to_le_bytes());
        payload.extend_from_slice(&cover.not_phi.to_le_bytes());
        push_u32(&mut payload, cover.regions.len())?;
        for region in &cover.regions {
            payload.push(match region.label {
                TreeLabel::False => 0,
                TreeLabel::True => 1,
            });
            let len = u16::try_from(region.cube.len())
                .map_err(|_| invalid(format!("cube of {} literals", region.cube.len())))?;
            payload.extend_from_slice(&len.to_le_bytes());
            for lit in &region.cube {
                push_u32(&mut payload, lit.code())?;
            }
        }
    }

    let mut out = Vec::with_capacity(payload.len() + 96);
    out.extend_from_slice(header_line(&artifact.backend).as_bytes());
    out.extend_from_slice(&payload_checksum(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    std::fs::write(path, out)?;
    Ok(circuits.len())
}

/// Loads an artifact previously written by [`save_artifact`], verifying the
/// header (kind, schema version, backend **and** encoder fingerprint) and
/// the payload checksum before decoding; every circuit blob is then
/// structurally revalidated by [`Ddnnf::from_bytes`]. Any mismatch,
/// corruption or truncation is [`std::io::ErrorKind::InvalidData`].
pub fn load_artifact(path: &Path, expected_backend: &str) -> io::Result<CircuitArtifact> {
    let bytes = std::fs::read(path)?;
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| invalid("missing artifact header line".to_string()))?;
    let header = std::str::from_utf8(&bytes[..=newline])
        .map_err(|_| invalid("non-UTF-8 artifact header".to_string()))?;
    let expected = header_line(expected_backend);
    if header != expected {
        return Err(invalid(format!(
            "unsupported artifact header {:?} (expected {:?})",
            header.trim_end(),
            expected.trim_end()
        )));
    }

    let mut r = ByteReader {
        bytes: &bytes[newline + 1..],
        pos: 0,
    };
    let checksum = r.u64()?;
    let payload_len = r.u64()? as usize;
    let payload = r.take(payload_len)?;
    if r.pos != r.bytes.len() {
        return Err(invalid(format!(
            "{} trailing bytes after the payload",
            r.bytes.len() - r.pos
        )));
    }
    if payload_checksum(payload) != checksum {
        return Err(invalid("payload checksum mismatch".to_string()));
    }

    let mut r = ByteReader {
        bytes: payload,
        pos: 0,
    };
    let num_circuits = r.u32()? as usize;
    let mut circuits = Vec::with_capacity(num_circuits.min(1 << 16));
    for _ in 0..num_circuits {
        let key = r.u128()?;
        let blob_len = r.u64()? as usize;
        let blob = r.take(blob_len)?;
        let circuit =
            Ddnnf::from_bytes(blob).map_err(|e| invalid(format!("circuit {key:032x}: {e}")))?;
        circuits.push((key, circuit));
    }
    let num_covers = r.u32()? as usize;
    let mut covers = Vec::with_capacity(num_covers.min(1 << 16));
    for _ in 0..num_covers {
        let property = r.string()?;
        let scope = r.u32()? as usize;
        let family = r.string()?;
        let symmetry = symmetry_from_tag(r.u8()?)?;
        let phi = r.u128()?;
        let not_phi = r.u128()?;
        let num_regions = r.u32()? as usize;
        let mut regions = Vec::with_capacity(num_regions.min(1 << 20));
        for _ in 0..num_regions {
            let label = match r.u8()? {
                0 => TreeLabel::False,
                1 => TreeLabel::True,
                tag => return Err(invalid(format!("unknown region label tag {tag}"))),
            };
            let cube_len = r.u16()? as usize;
            let mut cube = Vec::with_capacity(cube_len);
            for _ in 0..cube_len {
                cube.push(Lit::from_code(r.u32()? as usize));
            }
            regions.push(DecisionRegion { cube, label });
        }
        covers.push(RegionCover {
            property,
            scope,
            family,
            symmetry,
            phi,
            not_phi,
            regions,
        });
    }
    if r.pos != payload.len() {
        return Err(invalid(format!(
            "{} trailing payload bytes after the cover list",
            payload.len() - r.pos
        )));
    }
    Ok(CircuitArtifact {
        backend: expected_backend.to_string(),
        circuits,
        covers,
    })
}

/// The artifact's full header line, newline included.
fn header_line(backend: &str) -> String {
    format!(
        "mcml-circuits v{ARTIFACT_VERSION} backend={backend} encoder={:016x}\n",
        encoder_fingerprint()
    )
}

/// One stable byte per [`SymmetryBreaking`] setting in the payload.
fn symmetry_tag(sb: SymmetryBreaking) -> u8 {
    match sb {
        SymmetryBreaking::None => 0,
        SymmetryBreaking::Adjacent => 1,
        SymmetryBreaking::Transpositions => 2,
        SymmetryBreaking::Full => 3,
    }
}

fn symmetry_from_tag(tag: u8) -> io::Result<SymmetryBreaking> {
    match tag {
        0 => Ok(SymmetryBreaking::None),
        1 => Ok(SymmetryBreaking::Adjacent),
        2 => Ok(SymmetryBreaking::Transpositions),
        3 => Ok(SymmetryBreaking::Full),
        other => Err(invalid(format!("unknown symmetry-breaking tag {other}"))),
    }
}

fn push_u32(out: &mut Vec<u8>, value: usize) -> io::Result<()> {
    let value =
        u32::try_from(value).map_err(|_| invalid(format!("count {value} overflows u32")))?;
    out.extend_from_slice(&value.to_le_bytes());
    Ok(())
}

fn push_str(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len =
        u16::try_from(s.len()).map_err(|_| invalid(format!("string of {} bytes", s.len())))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Little-endian cursor over artifact bytes; every read maps out-of-bounds
/// to `InvalidData` so truncation never panics.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| invalid(format!("truncated artifact at byte {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| invalid("non-UTF-8 string in artifact".to_string()))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-sensitive checksum over the payload: splitmix64 folded over
/// little-endian 8-byte words plus the length, so bit flips, swaps and
/// truncation all shift the digest.
fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xA076_1D64_78BD_642F_u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    splitmix64(h ^ bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mcml-artifact-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_artifact() -> CircuitArtifact {
        let mut phi = Cnf::new(4);
        phi.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        phi.add_clause(vec![Lit::neg(2), Lit::pos(3)]);
        let mut not_phi = Cnf::new(4);
        not_phi.add_clause(vec![Lit::neg(0)]);
        not_phi.add_clause(vec![Lit::neg(1)]);
        let compile = |cnf: &Cnf| Compiler::new().compile(cnf).expect("no budget");
        CircuitArtifact {
            backend: "compiled".to_string(),
            circuits: vec![
                (cnf_fingerprint(&phi), compile(&phi)),
                (cnf_fingerprint(&not_phi), compile(&not_phi)),
            ],
            covers: vec![RegionCover {
                property: "function".to_string(),
                scope: 2,
                family: "DT".to_string(),
                symmetry: SymmetryBreaking::Transpositions,
                phi: cnf_fingerprint(&phi),
                not_phi: cnf_fingerprint(&not_phi),
                regions: vec![
                    DecisionRegion {
                        cube: vec![Lit::pos(0), Lit::neg(3)],
                        label: TreeLabel::True,
                    },
                    DecisionRegion {
                        cube: vec![Lit::neg(0)],
                        label: TreeLabel::False,
                    },
                ],
            }],
        }
    }

    #[test]
    fn artifact_round_trips_circuits_and_covers() {
        let artifact = sample_artifact();
        let path = temp_path("roundtrip.bin");
        let written = save_artifact(&path, &artifact).expect("save");
        assert_eq!(written, 2);
        let loaded = load_artifact(&path, "compiled").expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.backend, "compiled");
        assert_eq!(loaded.covers, artifact.covers);
        assert_eq!(loaded.circuits.len(), artifact.circuits.len());
        let mut expected: Vec<&(u128, Ddnnf)> = artifact.circuits.iter().collect();
        expected.sort_by_key(|(key, _)| *key);
        for ((lk, lc), (ek, ec)) in loaded.circuits.iter().zip(expected) {
            assert_eq!(lk, ek);
            assert_eq!(lc.count(), ec.count());
            assert_eq!(lc.to_bytes(), ec.to_bytes());
        }
    }

    #[test]
    fn backend_and_encoder_mismatches_are_invalid_data() {
        let artifact = sample_artifact();
        let path = temp_path("mismatch.bin");
        save_artifact(&path, &artifact).expect("save");

        let err = load_artifact(&path, "exact").expect_err("foreign backend");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Forge a drifted encoder fingerprint in an otherwise valid file.
        let mut bytes = std::fs::read(&path).expect("read back");
        let newline = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header = String::from_utf8(bytes[..newline].to_vec()).unwrap();
        let forged = format!("{}cafe\n", &header[..header.len() - 4]);
        assert_ne!(
            forged.as_bytes(),
            &bytes[..=newline],
            "test must actually drift"
        );
        let mut drifted = forged.into_bytes();
        drifted.extend_from_slice(&bytes[newline + 1..]);
        std::fs::write(&path, &drifted).expect("rewrite");
        let err = load_artifact(&path, "compiled").expect_err("drifted encoder");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        std::fs::write(&path, &mut bytes).expect("restore");
        assert!(load_artifact(&path, "compiled").is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_and_truncation_are_invalid_data() {
        let artifact = sample_artifact();
        let path = temp_path("corrupt.bin");
        save_artifact(&path, &artifact).expect("save");
        let bytes = std::fs::read(&path).expect("read back");
        let newline = bytes.iter().position(|&b| b == b'\n').unwrap();

        // Flip one payload byte: the checksum must catch it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        std::fs::write(&path, &flipped).expect("rewrite");
        let err = load_artifact(&path, "compiled").expect_err("bit flip");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncate at a few points past the header: never a panic, always
        // InvalidData.
        for cut in [newline + 1, newline + 9, newline + 17, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).expect("rewrite");
            let err = load_artifact(&path, "compiled").expect_err("truncation");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn artifact_naming_follows_the_store_policy() {
        assert_eq!(artifact_file_name("compiled"), "circuits.compiled.v2.bin");
        // One fingerprint per process, stable across calls.
        assert_eq!(encoder_fingerprint(), encoder_fingerprint());
    }

    #[test]
    fn symmetry_settings_survive_the_round_trip() {
        for &sb in SymmetryBreaking::all() {
            let mut artifact = sample_artifact();
            artifact.covers[0].symmetry = sb;
            let path = temp_path(&format!("symmetry-{}.bin", sb.name()));
            save_artifact(&path, &artifact).expect("save");
            let loaded = load_artifact(&path, "compiled").expect("load");
            std::fs::remove_file(&path).ok();
            assert_eq!(loaded.covers[0].symmetry, sb);
        }
    }
}
