//! The [`CnfEncodable`] abstraction: model families whose decision regions
//! can be characterized in CNF, making them eligible for the whole-space
//! AccMC/DiffMC metrics.
//!
//! The key invariant every implementation must maintain is
//! *count preservation under projection*: for a CNF whose projection set is
//! the feature block, an assignment of the feature variables must be
//! extendable to a model of the appended clauses **iff** the model
//! classifies that assignment as the requested label. Auxiliary variables
//! are fine (projected counting ignores how many extensions exist), missing
//! or spurious feature assignments are not.
//!
//! Four model families implement the trait:
//!
//! * [`DecisionTree`] — the original auxiliary-variable-free Tree2CNF
//!   translation (see [`crate::tree2cnf`]);
//! * [`RandomForest`] — one indicator variable per tree (equivalent to that
//!   tree's positive region) plus a totalizer cardinality constraint from
//!   [`satkit::card`] asserting the majority threshold;
//! * [`AdaBoost`] — indicator variables per weak learner plus a
//!   weighted-vote threshold compiled to clauses through the memoized
//!   additive-score branching program below, mirroring the ensemble's own
//!   floating-point vote summation bit for bit;
//! * [`GradientBoosting`] — indicator variables per regression-tree *leaf*
//!   plus the same additive-score compiler folding each firing leaf's
//!   shrunken value into the running score, thresholded through the
//!   ensemble's own sigmoid comparison
//!   ([`GradientBoosting::predict_from_tree_sum`]), again bit for bit.
//!
//! Both vote-based encodings share one machinery: the **additive-score
//! vote compiler** (the private `AdditiveVoteCompiler` here for CNF, and
//! [`Bdd::vote_fold`] for the feature-space decision-region diagrams),
//! whose state is a `u64` carrying either a tally or an `f64` partial sum
//! as its bit pattern.

use crate::error::EvalError;
use crate::tree2cnf::{tree_label_clauses, TreeLabel};
use mlkit::adaboost::AdaBoost;
use mlkit::forest::RandomForest;
use mlkit::gbdt::GradientBoosting;
use mlkit::tree::DecisionTree;
use satkit::bdd::{Bdd, BddError, NodeRef, ReorderPolicy};
use satkit::card::Totalizer;
use satkit::cnf::{Cnf, Lit, Var};
use std::collections::HashMap;

/// Upper bound on the nodes of a vote circuit — the additive-score
/// branching programs of the ABT/GBDT CNF encodings, and the feature-space
/// vote BDDs behind [`CnfEncodable::decision_regions`]. With
/// pairwise-distinct vote weights a weighted-vote diagram reaches
/// `2^rounds` nodes — and a GBDT score fold `Πₜ leavesₜ` (shrinkage keeps
/// leaf contributions distinct) — so oversized ensembles fail fast with
/// [`EvalError::VoteCircuitTooLarge`] instead of exhausting memory. The
/// same bound caps the number of extracted region cubes.
pub const MAX_VOTE_NODES: usize = 1 << 16;

/// One decision region of a model: a cube of feature literals (a partial
/// assignment every input of the region satisfies) and the label the model
/// assigns to the region.
///
/// For a decision tree the regions are its root-to-leaf paths; for the
/// voting ensembles they are the root-to-sink paths of the vote circuit
/// compiled to a reduced ordered BDD over the feature variables
/// ([`satkit::bdd`]). Either way the regions **partition** the input space —
/// the property the compiled AccMC/DiffMC query plans rely on when they sum
/// per-region conditioned counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRegion {
    /// The feature literals fixed along the region.
    pub cube: Vec<Lit>,
    /// The label the model assigns to every input of the region.
    pub label: TreeLabel,
}

/// A trained model whose `label` decision region can be appended to a CNF.
pub trait CnfEncodable {
    /// Number of input features (the model's primary variables `0..n`).
    fn num_features(&self) -> usize;

    /// Appends clauses to `cnf` constraining its first
    /// [`num_features`](Self::num_features) variables to the inputs this
    /// model classifies as `label`. Auxiliary variables must be allocated
    /// through [`Cnf::new_var`] so they never collide with variables already
    /// present (e.g. the Tseitin variables of a ground-truth formula).
    ///
    /// # Panics
    ///
    /// Panics if `cnf` has fewer variables than the model has features, or
    /// if the encoding blows an internal size bound (use
    /// [`try_encode_label`](Self::try_encode_label) for a typed error).
    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel);

    /// Fallible variant of [`encode_label`](Self::encode_label): encodings
    /// with a size hazard (the AdaBoost vote diagram) report it as a typed
    /// [`EvalError`] instead of panicking or blowing up silently, under the
    /// default vote-circuit budget ([`MAX_VOTE_NODES`]).
    ///
    /// On `Err`, `cnf` may hold a partial encoding and must be discarded.
    fn try_encode_label(&self, cnf: &mut Cnf, label: TreeLabel) -> Result<(), EvalError> {
        self.try_encode_label_bounded(cnf, label, MAX_VOTE_NODES)
    }

    /// [`try_encode_label`](Self::try_encode_label) with an explicit
    /// vote-circuit node budget — the same knob
    /// [`decision_regions_bounded`](Self::decision_regions_bounded) honours,
    /// so `AccMc::vote_node_bound` governs the classic engine's ABT vote
    /// diagram exactly as it governs the compiled engine's region
    /// extraction. The default ignores the bound (encodings that cannot
    /// blow up) and delegates to `encode_label`.
    fn try_encode_label_bounded(
        &self,
        cnf: &mut Cnf,
        label: TreeLabel,
        vote_node_bound: usize,
    ) -> Result<(), EvalError> {
        let _ = vote_node_bound;
        self.encode_label(cnf, label);
        Ok(())
    }

    /// The model's decision regions as cubes over the feature variables,
    /// computed with the default vote-circuit budget
    /// ([`MAX_VOTE_NODES`]). Regions **partition** the input space: every
    /// input satisfies exactly one region cube. Every family exposes them —
    /// trees from their root-to-leaf paths, voting ensembles by compiling
    /// the vote circuit to a feature-space BDD and reading off its path
    /// cubes — which is what lets the compiled AccMC/DiffMC query plans
    /// cover DT, RFT, GBDT and ABT uniformly.
    fn decision_regions(&self) -> Result<Vec<DecisionRegion>, EvalError> {
        self.decision_regions_bounded(MAX_VOTE_NODES)
    }

    /// [`decision_regions`](Self::decision_regions) with an explicit
    /// vote-circuit node budget. An ensemble whose vote diagram (or cube
    /// cover) exceeds `vote_node_bound` reports
    /// [`EvalError::VoteCircuitTooLarge`]; families whose regions need no
    /// vote circuit (decision trees) ignore the bound.
    fn decision_regions_bounded(
        &self,
        vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError>;

    /// A standalone CNF over the feature variables whose projected models
    /// are exactly the inputs classified as `label`; the projection set is
    /// the full feature block.
    fn label_cnf(&self, label: TreeLabel) -> Cnf {
        let n = self.num_features();
        let mut cnf = Cnf::new(n);
        cnf.set_projection((0..n as u32).map(Var).collect());
        self.encode_label(&mut cnf, label);
        cnf
    }

    /// Fallible variant of [`label_cnf`](Self::label_cnf), under the
    /// default vote-circuit budget.
    fn try_label_cnf(&self, label: TreeLabel) -> Result<Cnf, EvalError> {
        self.try_label_cnf_bounded(label, MAX_VOTE_NODES)
    }

    /// [`try_label_cnf`](Self::try_label_cnf) with an explicit vote-circuit
    /// node budget.
    fn try_label_cnf_bounded(
        &self,
        label: TreeLabel,
        vote_node_bound: usize,
    ) -> Result<Cnf, EvalError> {
        let n = self.num_features();
        let mut cnf = Cnf::new(n);
        cnf.set_projection((0..n as u32).map(Var).collect());
        self.try_encode_label_bounded(&mut cnf, label, vote_node_bound)?;
        Ok(cnf)
    }
}

pub(crate) fn assert_feature_block(cnf: &Cnf, num_features: usize) {
    assert!(
        cnf.num_vars() >= num_features,
        "CNF has {} variables but the model uses {} features",
        cnf.num_vars(),
        num_features
    );
}

impl CnfEncodable for DecisionTree {
    fn num_features(&self) -> usize {
        DecisionTree::num_features(self)
    }

    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel) {
        assert_feature_block(cnf, DecisionTree::num_features(self));
        for clause in tree_label_clauses(self, label) {
            cnf.add_clause(clause);
        }
    }

    /// A tree's root-to-leaf paths are its decision regions: each path is a
    /// cube of the feature tests along it, and any input follows exactly
    /// one path. No vote circuit is involved, so the bound is ignored.
    fn decision_regions_bounded(
        &self,
        _vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError> {
        Ok(self
            .paths()
            .into_iter()
            .map(|p| DecisionRegion {
                cube: p
                    .conditions
                    .iter()
                    .map(|&(feature, value)| Lit::from_var(Var(feature as u32), value))
                    .collect(),
                label: if p.label {
                    TreeLabel::True
                } else {
                    TreeLabel::False
                },
            })
            .collect())
    }
}

/// Compiles a decision tree into a BDD over the feature variables by
/// mirroring the tree's own branching structure: the paths are grouped on
/// their first remaining condition and the two halves combined with one
/// `ite(feature, then, else)` per internal split. The ordered apply
/// canonicalizes the (arbitrary) tree test order, and building one `ite`
/// per split — instead of OR-ing every positive path cube into a growing
/// disjunction — touches each subfunction once.
fn tree_bdd(bdd: &mut Bdd, tree: &DecisionTree) -> Result<NodeRef, BddError> {
    let paths = tree.paths();
    let refs: Vec<&mlkit::tree::TreePath> = paths.iter().collect();
    tree_bdd_rec(bdd, &refs, 0)
}

/// The split at `depth` of the tree node all of `paths` pass through:
/// every path carries the same feature there (they came from one tree), a
/// lone exhausted path is the leaf itself.
fn tree_bdd_rec(
    bdd: &mut Bdd,
    paths: &[&mlkit::tree::TreePath],
    depth: usize,
) -> Result<NodeRef, BddError> {
    if paths.len() == 1 && paths[0].conditions.len() == depth {
        return Ok(bdd.constant(paths[0].label));
    }
    let feature = paths[0].conditions[depth].0;
    let split = |value: bool| -> Vec<&mlkit::tree::TreePath> {
        paths
            .iter()
            .filter(|p| p.conditions[depth] == (feature, value))
            .copied()
            .collect()
    };
    let hi = tree_bdd_rec(bdd, &split(true), depth + 1)?;
    let lo = tree_bdd_rec(bdd, &split(false), depth + 1)?;
    let test = bdd.literal(feature as u32, true)?;
    bdd.ite(test, hi, lo)
}

/// Reads the root-to-sink path cubes of a compiled vote diagram off as
/// [`DecisionRegion`]s. The cubes are disjoint and exhaustive by
/// construction (every input follows exactly one path).
///
/// The cube budget can blow where the node budget did not: a diagram
/// comfortably within its node allowance may still spell exponentially
/// many root-to-sink paths under an unlucky variable order. Under
/// [`ReorderPolicy::OnPressure`] a [`BddError::TooManyCubes`] triggers one
/// sift-and-retry — the same pressure response the *build* already gets —
/// before the typed error surfaces; [`ReorderPolicy::Off`] pins the
/// static-order behaviour for tests.
pub(crate) fn regions_from_diagram(
    bdd: &mut Bdd,
    root: NodeRef,
    policy: ReorderPolicy,
) -> Result<Vec<DecisionRegion>, EvalError> {
    let cubes = match bdd.cube_cover(root) {
        Err(BddError::TooManyCubes { .. }) if policy == ReorderPolicy::OnPressure => {
            bdd.sift(&[root]);
            bdd.cube_cover(root)?
        }
        other => other?,
    };
    Ok(cubes
        .into_iter()
        .map(|cube| DecisionRegion {
            cube: cube
                .lits
                .iter()
                .map(|&(var, positive)| Lit::from_var(Var(var), positive))
                .collect(),
            label: if cube.value {
                TreeLabel::True
            } else {
                TreeLabel::False
            },
        })
        .collect())
}

/// Extracts the decision regions of a tree ensemble from its vote BDD:
/// compile each member tree to a feature-space diagram, fold the votes with
/// `cast`/`decide` through [`Bdd::vote_fold`] (whose memo table lives on
/// the manager, so the allocation is shared rather than rebuilt per fold),
/// and read the path cubes off the reduced diagram. Production callers pass
/// [`ReorderPolicy::OnPressure`], so a fold whose diagram outgrows the
/// budget under the static feature order is sifted before the typed error
/// surfaces; the parameter is explicit so tests can pin the static-order
/// behaviour.
///
/// The vote state is a `u64`: a tally fits directly (RFT) and an `f64`
/// partial sum travels as its bit pattern (ABT).
fn ensemble_decision_regions(
    trees: impl Iterator<Item = impl std::borrow::Borrow<DecisionTree>>,
    initial: u64,
    cast: impl Fn(usize, u64, bool) -> u64,
    decide: impl Fn(u64) -> bool,
    vote_node_bound: usize,
    policy: ReorderPolicy,
) -> Result<Vec<DecisionRegion>, EvalError> {
    let mut bdd = Bdd::with_node_budget(vote_node_bound).with_reorder_policy(policy);
    let voters: Vec<NodeRef> = trees
        .map(|tree| tree_bdd(&mut bdd, tree.borrow()))
        .collect::<Result<_, _>>()?;
    let root = bdd.vote_fold(&voters, initial, &cast, &decide, vote_node_bound)?;
    regions_from_diagram(&mut bdd, root, policy)
}

/// One stage of the GBDT additive-score fold: the guard leaf paths of one
/// regression tree (all but the last leaf — the cubes partition the feature
/// space, so the last leaf is the stage's implicit "otherwise" branch) and
/// the shrunken contribution of **every** leaf, indexed by alternative.
struct GbdtStage {
    guard_paths: Vec<mlkit::gbdt::RegressionPath>,
    contributions: Vec<f64>,
}

/// The single source of truth for the GBDT fold semantics, shared by the
/// classic engine's CNF compiler ([`encode_gbdt_label`]) and the compiled
/// engine's region extraction ([`gbdt_decision_regions`]) — both paths must
/// run the *same* float arithmetic in the same order, or the
/// classic-vs-compiled bit-identical agreement the conformance suite pins
/// breaks. Only the guard materialization (indicator [`Lit`]s vs
/// feature-space BDD cubes) differs between the two callers.
struct GbdtFoldPlan {
    stages: Vec<GbdtStage>,
}

impl GbdtFoldPlan {
    /// The fold starts from an exact `0.0`, like the predictor's sum.
    const INITIAL: u64 = 0.0f64.to_bits();

    fn of(model: &GradientBoosting) -> GbdtFoldPlan {
        let learning_rate = model.config().learning_rate;
        GbdtFoldPlan {
            stages: model
                .tree_paths()
                .into_iter()
                .map(|mut paths| {
                    // The same product the predictor computes per firing
                    // leaf, recorded for every alternative (incl. the last).
                    let contributions = paths.iter().map(|p| learning_rate * p.value).collect();
                    paths.pop(); // the last leaf is the "otherwise" branch
                    GbdtStage {
                        guard_paths: paths,
                        contributions,
                    }
                })
                .collect(),
        }
    }

    /// The state-advance closure: add the chosen leaf's shrunken value to
    /// the running `f64` sum, travelling as its bit pattern.
    fn cast(&self) -> impl Fn(usize, usize, u64) -> u64 + '_ {
        move |stage, alternative, acc| {
            (f64::from_bits(acc) + self.stages[stage].contributions[alternative]).to_bits()
        }
    }

    /// The decision closure: the predictor's own sigmoid threshold.
    fn decide<'m>(&self, model: &'m GradientBoosting) -> impl Fn(u64) -> bool + 'm {
        move |acc| model.predict_from_tree_sum(f64::from_bits(acc))
    }
}

/// Extracts the decision regions of a gradient-boosting ensemble through
/// [`Bdd::staged_vote_fold`]: one **stage per regression tree**, whose
/// alternatives are the tree's leaf cubes (pairwise disjoint, exhaustive —
/// the last leaf is the stage's "otherwise" branch), with the fold adding
/// the chosen leaf's shrunken value to the running `f64` score and the
/// final state thresholded by
/// [`GradientBoosting::predict_from_tree_sum`]. Exactly one leaf per tree
/// fires on any input, so the folded sum reproduces
/// [`GradientBoosting::tree_sum`] bit for bit, in training order.
///
/// Staging matters: folding leaves as independent binary voters would
/// enumerate abstract *subsets* of leaves (`2^leaves` fold states); the
/// staged fold only visits states one firing leaf per tree can reach —
/// still exponential in the rounds when shrinkage keeps partial sums
/// pairwise distinct, which is exactly what the vote-node budget and the
/// pressure-triggered sifting are for.
///
/// Exposed at crate level (with an explicit [`ReorderPolicy`]) so tests can
/// contrast the static feature order against sifting; the trait
/// implementation always passes [`ReorderPolicy::OnPressure`].
pub(crate) fn gbdt_decision_regions(
    model: &GradientBoosting,
    vote_node_bound: usize,
    policy: ReorderPolicy,
) -> Result<Vec<DecisionRegion>, EvalError> {
    let mut bdd = Bdd::with_node_budget(vote_node_bound).with_reorder_policy(policy);
    let plan = GbdtFoldPlan::of(model);
    let mut stages = Vec::with_capacity(plan.stages.len());
    for stage in &plan.stages {
        let mut guards = Vec::with_capacity(stage.guard_paths.len());
        for path in &stage.guard_paths {
            let mut cube = bdd.constant(true);
            for &(feature, value) in &path.conditions {
                let lit = bdd.literal(feature as u32, value)?;
                cube = bdd.and(cube, lit)?;
            }
            guards.push(cube);
        }
        stages.push(guards);
    }
    let root = bdd.staged_vote_fold(
        &stages,
        GbdtFoldPlan::INITIAL,
        &plan.cast(),
        &plan.decide(model),
        vote_node_bound,
    )?;
    regions_from_diagram(&mut bdd, root, policy)
}

/// Defines a fresh variable equivalent to `tree`'s positive decision region
/// and returns its positive literal.
///
/// Both implication directions are emitted — `v → region` (the region's CNF
/// with `¬v` added to each clause) and `region → v` (the complement's CNF
/// with `v` added) — so asserting either polarity of `v` carves out exactly
/// the corresponding region.
fn define_region_indicator(cnf: &mut Cnf, tree: &DecisionTree) -> Lit {
    let v = cnf.new_var().pos();
    for clause in tree_label_clauses(tree, TreeLabel::True) {
        let mut lits = clause.lits().to_vec();
        lits.push(!v);
        cnf.add_clause(lits);
    }
    for clause in tree_label_clauses(tree, TreeLabel::False) {
        let mut lits = clause.lits().to_vec();
        lits.push(v);
        cnf.add_clause(lits);
    }
    v
}

/// Defines a fresh variable equivalent to a conjunction of feature
/// literals (a regression-tree leaf's path cube) and returns its positive
/// literal: `v → lᵢ` for every condition, plus `l₁ ∧ … ∧ lₖ → v`. An empty
/// cube (a single-leaf tree) defines `v ↔ ⊤`.
fn define_cube_indicator(cnf: &mut Cnf, conditions: &[(usize, bool)]) -> Lit {
    let v = cnf.new_var().pos();
    let mut cube_implies_v = Vec::with_capacity(conditions.len() + 1);
    cube_implies_v.push(v);
    for &(feature, value) in conditions {
        let l = Lit::from_var(Var(feature as u32), value);
        cnf.add_clause(vec![!v, l]);
        cube_implies_v.push(!l);
    }
    cnf.add_clause(cube_implies_v);
    v
}

impl CnfEncodable for RandomForest {
    fn num_features(&self) -> usize {
        self.trees()[0].num_features()
    }

    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel) {
        assert_feature_block(cnf, CnfEncodable::num_features(self));
        let votes: Vec<Lit> = self
            .trees()
            .iter()
            .map(|tree| define_region_indicator(cnf, tree))
            .collect();
        // `predict` is `votes * 2 >= num_trees`, i.e. `votes >= ceil(T / 2)`.
        let threshold = self.trees().len().div_ceil(2);
        let totalizer = Totalizer::build(cnf, &votes);
        match label {
            TreeLabel::True => totalizer.assert_at_least(cnf, threshold),
            TreeLabel::False => totalizer.assert_at_most(cnf, threshold - 1),
        }
    }

    /// Majority-vote regions: each tree is compiled to a feature-space BDD,
    /// the running tally of positive votes is folded over them
    /// (`votes * 2 >= num_trees`, exactly [`RandomForest`]'s `predict`),
    /// and the reduced diagram's path cubes are the regions.
    fn decision_regions_bounded(
        &self,
        vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError> {
        let num_trees = self.trees().len() as u64;
        ensemble_decision_regions(
            self.trees().iter(),
            0u64,
            |_, votes, fired| votes + u64::from(fired),
            |votes| votes * 2 >= num_trees,
            vote_node_bound,
            ReorderPolicy::OnPressure,
        )
    }
}

/// A node of the weighted-vote branching program: a constant region or the
/// defining literal of an ITE over an indicator variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VoteNode {
    Const(bool),
    Defined(Lit),
}

/// The additive-score vote compiler: expands a **staged** vote branching
/// program over indicator literals into CNF clauses, one ITE definition per
/// materialized node. Stage `t` chooses among `stages[t].len() + 1`
/// mutually exclusive alternatives — alternative `j < stages[t].len()` is
/// guarded by the indicator literal `stages[t][j]`, the last alternative is
/// the implicit "otherwise" branch — and `cast(stage, alternative, state)`
/// advances the `u64` fold state (a tally directly, or an `f64` partial sum
/// as its bit pattern) exactly like [`Bdd::staged_vote_fold`] advances the
/// feature-space diagrams, so the CNF (classic-engine) and region
/// (compiled-engine) paths of one ensemble run the *same* arithmetic in the
/// same order.
///
/// Instantiated by [`AdaBoost`] (one two-alternative stage per learner:
/// fired `acc + α`, otherwise `acc - α`) and by [`GradientBoosting`] (one
/// stage per regression tree whose alternatives are its leaf indicators,
/// the chosen leaf adding `lr·leaf`), each mirroring its predictor's
/// accumulation bit for bit. Staging is what keeps the GBDT tractable:
/// leaves folded as independent binary voters would enumerate abstract
/// *subsets* of leaves, while a stage visits only the states one firing
/// leaf per tree can reach.
///
/// **Complexity caveat:** with pairwise-distinct contributions the state
/// space still grows exponentially in the number of stages (distinct
/// partial sums never merge). The compiler therefore bounds both the
/// materialized ITE nodes *and* the memo table at `bound`
/// ([`MAX_VOTE_NODES`] at the public entry points) and reports
/// [`EvalError::VoteCircuitTooLarge`] instead of exhausting memory — the
/// memo cap keeps the failure fast even when every ITE collapses to a
/// constant and no variable is ever materialized.
pub(crate) struct AdditiveVoteCompiler<'a, Cast, Decide>
where
    Cast: Fn(usize, usize, u64) -> u64,
    Decide: Fn(u64) -> bool,
{
    /// Per stage: the guard literals of all but the last alternative.
    stages: &'a [Vec<Lit>],
    cast: Cast,
    decide: Decide,
    memo: HashMap<(usize, u64), VoteNode>,
    /// ITE nodes materialized as fresh variables so far.
    nodes: usize,
    /// Materialization (and memo) bound.
    bound: usize,
}

impl<Cast, Decide> AdditiveVoteCompiler<'_, Cast, Decide>
where
    Cast: Fn(usize, usize, u64) -> u64,
    Decide: Fn(u64) -> bool,
{
    pub(crate) fn new(
        stages: &[Vec<Lit>],
        cast: Cast,
        decide: Decide,
        bound: usize,
    ) -> AdditiveVoteCompiler<'_, Cast, Decide> {
        AdditiveVoteCompiler {
            stages,
            cast,
            decide,
            memo: HashMap::new(),
            nodes: 0,
            bound,
        }
    }

    fn compile(&mut self, cnf: &mut Cnf, stage: usize, state: u64) -> Result<VoteNode, EvalError> {
        if stage == self.stages.len() {
            return Ok(VoteNode::Const((self.decide)(state)));
        }
        let key = (stage, state);
        if let Some(&node) = self.memo.get(&key) {
            return Ok(node);
        }
        if self.memo.len() >= self.bound {
            return Err(EvalError::VoteCircuitTooLarge {
                nodes: self.memo.len() + 1,
                bound: self.bound,
            });
        }
        let guards = &self.stages[stage];
        // Build the if-then-else chain from the otherwise-branch backwards:
        // acc = g₀ ? s₀ : (g₁ ? s₁ : (… : s_otherwise)).
        let mut acc = self.compile(cnf, stage + 1, (self.cast)(stage, guards.len(), state))?;
        for j in (0..guards.len()).rev() {
            let sub = self.compile(cnf, stage + 1, (self.cast)(stage, j, state))?;
            let before = cnf.num_vars();
            acc = ite(cnf, guards[j], sub, acc);
            if cnf.num_vars() > before {
                self.nodes += 1;
                if self.nodes > self.bound {
                    return Err(EvalError::VoteCircuitTooLarge {
                        nodes: self.nodes,
                        bound: self.bound,
                    });
                }
            }
        }
        self.memo.insert(key, acc);
        Ok(acc)
    }

    /// Compiles the whole program from `initial` and asserts that the CNF's
    /// models are exactly the inputs the program maps to `label`.
    pub(crate) fn assert_label(
        &mut self,
        cnf: &mut Cnf,
        initial: u64,
        label: TreeLabel,
    ) -> Result<(), EvalError> {
        let root = self.compile(cnf, 0, initial)?;
        let wanted = matches!(label, TreeLabel::True);
        match root {
            VoteNode::Const(value) => {
                if value != wanted {
                    cnf.add_clause(Vec::new()); // the region is empty
                }
            }
            VoteNode::Defined(lit) => {
                cnf.add_unit(if wanted { lit } else { !lit });
            }
        }
        Ok(())
    }
}

/// Defines `u ↔ (v ? hi : lo)` with constant folding, returning the node
/// standing for the ITE.
fn ite(cnf: &mut Cnf, v: Lit, hi: VoteNode, lo: VoteNode) -> VoteNode {
    if hi == lo {
        return hi;
    }
    match (hi, lo) {
        (VoteNode::Const(true), VoteNode::Const(false)) => return VoteNode::Defined(v),
        (VoteNode::Const(false), VoteNode::Const(true)) => return VoteNode::Defined(!v),
        _ => {}
    }
    let u = cnf.new_var().pos();
    // u ↔ (v ∧ hi) ∨ (¬v ∧ lo), with constant branches folded away.
    match hi {
        VoteNode::Const(true) => cnf.add_clause(vec![u, !v]), // v → u
        VoteNode::Const(false) => cnf.add_clause(vec![!u, !v]), // v → ¬u
        VoteNode::Defined(h) => {
            cnf.add_clause(vec![!u, !v, h]);
            cnf.add_clause(vec![u, !v, !h]);
        }
    }
    match lo {
        VoteNode::Const(true) => cnf.add_clause(vec![u, v]), // ¬v → u
        VoteNode::Const(false) => cnf.add_clause(vec![!u, v]), // ¬v → ¬u
        VoteNode::Defined(l) => {
            cnf.add_clause(vec![!u, v, l]);
            cnf.add_clause(vec![u, v, !l]);
        }
    }
    VoteNode::Defined(u)
}

/// Encodes the AdaBoost `label` region with an explicit vote-diagram node
/// bound: the decision `Σ αᵢ·hᵢ(x) ≥ 0` over per-learner indicators,
/// accumulated left to right in `f64` exactly like `AdaBoost::predict`
/// (`-alpha` is bit-identical to the predictor's `alpha * -1.0`). Exposed
/// at crate level so tests can exercise the bound without training a
/// pathologically large ensemble.
pub(crate) fn encode_adaboost_label(
    ensemble: &AdaBoost,
    cnf: &mut Cnf,
    label: TreeLabel,
    bound: usize,
) -> Result<(), EvalError> {
    assert_feature_block(cnf, CnfEncodable::num_features(ensemble));
    // One two-alternative stage per learner: alternative 0 (the indicator)
    // fires, the otherwise-alternative does not.
    let stages: Vec<Vec<Lit>> = ensemble
        .learners()
        .iter()
        .map(|(_, tree)| vec![define_region_indicator(cnf, tree)])
        .collect();
    let learners = ensemble.learners();
    let mut compiler = AdditiveVoteCompiler::new(
        &stages,
        |stage, alternative, acc| {
            let alpha = learners[stage].0;
            let acc = f64::from_bits(acc);
            if alternative == 0 {
                acc + alpha * 1.0
            } else {
                acc - alpha
            }
            .to_bits()
        },
        |acc| f64::from_bits(acc) >= 0.0,
        bound,
    );
    compiler.assert_label(cnf, 0.0f64.to_bits(), label)
}

/// Encodes the GBDT `label` region with an explicit vote-diagram node
/// bound: one stage per regression tree, whose alternatives are indicators
/// of the tree's leaf cubes (the last leaf is the stage's implicit
/// "otherwise" branch — the cubes partition the feature space, so when no
/// other leaf fires the last one must, and it needs no indicator
/// variable). The additive-score compiler adds the chosen leaf's shrunken
/// value per stage — exactly one leaf per tree fires, so the final state
/// reproduces [`GradientBoosting::tree_sum`] bit for bit — and thresholds
/// through the predictor's own sigmoid comparison.
pub(crate) fn encode_gbdt_label(
    model: &GradientBoosting,
    cnf: &mut Cnf,
    label: TreeLabel,
    bound: usize,
) -> Result<(), EvalError> {
    assert_feature_block(cnf, GradientBoosting::num_features(model));
    let plan = GbdtFoldPlan::of(model);
    let stages: Vec<Vec<Lit>> = plan
        .stages
        .iter()
        .map(|stage| {
            stage
                .guard_paths
                .iter()
                .map(|path| define_cube_indicator(cnf, &path.conditions))
                .collect()
        })
        .collect();
    let mut compiler = AdditiveVoteCompiler::new(&stages, plan.cast(), plan.decide(model), bound);
    compiler.assert_label(cnf, GbdtFoldPlan::INITIAL, label)
}

impl CnfEncodable for AdaBoost {
    fn num_features(&self) -> usize {
        self.learners()[0].1.num_features()
    }

    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel) {
        self.try_encode_label(cnf, label)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_encode_label_bounded(
        &self,
        cnf: &mut Cnf,
        label: TreeLabel,
        vote_node_bound: usize,
    ) -> Result<(), EvalError> {
        encode_adaboost_label(self, cnf, label, vote_node_bound)
    }

    /// Weighted-vote regions through the same float-exact accumulation as
    /// [`AdaBoost`]'s `predict`: the vote state is the partial sum's `f64`
    /// bit pattern, folded in learner order with `acc + α·(±1)`, so the
    /// compiled diagram agrees with the predictor on every input including
    /// rounding and signed-zero edge cases.
    fn decision_regions_bounded(
        &self,
        vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError> {
        let learners = self.learners();
        ensemble_decision_regions(
            learners.iter().map(|(_, tree)| tree),
            0.0f64.to_bits(),
            |index, acc, fired| {
                let alpha = learners[index].0;
                let acc = f64::from_bits(acc);
                // Identical arithmetic to `AdaBoost::predict`: `alpha * h`
                // with `h = ±1.0`, accumulated in learner order (`-alpha`
                // is bit-identical to `alpha * -1.0`).
                if fired {
                    acc + alpha * 1.0
                } else {
                    acc - alpha
                }
                .to_bits()
            },
            |acc| f64::from_bits(acc) >= 0.0,
            vote_node_bound,
            ReorderPolicy::OnPressure,
        )
    }
}

impl CnfEncodable for GradientBoosting {
    fn num_features(&self) -> usize {
        GradientBoosting::num_features(self)
    }

    fn encode_label(&self, cnf: &mut Cnf, label: TreeLabel) {
        self.try_encode_label(cnf, label)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_encode_label_bounded(
        &self,
        cnf: &mut Cnf,
        label: TreeLabel,
        vote_node_bound: usize,
    ) -> Result<(), EvalError> {
        encode_gbdt_label(self, cnf, label, vote_node_bound)
    }

    /// Additive-score regions through the same float-exact accumulation as
    /// [`GradientBoosting`]'s `predict`: the vote state is the partial
    /// sum's `f64` bit pattern, one voter per regression-tree leaf adds its
    /// shrunken value in training order, and the final state is thresholded
    /// by the predictor's own sigmoid comparison — so the compiled diagram
    /// agrees with the predictor on every input including rounding and the
    /// near-zero scores where `sigmoid(F) ≥ 0.5` and `F ≥ 0` differ.
    ///
    /// Because shrinkage makes leaf contributions pairwise-distinct floats,
    /// deep ensembles stress the node budget; the extraction manager runs
    /// with [`ReorderPolicy::OnPressure`], sifting the diagram into a
    /// cheaper variable order before giving up on the budget.
    fn decision_regions_bounded(
        &self,
        vote_node_bound: usize,
    ) -> Result<Vec<DecisionRegion>, EvalError> {
        gbdt_decision_regions(self, vote_node_bound, ReorderPolicy::OnPressure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::adaboost::AdaBoostConfig;
    use mlkit::data::Dataset;
    use mlkit::forest::ForestConfig;
    use mlkit::tree::TreeConfig;
    use mlkit::Classifier;
    use modelcount::exact::ExactCounter;

    fn dataset_from_fn(num_features: usize, f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(num_features);
        for bits in 0u32..(1 << num_features) {
            let row: Vec<u8> = (0..num_features).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    /// Checks the core invariant: the projected models of `label_cnf` are
    /// exactly the inputs the classifier maps to that label.
    fn check_encoding_matches_predictions<M: CnfEncodable + Classifier>(model: &M) {
        let n = CnfEncodable::num_features(model);
        let cnf_true = model.label_cnf(TreeLabel::True);
        let cnf_false = model.label_cnf(TreeLabel::False);
        let counter = ExactCounter::new();
        let mut expected_true = 0u128;
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            if model.predict(&features) {
                expected_true += 1;
            }
        }
        let t = counter.count(&cnf_true).expect("no budget");
        let f = counter.count(&cnf_false).expect("no budget");
        assert_eq!(t, expected_true, "true-region count");
        assert_eq!(f, (1u128 << n) - expected_true, "false-region count");
    }

    #[test]
    fn tree_encoding_matches_predictions() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && (x[1] == 1 || x[3] == 0));
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        check_encoding_matches_predictions(&tree);
    }

    #[test]
    fn forest_encoding_matches_predictions() {
        for (num_trees, seed) in [(1usize, 0u64), (2, 1), (5, 2), (8, 3)] {
            let d = dataset_from_fn(4, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 2);
            let forest = RandomForest::fit(
                &d,
                ForestConfig {
                    num_trees,
                    seed,
                    ..ForestConfig::default()
                },
            );
            check_encoding_matches_predictions(&forest);
        }
    }

    #[test]
    fn adaboost_encoding_matches_predictions() {
        for (rounds, depth, seed) in [(1usize, 1usize, 0u64), (5, 1, 1), (9, 2, 2)] {
            let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
            let ensemble = AdaBoost::fit(
                &d,
                AdaBoostConfig {
                    num_rounds: rounds,
                    weak_depth: depth,
                    seed,
                },
            );
            check_encoding_matches_predictions(&ensemble);
        }
    }

    #[test]
    fn indicator_is_an_equivalence() {
        // Assert the indicator both ways and compare against the region CNFs.
        let d = dataset_from_fn(3, |x| x[0] == 1 && x[2] == 0);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let counter = ExactCounter::new();
        for (polarity, label) in [(true, TreeLabel::True), (false, TreeLabel::False)] {
            let mut cnf = Cnf::new(3);
            cnf.set_projection((0..3).map(Var).collect());
            let v = define_region_indicator(&mut cnf, &tree);
            cnf.add_unit(if polarity { v } else { !v });
            let direct = CnfEncodable::label_cnf(&tree, label);
            assert_eq!(
                counter.count(&cnf).unwrap(),
                counter.count(&direct).unwrap(),
                "polarity {polarity}"
            );
        }
    }

    #[test]
    fn encoding_onto_wider_cnf_allocates_fresh_aux_vars() {
        // Appending onto a CNF that already has extra (Tseitin-like)
        // variables must not capture them as indicators.
        let d = dataset_from_fn(3, |x| x[1] == 1);
        let forest = RandomForest::fit(
            &d,
            ForestConfig {
                num_trees: 3,
                seed: 4,
                ..ForestConfig::default()
            },
        );
        let mut cnf = Cnf::new(10); // features 0..3, unrelated vars 3..10
        cnf.set_projection((0..3).map(Var).collect());
        forest.encode_label(&mut cnf, TreeLabel::True);
        assert!(cnf.num_vars() > 10, "aux vars must extend the formula");
        let count = ExactCounter::new().count(&cnf).unwrap();
        let brute = (0u32..8)
            .filter(|bits| {
                let features: Vec<u8> = (0..3).map(|k| ((bits >> k) & 1) as u8).collect();
                forest.predict(&features)
            })
            .count() as u128;
        assert_eq!(count, brute);
    }

    #[test]
    fn constant_adaboost_regions() {
        // A single-class dataset trains a constant ensemble; one region is
        // the full space, the other empty.
        let mut d = Dataset::new(2);
        d.push(vec![0, 1], true);
        d.push(vec![1, 1], true);
        let ensemble = AdaBoost::fit(&d, AdaBoostConfig::default());
        let counter = ExactCounter::new();
        let t = counter
            .count(&CnfEncodable::label_cnf(&ensemble, TreeLabel::True))
            .unwrap();
        let f = counter
            .count(&CnfEncodable::label_cnf(&ensemble, TreeLabel::False))
            .unwrap();
        assert_eq!(t, 4);
        assert_eq!(f, 0);
    }

    #[test]
    #[should_panic(expected = "variables but the model uses")]
    fn narrow_cnf_panics() {
        let d = dataset_from_fn(3, |x| x[0] == 1);
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        let mut cnf = Cnf::new(2);
        CnfEncodable::encode_label(&tree, &mut cnf, TreeLabel::True);
    }

    /// Checks the region contract for any model: every input satisfies
    /// exactly one region cube, and that region carries the predicted label.
    fn check_regions_partition<M: CnfEncodable + Classifier>(model: &M) {
        let n = CnfEncodable::num_features(model);
        let regions = model.decision_regions().expect("within the default bound");
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let matching: Vec<&DecisionRegion> = regions
                .iter()
                .filter(|r| {
                    r.cube
                        .iter()
                        .all(|l| l.eval(features[l.var().index()] != 0))
                })
                .collect();
            assert_eq!(matching.len(), 1, "input {features:?} must hit one region");
            let expected = if model.predict(&features) {
                TreeLabel::True
            } else {
                TreeLabel::False
            };
            assert_eq!(matching[0].label, expected, "input {features:?}");
        }
    }

    #[test]
    fn tree_decision_regions_partition_the_space() {
        let d = dataset_from_fn(4, |x| x[0] == 1 && (x[1] == 1 || x[3] == 0));
        let tree = DecisionTree::fit(&d, TreeConfig::default());
        check_regions_partition(&tree);
    }

    #[test]
    fn forest_decision_regions_partition_the_space() {
        for (num_trees, seed) in [(1usize, 0u64), (2, 1), (5, 2), (8, 3)] {
            let d = dataset_from_fn(4, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 2);
            let forest = RandomForest::fit(
                &d,
                ForestConfig {
                    num_trees,
                    seed,
                    ..ForestConfig::default()
                },
            );
            check_regions_partition(&forest);
        }
    }

    #[test]
    fn adaboost_decision_regions_partition_the_space() {
        for (rounds, depth, seed) in [(1usize, 1usize, 0u64), (5, 1, 1), (9, 2, 2)] {
            let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
            let ensemble = AdaBoost::fit(
                &d,
                AdaBoostConfig {
                    num_rounds: rounds,
                    weak_depth: depth,
                    seed,
                },
            );
            check_regions_partition(&ensemble);
        }
    }

    #[test]
    fn constant_model_regions_cover_the_space_with_one_cube() {
        // A single-class dataset trains a constant ensemble: one region
        // with an empty cube covering everything.
        let mut d = Dataset::new(2);
        d.push(vec![0, 1], true);
        d.push(vec![1, 1], true);
        let ensemble = AdaBoost::fit(&d, AdaBoostConfig::default());
        let regions = ensemble.decision_regions().expect("trivial diagram");
        assert_eq!(regions.len(), 1);
        assert!(regions[0].cube.is_empty());
        assert_eq!(regions[0].label, TreeLabel::True);
    }

    #[test]
    fn gbdt_encoding_matches_predictions() {
        use mlkit::gbdt::{GbdtConfig, GradientBoosting};
        for (rounds, depth) in [(1usize, 2usize), (4, 2), (8, 2), (6, 3)] {
            let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
            let model = GradientBoosting::fit(
                &d,
                GbdtConfig {
                    num_rounds: rounds,
                    max_depth: depth,
                    ..GbdtConfig::default()
                },
            );
            check_encoding_matches_predictions(&model);
        }
    }

    #[test]
    fn gbdt_decision_regions_partition_the_space() {
        use mlkit::gbdt::{GbdtConfig, GradientBoosting};
        for (rounds, depth) in [(1usize, 2usize), (4, 2), (8, 2), (6, 3)] {
            let d = dataset_from_fn(4, |x| x.iter().map(|&b| b as usize).sum::<usize>() >= 2);
            let model = GradientBoosting::fit(
                &d,
                GbdtConfig {
                    num_rounds: rounds,
                    max_depth: depth,
                    ..GbdtConfig::default()
                },
            );
            check_regions_partition(&model);
        }
    }

    #[test]
    fn gbdt_region_bound_is_a_typed_error() {
        use mlkit::gbdt::{GbdtConfig, GradientBoosting};
        let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
        let model = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 4,
                max_depth: 2,
                ..GbdtConfig::default()
            },
        );
        assert!(model.decision_regions().is_ok());
        let err = model
            .decision_regions_bounded(1)
            .expect_err("one node cannot hold a four-round score fold");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
            "unexpected error {err:?}"
        );
        let mut cnf = Cnf::new(4);
        let err = encode_gbdt_label(&model, &mut cnf, TreeLabel::True, 1)
            .expect_err("one node cannot hold the CNF score fold either");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
            "unexpected error {err:?}"
        );
    }

    /// The sifting acceptance scenario: a GBDT whose score-fold diagram
    /// outgrows the vote-node budget under the static (index) variable
    /// order, but fits it once the on-pressure sifting regroups the paired
    /// features. The label pairs feature `i` with feature `i + 6`, so the
    /// index order interleaves every pair — the classic order-sensitive
    /// family — while the trained trees test both halves.
    #[test]
    fn gbdt_budget_blown_by_static_order_succeeds_with_sifting() {
        use mlkit::gbdt::{GbdtConfig, GradientBoosting};
        let n = 12usize;
        let mut d = Dataset::new(n);
        for bits in 0u32..(1 << n) {
            let row: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let label = (0..n / 2)
                .filter(|&i| row[i] != 0 && row[i + n / 2] != 0)
                .count()
                % 2
                == 1;
            d.push(row, label);
        }
        let model = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 5,
                max_depth: 2,
                learning_rate: 0.5,
                ..GbdtConfig::default()
            },
        );
        // Empirically the static-order fold needs ~900 live nodes and the
        // sifted one fits under 400; 512 sits inside the window with slack
        // on both sides.
        let bound = 512;
        let err = gbdt_decision_regions(&model, bound, ReorderPolicy::Off)
            .expect_err("the static order must exhaust the budget");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 512, .. }),
            "unexpected error {err:?}"
        );
        let regions = gbdt_decision_regions(&model, bound, ReorderPolicy::OnPressure)
            .expect("sifting must fit the same budget");
        // The production path (always on-pressure) agrees under the same
        // budget, and the reordered regions still partition the space with
        // the predictor's labels.
        assert!(model.decision_regions_bounded(bound).is_ok());
        for bits in 0u32..(1 << n) {
            let features: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            let matching: Vec<&DecisionRegion> = regions
                .iter()
                .filter(|r| {
                    r.cube
                        .iter()
                        .all(|l| l.eval(features[l.var().index()] != 0))
                })
                .collect();
            assert_eq!(matching.len(), 1, "input {features:?} must hit one region");
            let expected = if model.predict(&features) {
                TreeLabel::True
            } else {
                TreeLabel::False
            };
            assert_eq!(matching[0].label, expected, "input {features:?}");
        }
    }

    /// The cube-budget twin of the sifting scenario above: a diagram whose
    /// *nodes* fit the budget comfortably but whose root-to-sink *paths* do
    /// not — region extraction, not the build, is what blows. The function
    /// is the disjunction of pairs `(x_i ∧ x_{i+6})` in the blocked index
    /// order (all left members before all right members): 189 nodes but 256
    /// paths, while sifting regroups the pairs down to 12 nodes and 127
    /// paths. At bound 200 the build succeeds under either policy and
    /// `cube_cover` fails under the static order; only the on-pressure
    /// sift-and-retry in `regions_from_diagram` rescues the extraction.
    #[test]
    fn cube_budget_blown_by_static_order_succeeds_with_sifting() {
        let k = 6u32;
        let bound = 200;
        let build = |policy| {
            let mut bdd = Bdd::with_node_budget(bound).with_reorder_policy(policy);
            let mut root = bdd.constant(false);
            for i in 0..k {
                let a = bdd.literal(i, true).expect("within budget");
                let b = bdd.literal(i + k, true).expect("within budget");
                let pair = bdd.and(a, b).expect("within budget");
                root = bdd.or(root, pair).expect("within budget");
            }
            (bdd, root)
        };

        let (mut bdd, root) = build(ReorderPolicy::Off);
        let err = regions_from_diagram(&mut bdd, root, ReorderPolicy::Off)
            .expect_err("256 static-order paths must exceed the 200-cube budget");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 200, .. }),
            "unexpected error {err:?}"
        );

        let (mut bdd, root) = build(ReorderPolicy::OnPressure);
        let regions = regions_from_diagram(&mut bdd, root, ReorderPolicy::OnPressure)
            .expect("sifting must fit the cover into the same budget");
        // The rescued regions still partition the space with the function's
        // own labels.
        let n = 2 * k as usize;
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|j| bits >> j & 1 == 1).collect();
            let matching: Vec<&DecisionRegion> = regions
                .iter()
                .filter(|r| r.cube.iter().all(|l| l.eval(assignment[l.var().index()])))
                .collect();
            assert_eq!(
                matching.len(),
                1,
                "input {assignment:?} must hit one region"
            );
            let expected = if (0..k as usize).any(|i| assignment[i] && assignment[i + k as usize]) {
                TreeLabel::True
            } else {
                TreeLabel::False
            };
            assert_eq!(matching[0].label, expected, "input {assignment:?}");
        }
    }

    #[test]
    fn vote_fold_fails_fast_even_when_the_diagram_collapses_to_a_constant() {
        // Pairwise-distinct vote states under a constant decide(): every
        // ITE collapses to a terminal, so the reduced diagram never grows —
        // the memo cap must trip instead of letting the fold enumerate all
        // 2^50 states.
        let mut bdd = Bdd::with_node_budget(64);
        let voters: Vec<NodeRef> = (0..50u32)
            .map(|v| bdd.literal(v, true).expect("within budget"))
            .collect();
        let err = bdd
            .vote_fold(
                &voters,
                0u64,
                &|_, state, fired| (state << 1) | u64::from(fired),
                &|_| true,
                64,
            )
            .expect_err("the state space is 2^50");
        assert!(
            matches!(err, BddError::TooManyNodes { bound: 64, .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn ensemble_region_bound_is_a_typed_error() {
        let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
        let forest = RandomForest::fit(
            &d,
            ForestConfig {
                num_trees: 5,
                seed: 2,
                ..ForestConfig::default()
            },
        );
        assert!(forest.decision_regions().is_ok());
        let err = forest
            .decision_regions_bounded(1)
            .expect_err("one node cannot hold a five-tree vote diagram");
        assert!(
            matches!(err, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn vote_circuit_bound_is_a_typed_error() {
        let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
        let ensemble = AdaBoost::fit(
            &d,
            AdaBoostConfig {
                num_rounds: 9,
                weak_depth: 2,
                seed: 2,
            },
        );
        let mut cnf = CnfEncodable::label_cnf(&ensemble, TreeLabel::True);
        // The unbounded encoding succeeds; a bound of one node cannot.
        assert!(ExactCounter::new().count(&cnf).is_some());
        cnf = Cnf::new(4);
        let err = encode_adaboost_label(&ensemble, &mut cnf, TreeLabel::True, 1)
            .expect_err("one node cannot hold a nine-round vote diagram");
        assert!(
            matches!(
                err,
                crate::error::EvalError::VoteCircuitTooLarge { nodes: 2, bound: 1 }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn try_encode_label_succeeds_within_the_default_bound() {
        let d = dataset_from_fn(4, |x| (x[0] ^ x[2]) == 1 || x[3] == 1);
        let ensemble = AdaBoost::fit(
            &d,
            AdaBoostConfig {
                num_rounds: 9,
                weak_depth: 2,
                seed: 2,
            },
        );
        let mut cnf = Cnf::new(4);
        assert_eq!(
            CnfEncodable::try_encode_label(&ensemble, &mut cnf, TreeLabel::True),
            Ok(())
        );
        assert_eq!(
            ExactCounter::new()
                .count(&CnfEncodable::try_label_cnf(&ensemble, TreeLabel::True).unwrap()),
            ExactCounter::new().count(&CnfEncodable::label_cnf(&ensemble, TreeLabel::True)),
        );
    }
}
