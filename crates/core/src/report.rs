//! Plain-text table formatting shared by the experiment harness binaries.
//!
//! The harness prints rows shaped like the paper's tables (fixed-width
//! columns, scientific notation for the huge model counts, "-" for
//! time-outs), so a reader can line the output up against the publication.

use std::fmt::Write as _;

/// Formats a model count the way the paper's Table 8 does, e.g. `7.86E+05`.
pub fn format_count(count: u128) -> String {
    if count == 0 {
        return "0".to_string();
    }
    if count < 100_000 {
        return count.to_string();
    }
    let value = count as f64;
    let exponent = value.log10().floor() as i32;
    let mantissa = value / 10f64.powi(exponent);
    format!("{mantissa:.2}E+{exponent:02}")
}

/// Formats a metric with the paper's four decimal places, or `-` for a
/// missing (timed-out) value.
pub fn format_metric(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// Formats the counter-guarantee cell of a table row: `exact` for exact
/// counts, an `A` marker followed by the (ε, δ) parameters for rows whose
/// counts are approximate (whether by an approximate backend or the
/// degradation ladder), `-` when the row timed out and carries no counts
/// at all.
pub fn format_count_guarantee(info: Option<&crate::accmc::AccMcResult>) -> String {
    match info {
        None => "-".to_string(),
        Some(r) => match r.approx {
            None => "exact".to_string(),
            Some(a) => format!("A ε≤{:.2} δ≤{:.2}", a.epsilon, a.delta),
        },
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns. Widths are measured in
    /// characters, not bytes, so cells with non-ASCII content (the ε/δ
    /// guarantees) stay aligned.
    pub fn render(&self) -> String {
        let char_len = |s: &String| s.chars().count();
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(char_len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(char_len(cell));
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", row[i], width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(format_count(0), "0");
        assert_eq!(format_count(56_723), "56723");
        assert_eq!(format_count(786_000), "7.86E+05");
        assert_eq!(format_count(18_400_000_000_000_000_000), "1.84E+19");
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(format_metric(Some(0.99567)), "0.9957");
        assert_eq!(format_metric(None), "-");
    }

    #[test]
    fn count_guarantee_formatting() {
        use crate::accmc::{AccMcResult, ApproxInfo, SpaceCounts};
        assert_eq!(format_count_guarantee(None), "-");
        let counts = SpaceCounts::default();
        let mut result = AccMcResult {
            counts,
            metrics: counts.metrics(),
            counting_time: std::time::Duration::ZERO,
            approx: None,
        };
        assert_eq!(format_count_guarantee(Some(&result)), "exact");
        result.approx = Some(ApproxInfo {
            epsilon: 0.8,
            delta: 0.2,
        });
        assert_eq!(format_count_guarantee(Some(&result)), "A ε≤0.80 δ≤0.20");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Property", "Accuracy"]);
        t.push_row(vec!["Reflexive", "1.0000"]);
        t.push_row(vec!["PartialOrder", "0.9675"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Property"));
        assert!(lines[2].starts_with("Reflexive"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn unicode_cells_stay_aligned() {
        let mut t = TextTable::new(vec!["Property", "Count"]);
        t.push_row(vec!["Reflexive", "A ε≤0.40 δ≤0.20"]);
        t.push_row(vec!["Function", "exact"]);
        let s = t.render();
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert_eq!(widths[0], widths[1], "header and rule share the width");
        assert_eq!(widths[1], widths[2], "rule and first row share the width");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }
}
