//! Versioned on-disk persistence for count caches.
//!
//! A [`CachedCounter`](crate::counter::CachedCounter) memoizes count
//! outcomes keyed on 128-bit structural CNF fingerprints — but only within
//! one process. Table batches re-run across processes (different tables,
//! re-runs with more model families, CI) repeat the expensive φ / ¬φ
//! counts from scratch. This module serializes the cache to a small
//! versioned text file so a later run can start warm:
//!
//! ```text
//! mcml-count-cache v2 backend=exact
//! 0123456789abcdef0123456789abcdef E 42
//! fedcba9876543210fedcba9876543210 A 1280 0.8 0.2
//! ```
//!
//! One line per entry: the fingerprint in hex, a tag (`E`xact /
//! `A`pproximate) and the outcome fields. [`CountOutcome::BudgetExhausted`]
//! entries are **not** persisted — a later run may carry a larger budget
//! and should retry them.
//!
//! Caches are **per backend configuration**: the header records the tag of
//! the backend that produced the outcomes, loading verifies it against the
//! requesting run's tag, and [`cache_file_name`] spells the tag into the
//! file name. Callers pass
//! [`CounterBackend::cache_tag`](crate::backend::CounterBackend::cache_tag),
//! which for the approximate backend includes its `(ε, δ, seed)`
//! configuration — so a cache written by `--approx` can neither seed an
//! exact run nor serve loose estimates to a run demanding a tighter
//! tolerance. Loading rejects unknown versions, backend/configuration
//! mismatches and malformed lines with
//! [`std::io::ErrorKind::InvalidData`], so a stale or foreign cache file
//! surfaces as an error instead of silently corrupting counts (callers
//! typically warn and start cold).

use crate::counter::CountOutcome;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Schema version of the count-cache store. The circuit artifact store
/// carries its own [`crate::artifact::ARTIFACT_VERSION`], so bumping one
/// store's layout never invalidates the other's files. Both file names and
/// headers spell their version, so stale files fail the header check
/// instead of being misread. v2 switched the backend field from the bare
/// backend name to its configuration-carrying cache tag (the approximate
/// backend's `(ε, δ, seed)`), retiring v1 files whose `approx` outcomes
/// were reusable across tolerances.
pub const STORE_VERSION: u32 = 2;

/// The on-disk file name for a store of `kind` produced by `backend`, e.g.
/// `counts.exact.v2.cache` — kind, backend tag and schema version all
/// spelled out so differently-configured runs never collide on disk.
pub fn store_file_name(kind: &str, backend: &str, ext: &str) -> String {
    format!("{kind}.{backend}.v{STORE_VERSION}.{ext}")
}

/// The header line identifying a store's format, version and producing
/// backend, e.g. `mcml-count-cache v2 backend=exact`. Every store writes
/// it first and verifies it (string-equal) on load.
pub fn store_header(kind: &str, backend: &str) -> String {
    format!("mcml-{kind} v{STORE_VERSION} backend={backend}")
}

/// The count-cache file name for a backend tag under `--cache-dir` (e.g.
/// `counts.exact.v2.cache`), so differently-configured runs never collide.
pub fn cache_file_name(backend: &str) -> String {
    store_file_name("counts", backend, "cache")
}

/// Writes the outcomes produced by `backend` to `path`, creating parent
/// directories as needed, and returns the number of entries written.
/// Budget-exhausted outcomes are skipped (they should be retried).
pub fn save_outcomes(
    path: &Path,
    backend: &str,
    entries: &HashMap<u128, CountOutcome>,
) -> io::Result<usize> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{}", store_header("count-cache", backend))?;
    // Deterministic order keeps the file diff-friendly.
    let mut keys: Vec<&u128> = entries.keys().collect();
    keys.sort();
    let mut written = 0usize;
    for key in keys {
        match entries[key] {
            CountOutcome::Exact(value) => writeln!(out, "{key:032x} E {value}")?,
            CountOutcome::Approx {
                estimate,
                epsilon,
                delta,
            } => writeln!(out, "{key:032x} A {estimate} {epsilon} {delta}")?,
            CountOutcome::BudgetExhausted { .. } => continue,
        }
        written += 1;
    }
    out.flush()?;
    Ok(written)
}

/// Loads a cache file previously written by [`save_outcomes`], verifying it
/// was produced by `expected_backend`.
pub fn load_outcomes(
    path: &Path,
    expected_backend: &str,
) -> io::Result<HashMap<u128, CountOutcome>> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut lines = reader.lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    let expected = store_header("count-cache", expected_backend);
    if header != expected {
        return Err(invalid(format!(
            "unsupported cache header {header:?} (expected {expected:?})"
        )));
    }
    let mut entries = HashMap::new();
    for (number, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let key = fields
            .next()
            .and_then(|f| u128::from_str_radix(f, 16).ok())
            .ok_or_else(|| invalid(format!("line {}: bad fingerprint", number + 2)))?;
        let outcome = match fields.next() {
            Some("E") => CountOutcome::Exact(parse(fields.next(), number)?),
            Some("A") => CountOutcome::Approx {
                estimate: parse(fields.next(), number)?,
                epsilon: parse(fields.next(), number)?,
                delta: parse(fields.next(), number)?,
            },
            tag => return Err(invalid(format!("line {}: bad tag {tag:?}", number + 2))),
        };
        if fields.next().is_some() {
            return Err(invalid(format!("line {}: trailing fields", number + 2)));
        }
        entries.insert(key, outcome);
    }
    Ok(entries)
}

/// Wraps a store-format violation in the `InvalidData` error every mcml
/// store loader reports, so callers can uniformly warn-and-start-cold.
pub(crate) fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn parse<T: std::str::FromStr>(field: Option<&str>, number: usize) -> io::Result<T> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| invalid(format!("line {}: bad outcome field", number + 2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CachedCounter, ModelCounter};
    use modelcount::exact::ExactCounter;
    use satkit::cnf::{Cnf, Lit};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mcml-persist-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn store_naming_is_pinned() {
        // v2: the backend field carries the configuration-aware cache tag.
        // v1 files (whose name and header spell v1) fail the string-equal
        // header check below and are started cold, never misread.
        assert_eq!(cache_file_name("exact"), "counts.exact.v2.cache");
        assert_eq!(
            store_header("count-cache", "exact"),
            "mcml-count-cache v2 backend=exact"
        );
    }

    #[test]
    fn approx_cache_is_rejected_across_configurations() {
        use crate::backend::CounterBackend;
        use modelcount::approx::ApproxConfig;

        // A cache saved under the default (ε, δ, seed) must never be served
        // to a run demanding a tighter tolerance: the tags differ, so both
        // the file name and the header check reject it.
        let loose = CounterBackend::approx().cache_tag();
        let tight = CounterBackend::approx_with(ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        })
        .cache_tag();
        assert_ne!(cache_file_name(&loose), cache_file_name(&tight));

        let path = temp_path("approx-tolerance.cache");
        let mut entries = HashMap::new();
        entries.insert(
            1u128,
            CountOutcome::Approx {
                estimate: 100,
                epsilon: 0.8,
                delta: 0.2,
            },
        );
        save_outcomes(&path, &loose, &entries).expect("save");
        let err = load_outcomes(&path, &tight).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(load_outcomes(&path, &loose).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trips_exact_and_approx_outcomes() {
        let mut entries = HashMap::new();
        entries.insert(7u128, CountOutcome::Exact(512));
        entries.insert(
            u128::MAX,
            CountOutcome::Approx {
                estimate: 1280,
                epsilon: 0.8,
                delta: 0.2,
            },
        );
        entries.insert(9u128, CountOutcome::BudgetExhausted { nodes_used: 3 });
        let path = temp_path("roundtrip.cache");
        let written = save_outcomes(&path, "exact", &entries).expect("save");
        assert_eq!(written, 2, "budget-exhausted entries are not persisted");
        let loaded = load_outcomes(&path, "exact").expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[&7], CountOutcome::Exact(512));
        assert_eq!(
            loaded[&u128::MAX],
            CountOutcome::Approx {
                estimate: 1280,
                epsilon: 0.8,
                delta: 0.2
            }
        );
    }

    #[test]
    fn version_mismatch_is_invalid_data() {
        let path = temp_path("badversion.cache");
        std::fs::write(&path, "mcml-count-cache v999 backend=exact\n").expect("write");
        let err = load_outcomes(&path, "exact").expect_err("must reject");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn backend_mismatch_is_invalid_data() {
        // A cache produced by the approximate backend must never seed an
        // exact run (and vice versa).
        let path = temp_path("foreign-backend.cache");
        let mut entries = HashMap::new();
        entries.insert(
            1u128,
            CountOutcome::Approx {
                estimate: 100,
                epsilon: 0.8,
                delta: 0.2,
            },
        );
        save_outcomes(&path, "approx", &entries).expect("save");
        let err = load_outcomes(&path, "exact").expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(load_outcomes(&path, "approx").is_ok());
        std::fs::remove_file(&path).ok();
        assert_ne!(cache_file_name("exact"), cache_file_name("approx"));
    }

    #[test]
    fn malformed_line_is_invalid_data() {
        let path = temp_path("malformed.cache");
        let header = store_header("count-cache", "exact");
        std::fs::write(&path, format!("{header}\nnot-hex E 5\n")).expect("write");
        let err = load_outcomes(&path, "exact").expect_err("must reject");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn cache_survives_a_process_boundary_simulation() {
        // First "process": count, snapshot, save.
        let path = temp_path("cross-process.cache");
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let first = CachedCounter::new(ExactCounter::new());
        assert_eq!(first.count(&cnf).value(), Some(6));
        save_outcomes(&path, "exact", &first.snapshot()).expect("save");

        // Second "process": preload and count without touching the inner
        // counter.
        let second = CachedCounter::new(ExactCounter::with_node_budget(0));
        second.preload(load_outcomes(&path, "exact").expect("load"));
        std::fs::remove_file(&path).ok();
        assert_eq!(
            second.count(&cnf).value(),
            Some(6),
            "a zero-budget inner counter can only answer from the preload"
        );
        assert_eq!(second.stats().misses, 0);
    }
}
