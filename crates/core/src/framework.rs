//! The end-to-end MCML experiment pipeline.
//!
//! One [`Experiment`] reproduces one row of the paper's Tables 3, 5, 6 or 7:
//! build the property dataset (with the configured symmetry-breaking
//! setting), split it, train a decision tree, evaluate it traditionally on
//! the held-out test set, and then evaluate it against the entire bounded
//! input space with [`AccMc`] using a ground truth that may carry a
//! *different* symmetry-breaking setting (the mismatch scenarios of RQ4).
//!
//! [`evaluate_all_models`] covers Tables 2 and 4: it trains all six model
//! families on the same split and reports their test-set metrics.

use crate::accmc::{AccMc, AccMcResult};
use crate::backend::CounterBackend;
use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::metrics::{BinaryMetrics, ConfusionMatrix};
use mlkit::mlp::{Mlp, MlpConfig};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use mlkit::Classifier;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};

/// Configuration of one decision-tree experiment (one table row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// The relational property under study.
    pub property: Property,
    /// Scope (number of atoms).
    pub scope: usize,
    /// Symmetry breaking used to generate the training/test datasets.
    pub data_symmetry: SymmetryBreaking,
    /// Symmetry breaking constraining the ground truth φ for the whole-space
    /// evaluation (may differ from `data_symmetry`, reproducing RQ4).
    pub eval_symmetry: SymmetryBreaking,
    /// Train:test split ratio.
    pub ratio: SplitRatio,
    /// Cap on the number of positive samples enumerated.
    pub max_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration with the defaults shared by the AccMC tables.
    ///
    /// The paper trains the Table 3/5/6/7 trees on 10% of datasets holding
    /// ≥20 000 samples, i.e. on roughly 2 000 training rows. At this
    /// reproduction's reduced scopes the whole dataset holds a few hundred
    /// rows, so a 10:90 split would leave only tens of training samples; the
    /// default here is a 50:50 split, which puts the *absolute* training-set
    /// size back in a comparable regime while keeping a large held-out set.
    pub fn new(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            property,
            scope,
            data_symmetry: SymmetryBreaking::Transpositions,
            eval_symmetry: SymmetryBreaking::Transpositions,
            ratio: SplitRatio::new(50),
            max_positive: 2_000,
            seed: 0,
        }
    }

    /// Table 3: data with symmetry breaking, φ constrained by the same
    /// symmetry breaking.
    pub fn table3(property: Property, scope: usize) -> Self {
        ExperimentConfig::new(property, scope)
    }

    /// Table 5: neither the data nor φ use symmetry breaking.
    pub fn table5(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            data_symmetry: SymmetryBreaking::None,
            eval_symmetry: SymmetryBreaking::None,
            ..ExperimentConfig::new(property, scope)
        }
    }

    /// Table 6: data with symmetry breaking, φ unconstrained (mismatch 1).
    pub fn table6(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            eval_symmetry: SymmetryBreaking::None,
            ..ExperimentConfig::new(property, scope)
        }
    }

    /// Table 7: data without symmetry breaking, φ constrained (mismatch 2).
    pub fn table7(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            data_symmetry: SymmetryBreaking::None,
            eval_symmetry: SymmetryBreaking::Transpositions,
            ..ExperimentConfig::new(property, scope)
        }
    }
}

/// Result of one decision-tree experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Traditional metrics on the held-out test set.
    pub test_metrics: BinaryMetrics,
    /// Whole-space AccMC result (`None` when the counter's budget ran out —
    /// the paper's "-" cells).
    pub whole_space: Option<AccMcResult>,
    /// Number of leaves of the trained tree.
    pub tree_leaves: usize,
    /// Depth of the trained tree.
    pub tree_depth: usize,
    /// Total size of the balanced dataset.
    pub dataset_size: usize,
    /// Number of training samples.
    pub train_size: usize,
}

/// One decision-tree experiment (dataset → train → test metrics → AccMC).
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates the experiment.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The experiment's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the experiment with the given counting backend.
    pub fn run(&self, backend: &CounterBackend) -> ExperimentResult {
        let c = &self.config;
        let dataset = DatasetBuilder::new().build(
            DatasetConfig {
                property: c.property,
                scope: c.scope,
                symmetry: c.data_symmetry,
                max_positive: c.max_positive,
                seed: c.seed,
            },
        );
        let (train, test) = dataset.split(c.ratio);
        let tree = DecisionTree::fit(&train, TreeConfig::default());
        let test_metrics = evaluate_classifier(&tree, &test);

        let ground_truth = translate_to_cnf(
            &c.property.spec(),
            TranslateOptions::new(c.scope).with_symmetry(c.eval_symmetry),
        );
        let whole_space = AccMc::new(backend).evaluate(&ground_truth, &tree);

        ExperimentResult {
            config: *c,
            test_metrics,
            whole_space,
            tree_leaves: tree.num_leaves(),
            tree_depth: tree.depth(),
            dataset_size: dataset.dataset.len(),
            train_size: train.len(),
        }
    }

    /// Runs only the training/test part and returns the trained tree along
    /// with its test metrics (used by the DiffMC and class-ratio harnesses).
    pub fn train_tree(&self, tree_config: TreeConfig) -> (DecisionTree, BinaryMetrics) {
        let c = &self.config;
        let dataset = DatasetBuilder::new().build(DatasetConfig {
            property: c.property,
            scope: c.scope,
            symmetry: c.data_symmetry,
            max_positive: c.max_positive,
            seed: c.seed,
        });
        let (train, test) = dataset.split(c.ratio);
        let tree = DecisionTree::fit(&train, tree_config);
        let metrics = evaluate_classifier(&tree, &test);
        (tree, metrics)
    }
}

/// Evaluates a trained classifier on a dataset with the traditional metrics.
pub fn evaluate_classifier<C: Classifier + ?Sized>(model: &C, data: &Dataset) -> BinaryMetrics {
    let predictions: Vec<bool> = data.features().iter().map(|x| model.predict(x)).collect();
    ConfusionMatrix::from_predictions(data.labels(), &predictions).metrics()
}

/// Test-set performance of one model family (one row of Tables 2 / 4).
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Short model name (DT, RFT, GBDT, ABT, SVM, MLP).
    pub model: &'static str,
    /// Metrics on the test set.
    pub metrics: BinaryMetrics,
}

/// Trains all six model families of the study on `train` and evaluates them
/// on `test`, in the order the paper's tables list them.
pub fn evaluate_all_models(train: &Dataset, test: &Dataset, seed: u64) -> Vec<ModelReport> {
    let mut reports = Vec::with_capacity(6);

    let dt = DecisionTree::fit(train, TreeConfig { seed, ..TreeConfig::default() });
    reports.push(ModelReport {
        model: dt.model_name(),
        metrics: evaluate_classifier(&dt, test),
    });

    let rft = RandomForest::fit(train, ForestConfig { seed, num_trees: 30, ..ForestConfig::default() });
    reports.push(ModelReport {
        model: rft.model_name(),
        metrics: evaluate_classifier(&rft, test),
    });

    let gbdt = GradientBoosting::fit(train, GbdtConfig { num_rounds: 60, ..GbdtConfig::default() });
    reports.push(ModelReport {
        model: gbdt.model_name(),
        metrics: evaluate_classifier(&gbdt, test),
    });

    let abt = AdaBoost::fit(train, AdaBoostConfig { seed, num_rounds: 40, weak_depth: 2, ..AdaBoostConfig::default() });
    reports.push(ModelReport {
        model: abt.model_name(),
        metrics: evaluate_classifier(&abt, test),
    });

    let svm = LinearSvm::fit(train, SvmConfig { seed, ..SvmConfig::default() });
    reports.push(ModelReport {
        model: svm.model_name(),
        metrics: evaluate_classifier(&svm, test),
    });

    let mlp = Mlp::fit(train, MlpConfig { seed, epochs: 40, ..MlpConfig::default() });
    reports.push(ModelReport {
        model: mlp.model_name(),
        metrics: evaluate_classifier(&mlp, test),
    });

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflexive_experiment_is_perfect_everywhere() {
        // Reflexive only depends on the diagonal; a tree learns it exactly
        // and both the test-set and the whole-space metrics are 1.0.
        let config = ExperimentConfig {
            ratio: SplitRatio::new(50),
            ..ExperimentConfig::table5(Property::Reflexive, 3)
        };
        let backend = CounterBackend::exact();
        let result = Experiment::new(config).run(&backend);
        assert!(result.test_metrics.accuracy >= 0.99);
        let ws = result.whole_space.expect("no budget configured");
        assert_eq!(ws.metrics.precision, 1.0);
        assert_eq!(ws.metrics.recall, 1.0);
        assert_eq!(ws.counts.total(), 512);
    }

    #[test]
    fn sparse_property_shows_precision_collapse() {
        // The central finding of the paper: a tree that looks excellent on
        // the balanced test set has far lower precision over the whole space,
        // because the true positive class is a tiny fraction of the space.
        let config = ExperimentConfig {
            ratio: SplitRatio::new(50),
            ..ExperimentConfig::table5(Property::PartialOrder, 4)
        };
        let backend = CounterBackend::exact();
        let result = Experiment::new(config).run(&backend);
        assert!(result.test_metrics.accuracy >= 0.80);
        let ws = result.whole_space.expect("no budget configured");
        assert_eq!(ws.counts.total(), 1u128 << 16);
        assert!(
            ws.metrics.precision < result.test_metrics.precision,
            "whole-space precision {} should be below test precision {}",
            ws.metrics.precision,
            result.test_metrics.precision
        );
    }

    #[test]
    fn mismatch_configs_carry_different_symmetries() {
        let t6 = ExperimentConfig::table6(Property::Connex, 4);
        assert_eq!(t6.data_symmetry, SymmetryBreaking::Transpositions);
        assert_eq!(t6.eval_symmetry, SymmetryBreaking::None);
        let t7 = ExperimentConfig::table7(Property::Connex, 4);
        assert_eq!(t7.data_symmetry, SymmetryBreaking::None);
        assert_eq!(t7.eval_symmetry, SymmetryBreaking::Transpositions);
    }

    #[test]
    fn all_six_models_report_metrics() {
        let dataset = DatasetBuilder::new().build(
            DatasetConfig::new(Property::Function, 3)
                .without_symmetry()
                .with_max_positive(200),
        );
        let (train, test) = dataset.split(SplitRatio::new(75));
        let reports = evaluate_all_models(&train, &test, 1);
        let names: Vec<&str> = reports.iter().map(|r| r.model).collect();
        assert_eq!(names, vec!["DT", "RFT", "GBDT", "ABT", "SVM", "MLP"]);
        for r in &reports {
            assert!(
                r.metrics.accuracy >= 0.5,
                "{} no better than chance: {}",
                r.model,
                r.metrics.accuracy
            );
        }
    }

    #[test]
    fn train_tree_returns_usable_tree() {
        let config = ExperimentConfig {
            ratio: SplitRatio::new(50),
            ..ExperimentConfig::table3(Property::Irreflexive, 4)
        };
        let (tree, metrics) = Experiment::new(config).train_tree(TreeConfig::default());
        assert!(tree.num_leaves() >= 1);
        assert!(metrics.accuracy > 0.8);
    }
}
