//! The end-to-end MCML experiment pipeline.
//!
//! One [`Experiment`] reproduces one row of the paper's Tables 3, 5, 6 or 7:
//! build the property dataset (with the configured symmetry-breaking
//! setting), split it, train a model, evaluate it traditionally on the
//! held-out test set, and then evaluate it against the entire bounded input
//! space with [`AccMc`] using a ground truth that may carry a *different*
//! symmetry-breaking setting (the mismatch scenarios of RQ4).
//!
//! The batch-oriented [`Runner`] supersedes driving [`Experiment`] in a
//! loop: it deduplicates dataset construction and ground-truth translation
//! across rows, trains any subset of the [`ModelFamily`] encodable families
//! per row, executes rows in parallel with `std::thread::scope`, and
//! surfaces malformed rows as typed [`EvalError`]s instead of panicking.
//! Rows are scheduled as *cells* — `(property × scope × family × config)`
//! units ordered largest-estimated-cost-first over work-stealing deques —
//! and every finished cell can be streamed out through a [`RowSink`] the
//! moment it lands ([`Runner::run_stream`]), or collected with a typed
//! per-cell error list ([`Runner::run_collect`]) so one bad row no longer
//! discards the rest of the batch.
//!
//! [`evaluate_all_models`] covers Tables 2 and 4: it trains all six model
//! families on the same split and reports their test-set metrics.

use crate::accmc::{AccMc, AccMcResult, CountingEngine};
use crate::artifact::{CircuitArtifact, RegionCover};
use crate::counter::{cnf_fingerprint, CompiledCounter, ModelCounter, QueryCounter};
use crate::encode::CnfEncodable;
use crate::error::EvalError;
use crate::fallback::FallbackPolicy;
use datagen::builder::{DatasetBuilder, DatasetConfig, PropertyDataset, SplitRatio};
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::metrics::{BinaryMetrics, ConfusionMatrix};
use mlkit::mlp::{Mlp, MlpConfig};
use mlkit::quant::{QuantizedMlp, QuantizedSvm, DEFAULT_QUANT_BITS};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use mlkit::Classifier;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, GroundTruth, TranslateOptions};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of one whole-space experiment (one table row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExperimentConfig {
    /// The relational property under study.
    pub property: Property,
    /// Scope (number of atoms).
    pub scope: usize,
    /// Symmetry breaking used to generate the training/test datasets.
    pub data_symmetry: SymmetryBreaking,
    /// Symmetry breaking constraining the ground truth φ for the whole-space
    /// evaluation (may differ from `data_symmetry`, reproducing RQ4).
    pub eval_symmetry: SymmetryBreaking,
    /// Train:test split ratio.
    pub ratio: SplitRatio,
    /// Cap on the number of positive samples enumerated.
    pub max_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration with the defaults shared by the AccMC tables.
    ///
    /// The paper trains the Table 3/5/6/7 trees on 10% of datasets holding
    /// ≥20 000 samples, i.e. on roughly 2 000 training rows. At this
    /// reproduction's reduced scopes the whole dataset holds a few hundred
    /// rows, so a 10:90 split would leave only tens of training samples; the
    /// default here is a 50:50 split, which puts the *absolute* training-set
    /// size back in a comparable regime while keeping a large held-out set.
    pub fn new(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            property,
            scope,
            data_symmetry: SymmetryBreaking::Transpositions,
            eval_symmetry: SymmetryBreaking::Transpositions,
            ratio: SplitRatio::new(50),
            max_positive: 2_000,
            seed: 0,
        }
    }

    /// Table 3: data with symmetry breaking, φ constrained by the same
    /// symmetry breaking.
    pub fn table3(property: Property, scope: usize) -> Self {
        ExperimentConfig::new(property, scope)
    }

    /// Table 5: neither the data nor φ use symmetry breaking.
    pub fn table5(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            data_symmetry: SymmetryBreaking::None,
            eval_symmetry: SymmetryBreaking::None,
            ..ExperimentConfig::new(property, scope)
        }
    }

    /// Table 6: data with symmetry breaking, φ unconstrained (mismatch 1).
    pub fn table6(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            eval_symmetry: SymmetryBreaking::None,
            ..ExperimentConfig::new(property, scope)
        }
    }

    /// Table 7: data without symmetry breaking, φ constrained (mismatch 2).
    pub fn table7(property: Property, scope: usize) -> Self {
        ExperimentConfig {
            data_symmetry: SymmetryBreaking::None,
            eval_symmetry: SymmetryBreaking::Transpositions,
            ..ExperimentConfig::new(property, scope)
        }
    }

    fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig {
            property: self.property,
            scope: self.scope,
            symmetry: self.data_symmetry,
            max_positive: self.max_positive,
            seed: self.seed,
        }
    }

    fn ground_truth_key(&self) -> GroundTruthKey {
        (self.property, self.scope, self.eval_symmetry)
    }

    fn translate_ground_truth(&self) -> GroundTruth {
        translate_to_cnf(
            &self.property.spec(),
            TranslateOptions::new(self.scope).with_symmetry(self.eval_symmetry),
        )
    }
}

/// Key identifying one distinct ground-truth translation in a batch.
type GroundTruthKey = (Property, usize, SymmetryBreaking);

/// Result of one decision-tree experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Traditional metrics on the held-out test set.
    pub test_metrics: BinaryMetrics,
    /// Whole-space AccMC result (`None` when the counter's budget ran out —
    /// the paper's "-" cells).
    pub whole_space: Option<AccMcResult>,
    /// Number of leaves of the trained tree.
    pub tree_leaves: usize,
    /// Depth of the trained tree.
    pub tree_depth: usize,
    /// Total size of the balanced dataset.
    pub dataset_size: usize,
    /// Number of training samples.
    pub train_size: usize,
}

/// One decision-tree experiment (dataset → train → test metrics → AccMC).
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates the experiment.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The experiment's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the experiment with the given counting backend (classic
    /// engine).
    pub fn run<C: QueryCounter + ?Sized>(&self, backend: &C) -> ExperimentResult {
        self.run_with_engine(backend, CountingEngine::Classic)
    }

    /// Runs the experiment with an explicit [`CountingEngine`].
    pub fn run_with_engine<C: QueryCounter + ?Sized>(
        &self,
        backend: &C,
        engine: CountingEngine,
    ) -> ExperimentResult {
        let dataset = DatasetBuilder::new().build(self.config.dataset_config());
        let ground_truth = self.config.translate_ground_truth();
        run_dt_row(
            &self.config,
            &dataset,
            &ground_truth,
            backend,
            engine,
            crate::encode::MAX_VOTE_NODES,
            FallbackPolicy::default(),
        )
        .expect("dataset and ground truth share the scope by construction")
    }

    /// Runs only the training/test part and returns the trained tree along
    /// with its test metrics (used by the DiffMC and class-ratio harnesses).
    pub fn train_tree(&self, tree_config: TreeConfig) -> (DecisionTree, BinaryMetrics) {
        let dataset = DatasetBuilder::new().build(self.config.dataset_config());
        let (train, test) = dataset.split(self.config.ratio);
        let tree = DecisionTree::fit(&train, tree_config);
        let metrics = evaluate_classifier(&tree, &test);
        (tree, metrics)
    }
}

/// Shared per-row pipeline: split, train a default decision tree, evaluate
/// on the test set and against the whole space. Both the sequential
/// [`Experiment::run`] and the parallel [`Runner`] call this, which is what
/// guarantees their metrics are identical.
#[allow(clippy::too_many_arguments)]
fn run_dt_row<C: QueryCounter + ?Sized>(
    config: &ExperimentConfig,
    dataset: &PropertyDataset,
    ground_truth: &GroundTruth,
    backend: &C,
    engine: CountingEngine,
    vote_node_bound: usize,
    fallback: FallbackPolicy,
) -> Result<ExperimentResult, EvalError> {
    let (train, test) = dataset.split(config.ratio);
    let tree = DecisionTree::fit(&train, TreeConfig::default());
    let test_metrics = evaluate_classifier(&tree, &test);
    let whole_space = AccMc::with_engine(backend, engine)
        .vote_node_bound(vote_node_bound)
        .fallback(fallback)
        .evaluate(ground_truth, &tree)?;
    Ok(ExperimentResult {
        config: *config,
        test_metrics,
        whole_space,
        tree_leaves: tree.num_leaves(),
        tree_depth: tree.depth(),
        dataset_size: dataset.dataset.len(),
        train_size: train.len(),
    })
}

/// The model families eligible for whole-space (CNF-encodable) evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// CART decision tree.
    Dt,
    /// Random forest (majority vote).
    Rft,
    /// Gradient-boosted regression trees (additive score).
    Gbdt,
    /// AdaBoost over depth-limited stumps (weighted vote).
    Abt,
    /// Binarized multi-layer perceptron: trained as a float ReLU network,
    /// then post-training quantized to sign activations and fixed-point
    /// integer weights ([`QuantizedMlp`]) so every hidden unit becomes a
    /// pseudo-Boolean threshold over the input literals.
    Mlp,
    /// Linear SVM quantized to integer weights ([`QuantizedSvm`]): a single
    /// pseudo-Boolean threshold over the input literals.
    Svm,
}

impl ModelFamily {
    /// All encodable families, in the order the paper's tables list the
    /// tree ensembles (DT, RFT, GBDT, ABT) followed by the quantized
    /// neural/margin families (MLP, SVM). Returned as a slice so call sites
    /// iterate the roster instead of pattern-matching a fixed arity —
    /// adding a family extends every `all()` consumer automatically.
    pub fn all() -> &'static [ModelFamily] {
        &[
            ModelFamily::Dt,
            ModelFamily::Rft,
            ModelFamily::Gbdt,
            ModelFamily::Abt,
            ModelFamily::Mlp,
            ModelFamily::Svm,
        ]
    }

    /// The paper's short name (`DT`, `RFT`, `GBDT`, `ABT`, `MLP`, `SVM`).
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::Dt => "DT",
            ModelFamily::Rft => "RFT",
            ModelFamily::Gbdt => "GBDT",
            ModelFamily::Abt => "ABT",
            ModelFamily::Mlp => "MLP",
            ModelFamily::Svm => "SVM",
        }
    }

    /// Parses a case-insensitive family name (`"dt"`, `"rft"`, `"gbdt"`,
    /// `"abt"`, `"mlp"`, `"svm"`).
    pub fn parse(name: &str) -> Option<ModelFamily> {
        match name.to_ascii_lowercase().as_str() {
            "dt" => Some(ModelFamily::Dt),
            "rft" => Some(ModelFamily::Rft),
            "gbdt" => Some(ModelFamily::Gbdt),
            "abt" => Some(ModelFamily::Abt),
            "mlp" => Some(ModelFamily::Mlp),
            "svm" => Some(ModelFamily::Svm),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A model trained by the [`Runner`] for one row.
enum TrainedModel {
    Dt(DecisionTree),
    Rft(RandomForest),
    Gbdt(GradientBoosting),
    Abt(AdaBoost),
    Mlp(QuantizedMlp),
    Svm(QuantizedSvm),
}

impl TrainedModel {
    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            TrainedModel::Dt(m) => m,
            TrainedModel::Rft(m) => m,
            TrainedModel::Gbdt(m) => m,
            TrainedModel::Abt(m) => m,
            TrainedModel::Mlp(m) => m,
            TrainedModel::Svm(m) => m,
        }
    }

    fn as_encodable(&self) -> &dyn CnfEncodable {
        match self {
            TrainedModel::Dt(m) => m,
            TrainedModel::Rft(m) => m,
            TrainedModel::Gbdt(m) => m,
            TrainedModel::Abt(m) => m,
            TrainedModel::Mlp(m) => m,
            TrainedModel::Svm(m) => m,
        }
    }
}

/// One row produced by a [`Runner`] batch: a (config, family) pair with its
/// test-set and whole-space metrics.
#[derive(Debug, Clone)]
pub struct RunnerRow {
    /// The experiment configuration of the row.
    pub config: ExperimentConfig,
    /// The model family trained and evaluated.
    pub family: ModelFamily,
    /// Traditional metrics on the held-out test set.
    pub test_metrics: BinaryMetrics,
    /// Whole-space AccMC result (`None` when the counter's budget ran out).
    pub whole_space: Option<AccMcResult>,
    /// Total size of the balanced dataset.
    pub dataset_size: usize,
    /// Number of training samples.
    pub train_size: usize,
}

/// A typed per-cell failure from a batch: which `(config, family)` cell
/// went wrong and why. [`Runner::run_collect`] and [`Runner::run_stream`]
/// report these alongside the rows that did land, instead of discarding
/// the whole batch at the first error the way [`Runner::run`] does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The experiment configuration of the failed cell.
    pub config: ExperimentConfig,
    /// The model family of the failed cell.
    pub family: ModelFamily,
    /// What went wrong.
    pub error: EvalError,
}

/// Partial outcome of a batch: every row that landed plus the typed error
/// list, both in job order (`configs` outer, families inner). A stopped
/// stream simply omits the cells that were never claimed.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Cells that completed successfully.
    pub rows: Vec<RunnerRow>,
    /// Cells that failed with a typed error.
    pub errors: Vec<CellError>,
}

/// What a [`RowSink`] tells the scheduler after absorbing a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkDecision {
    /// Keep scheduling the remaining cells.
    Continue,
    /// Claim no further cells. Cells already in flight still land (and are
    /// still delivered to the sink), so the batch ends with a consistent
    /// partial table rather than mid-cell.
    Stop,
}

/// A streaming consumer of finished cells, fed by
/// [`Runner::run_stream`] in **completion order** — the scheduler starts
/// the costliest cells first, but cheap cells overtake them, which is
/// exactly what lets a table print its fast rows while a scope-4 cell is
/// still counting. Implemented for every `FnMut` closure of the right
/// shape; the sink is called from worker threads (serialized by the
/// scheduler), hence `Send`.
pub trait RowSink: Send {
    /// Absorbs one finished cell — a completed row or its typed error —
    /// and decides whether the scheduler keeps claiming cells.
    fn absorb(&mut self, cell: Result<&RunnerRow, &CellError>) -> SinkDecision;
}

impl<F> RowSink for F
where
    F: FnMut(Result<&RunnerRow, &CellError>) -> SinkDecision + Send,
{
    fn absorb(&mut self, cell: Result<&RunnerRow, &CellError>) -> SinkDecision {
        self(cell)
    }
}

/// Estimated cost of one `(config, family)` cell, used to schedule the
/// most expensive cells first. The whole-space sweep over `2^(scope²)`
/// instances dominates a row, so scope towers over everything else; the
/// family weight breaks ties at equal scope in favour of the ensemble and
/// boosting encodings, whose vote circuits multiply the per-instance work.
fn cell_cost(config: &ExperimentConfig, family: ModelFamily) -> u128 {
    let bits = (config.scope * config.scope).min(100) as u32;
    let family_weight: u128 = match family {
        ModelFamily::Dt => 1,
        // A quantized SVM is a single threshold circuit: barely costlier
        // than a tree, cheaper than any ensemble fold.
        ModelFamily::Svm => 2,
        ModelFamily::Rft => 6,
        ModelFamily::Abt => 6,
        // One threshold circuit per hidden unit plus the output fold.
        ModelFamily::Mlp => 6,
        ModelFamily::Gbdt => 10,
    };
    (1u128 << bits).saturating_mul(family_weight)
}

/// Claims the next cell for worker `me`: its own deque front first (the
/// costliest cells it was dealt), then the **back** of the other workers'
/// deques — stealing their cheapest remaining cells, which keeps the big
/// cells with the workers that started them.
fn claim_cell(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(index) = deques[me].lock().expect("cell deque poisoned").pop_front() {
        return Some(index);
    }
    for offset in 1..deques.len() {
        let victim = (me + offset) % deques.len();
        if let Some(index) = deques[victim]
            .lock()
            .expect("cell deque poisoned")
            .pop_back()
        {
            return Some(index);
        }
    }
    None
}

/// Batch executor for whole-space experiments.
///
/// Compared to looping over [`Experiment::run`], a `Runner`:
///
/// * builds each distinct dataset and translates each distinct ground truth
///   **once**, no matter how many rows share them;
/// * executes cells concurrently on scoped threads, largest estimated cost
///   first over work-stealing deques (the counting backend is shared, so a
///   [`CachedCounter`](crate::counter::CachedCounter) also shares its memo
///   across rows);
/// * trains any subset of the encodable [`ModelFamily`] values per row;
/// * returns typed [`EvalError`]s instead of panicking — per cell via
///   [`run_collect`](Runner::run_collect), streamed through a [`RowSink`]
///   via [`run_stream`](Runner::run_stream), or strictly via
///   [`run`](Runner::run).
///
/// # Example
///
/// ```
/// use mcml::backend::CounterBackend;
/// use mcml::framework::{ExperimentConfig, ModelFamily, Runner};
/// use relspec::properties::Property;
///
/// let configs = vec![
///     ExperimentConfig::table5(Property::Reflexive, 3),
///     ExperimentConfig::table5(Property::Function, 3),
/// ];
/// let backend = CounterBackend::exact();
/// let rows = Runner::new()
///     .families(&[ModelFamily::Dt])
///     .run(&configs, &backend)
///     .expect("well-formed configs");
/// assert_eq!(rows.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    families: Vec<ModelFamily>,
    engine: CountingEngine,
    vote_node_bound: usize,
    fallback: FallbackPolicy,
    rft_trees: usize,
    abt_rounds: usize,
    abt_depth: usize,
    gbdt_rounds: usize,
    gbdt_depth: usize,
    mlp_hidden: usize,
    quant_bits: u32,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner with default settings: decision trees only, one thread per
    /// available core, classic counting engine.
    pub fn new() -> Self {
        Runner {
            threads: 0,
            families: vec![ModelFamily::Dt],
            engine: CountingEngine::Classic,
            vote_node_bound: crate::encode::MAX_VOTE_NODES,
            fallback: FallbackPolicy::default(),
            rft_trees: 15,
            abt_rounds: 10,
            abt_depth: 2,
            gbdt_rounds: 6,
            gbdt_depth: 2,
            mlp_hidden: 4,
            quant_bits: DEFAULT_QUANT_BITS,
        }
    }

    /// Sets the number of worker threads (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the [`CountingEngine`] used for the whole-space evaluation of
    /// every row. With [`CountingEngine::Compiled`] and a backend that
    /// compiles (a [`CompiledCounter`],
    /// possibly wrapped in a
    /// [`CachedCounter`](crate::counter::CachedCounter)), the φ / ¬φ
    /// circuits are shared across all rows of the batch exactly like cached
    /// counts — compiled once per (property, scope, symmetry). Each model
    /// then issues **one batched query per φ side**
    /// ([`QueryCounter::count_cubes`] with its whole decision-region
    /// list): a single topological sweep of the circuit, not one walk per
    /// region.
    pub fn engine(mut self, engine: CountingEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the vote-circuit node budget (default
    /// [`MAX_VOTE_NODES`](crate::encode::MAX_VOTE_NODES)) bounding both the
    /// compiled engine's region-extraction vote BDDs and the classic
    /// engine's ABT vote-diagram CNF encodings. Rows whose ensembles exceed
    /// it fail with [`EvalError::VoteCircuitTooLarge`].
    pub fn vote_node_bound(mut self, bound: usize) -> Self {
        self.vote_node_bound = bound;
        self
    }

    /// Sets the degradation [`FallbackPolicy`] every row evaluates under
    /// (default [`FallbackPolicy::Fail`]): an enabled ladder turns
    /// budget-exhausted cells into (ε, δ)-labeled approximate rows instead
    /// of the paper's "-" cells. Rescue seeds are derived from the queries
    /// themselves, so the policy never makes the batch
    /// scheduler's completion order observable in the results.
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Sets the model families trained and evaluated per row.
    pub fn families(mut self, families: &[ModelFamily]) -> Self {
        self.families = families.to_vec();
        self
    }

    /// Number of trees per random forest (kept modest so the majority-vote
    /// cardinality encoding stays cheap to count).
    pub fn rft_trees(mut self, rft_trees: usize) -> Self {
        self.rft_trees = rft_trees.max(1);
        self
    }

    /// Number of AdaBoost rounds (bounds the weighted-vote branching
    /// program compiled by the `ABT` encoding).
    pub fn abt_rounds(mut self, abt_rounds: usize) -> Self {
        self.abt_rounds = abt_rounds.max(1);
        self
    }

    /// Depth of the AdaBoost weak learners.
    pub fn abt_depth(mut self, abt_depth: usize) -> Self {
        self.abt_depth = abt_depth.max(1);
        self
    }

    /// Number of GBDT boosting rounds. With shrinkage producing
    /// pairwise-distinct leaf contributions, the additive-score fold can
    /// reach `Πₜ leavesₜ` abstract states, so the default (6 rounds of
    /// depth-2 trees, ≈5.5k worst-case fold states) keeps an order of
    /// magnitude of headroom under the default vote-node budget (2¹⁶).
    pub fn gbdt_rounds(mut self, gbdt_rounds: usize) -> Self {
        self.gbdt_rounds = gbdt_rounds.max(1);
        self
    }

    /// Depth of the GBDT regression trees.
    pub fn gbdt_depth(mut self, gbdt_depth: usize) -> Self {
        self.gbdt_depth = gbdt_depth.max(1);
        self
    }

    /// Number of MLP hidden units. Much smaller than the float
    /// [`MlpConfig`] default: after quantization every hidden unit becomes
    /// one stage of the output-layer fold, whose abstract-state count grows
    /// with the number of distinct partial sums, so the default (4) keeps
    /// the compiled vote diagram far under the vote-node budget while still
    /// fitting the small-scope properties.
    pub fn mlp_hidden(mut self, mlp_hidden: usize) -> Self {
        self.mlp_hidden = mlp_hidden.max(1);
        self
    }

    /// Fractional bits of the post-training fixed-point quantization
    /// (default [`DEFAULT_QUANT_BITS`]) applied to the MLP and SVM weights:
    /// `q = round(w · 2^bits)`. More bits track the float model more
    /// faithfully but widen the threshold DP's reachable partial-sum range.
    pub fn quant_bits(mut self, quant_bits: u32) -> Self {
        self.quant_bits = quant_bits;
        self
    }

    /// Worker threads for `jobs` live cells: the configured thread count
    /// (or one per available core), clamped so no worker sits idle — a
    /// scope-2 smoke table with two cells gets two workers, and an empty
    /// batch spawns none at all.
    fn worker_count(&self, jobs: usize) -> usize {
        if jobs == 0 {
            return 0;
        }
        let threads = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        threads.clamp(1, jobs)
    }

    /// Builds every distinct dataset and ground truth exactly once, using
    /// the same worker parallelism as row execution — dataset construction
    /// (SAT-based positive enumeration) dominates wall-clock for large
    /// batches and must not serialize on the caller thread.
    fn shared_inputs(
        &self,
        configs: &[ExperimentConfig],
    ) -> (
        HashMap<DatasetConfig, PropertyDataset>,
        HashMap<GroundTruthKey, GroundTruth>,
    ) {
        let mut dataset_configs: Vec<DatasetConfig> = Vec::new();
        let mut gt_configs: Vec<ExperimentConfig> = Vec::new();
        let mut seen_datasets = std::collections::HashSet::new();
        let mut seen_gts = std::collections::HashSet::new();
        for config in configs {
            if seen_datasets.insert(config.dataset_config()) {
                dataset_configs.push(config.dataset_config());
            }
            if seen_gts.insert(config.ground_truth_key()) {
                gt_configs.push(*config);
            }
        }

        let total_jobs = dataset_configs.len() + gt_configs.len();
        let datasets: Mutex<HashMap<DatasetConfig, PropertyDataset>> =
            Mutex::new(HashMap::with_capacity(dataset_configs.len()));
        let ground_truths: Mutex<HashMap<GroundTruthKey, GroundTruth>> =
            Mutex::new(HashMap::with_capacity(gt_configs.len()));
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.worker_count(total_jobs) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if let Some(dc) = dataset_configs.get(index) {
                        let built = DatasetBuilder::new().build(*dc);
                        datasets
                            .lock()
                            .expect("dataset table poisoned")
                            .insert(*dc, built);
                    } else if let Some(config) = gt_configs.get(index - dataset_configs.len()) {
                        let built = config.translate_ground_truth();
                        ground_truths
                            .lock()
                            .expect("ground-truth table poisoned")
                            .insert(config.ground_truth_key(), built);
                    } else {
                        break;
                    }
                });
            }
        });
        (
            datasets.into_inner().expect("dataset table poisoned"),
            ground_truths
                .into_inner()
                .expect("ground-truth table poisoned"),
        )
    }

    /// Runs all `configs × families` rows in parallel, preserving the order
    /// `configs` outer, families inner. Fails with the first (in job order)
    /// [`EvalError`] encountered — the strict wrapper around
    /// [`run_collect`](Self::run_collect) for callers that treat any cell
    /// error as a malformed batch.
    pub fn run<C: QueryCounter + ?Sized>(
        &self,
        configs: &[ExperimentConfig],
        backend: &C,
    ) -> Result<Vec<RunnerRow>, EvalError> {
        let outcome = self.run_collect(configs, backend)?;
        match outcome.errors.into_iter().next() {
            Some(first) => Err(first.error),
            None => Ok(outcome.rows),
        }
    }

    /// Runs the batch like [`run`](Self::run) but never discards finished
    /// work: every row that landed comes back together with a typed
    /// [`CellError`] per failed cell, both in job order. A cell error
    /// (say, one family's vote circuit over budget) costs that cell, not
    /// the batch.
    pub fn run_collect<C: QueryCounter + ?Sized>(
        &self,
        configs: &[ExperimentConfig],
        backend: &C,
    ) -> Result<BatchOutcome, EvalError> {
        self.run_stream(configs, backend, |_: Result<&RunnerRow, &CellError>| {
            SinkDecision::Continue
        })
    }

    /// Runs the batch, delivering every finished cell to `sink` the moment
    /// it lands (completion order, not job order). Returning
    /// [`SinkDecision::Stop`] keeps the scheduler from claiming further
    /// cells while in-flight cells still finish and reach the sink, so an
    /// interrupted batch yields a consistent partial table instead of
    /// nothing. The returned [`BatchOutcome`] holds the same cells the
    /// sink saw, re-ordered into job order.
    pub fn run_stream<C, S>(
        &self,
        configs: &[ExperimentConfig],
        backend: &C,
        mut sink: S,
    ) -> Result<BatchOutcome, EvalError>
    where
        C: QueryCounter + ?Sized,
        S: RowSink,
    {
        if self.families.is_empty() {
            return Err(EvalError::NoModelFamilies);
        }
        let jobs: Vec<(ExperimentConfig, ModelFamily)> = configs
            .iter()
            .flat_map(|c| self.families.iter().map(move |f| (*c, *f)))
            .collect();
        let slots = self.execute_cells(
            &jobs,
            backend,
            |config, family, dataset, ground_truth, backend| {
                self.run_family_row(config, family, dataset, ground_truth, backend)
            },
            |config, family, outcome: &Result<RunnerRow, EvalError>| match outcome {
                Ok(row) => sink.absorb(Ok(row)),
                Err(error) => sink.absorb(Err(&CellError {
                    config: *config,
                    family,
                    error: error.clone(),
                })),
            },
        );
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for ((config, family), slot) in jobs.iter().zip(slots) {
            match slot {
                Some(Ok(row)) => rows.push(row),
                Some(Err(error)) => errors.push(CellError {
                    config: *config,
                    family: *family,
                    error,
                }),
                // Never claimed: the sink stopped the batch first.
                None => {}
            }
        }
        Ok(BatchOutcome { rows, errors })
    }

    /// Runs `configs` as decision-tree rows, producing results identical to
    /// calling [`Experiment::run`] per config (same training, same metrics,
    /// same tree statistics) while sharing work and executing in parallel.
    pub fn run_experiments<C: QueryCounter + ?Sized>(
        &self,
        configs: &[ExperimentConfig],
        backend: &C,
    ) -> Result<Vec<ExperimentResult>, EvalError> {
        let jobs: Vec<(ExperimentConfig, ModelFamily)> =
            configs.iter().map(|c| (*c, ModelFamily::Dt)).collect();
        self.execute(
            &jobs,
            backend,
            |config, _family, dataset, ground_truth, backend| {
                run_dt_row(
                    config,
                    dataset,
                    ground_truth,
                    backend,
                    self.engine,
                    self.vote_node_bound,
                    self.fallback,
                )
            },
        )
    }

    /// Strict parallel driver over `(config, family)` jobs: every cell
    /// runs, and the result fails with the first error in job order.
    fn execute<C, T, F>(
        &self,
        jobs: &[(ExperimentConfig, ModelFamily)],
        backend: &C,
        job_fn: F,
    ) -> Result<Vec<T>, EvalError>
    where
        C: QueryCounter + ?Sized,
        T: Send,
        F: Fn(
                &ExperimentConfig,
                ModelFamily,
                &PropertyDataset,
                &GroundTruth,
                &C,
            ) -> Result<T, EvalError>
            + Sync,
    {
        self.execute_cells(jobs, backend, job_fn, |_, _, _: &Result<T, EvalError>| {
            SinkDecision::Continue
        })
        .into_iter()
        .map(|slot| slot.expect("a never-stopping sink claims every cell"))
        .collect()
    }

    /// Streaming cost-aware driver over `(config, family)` cells.
    ///
    /// Cells are dealt largest-estimated-cost-first across per-worker
    /// deques; a worker drains its own deque from the front and steals
    /// from the back of its neighbours' when empty, so the batch's big
    /// cells start immediately on distinct workers while the cheap tail is
    /// rebalanced onto whoever runs dry. Every finished cell is reported
    /// to `sink` as it lands (completion order); [`SinkDecision::Stop`]
    /// keeps workers from claiming further cells. The returned slots are
    /// in job order, with `None` marking cells never claimed because of an
    /// early stop.
    fn execute_cells<C, T, F, S>(
        &self,
        jobs: &[(ExperimentConfig, ModelFamily)],
        backend: &C,
        job_fn: F,
        sink: S,
    ) -> Vec<Option<Result<T, EvalError>>>
    where
        C: QueryCounter + ?Sized,
        T: Send,
        F: Fn(
                &ExperimentConfig,
                ModelFamily,
                &PropertyDataset,
                &GroundTruth,
                &C,
            ) -> Result<T, EvalError>
            + Sync,
        S: FnMut(&ExperimentConfig, ModelFamily, &Result<T, EvalError>) -> SinkDecision + Send,
    {
        let configs: Vec<ExperimentConfig> = jobs.iter().map(|(c, _)| *c).collect();
        let (datasets, ground_truths) = self.shared_inputs(&configs);
        let workers = self.worker_count(jobs.len());
        let slots: Vec<Mutex<Option<Result<T, EvalError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        if workers == 0 {
            return Vec::new();
        }

        // Deal cells round-robin in descending cost order: stable sort, so
        // equal-cost cells keep job order and a single worker visits them
        // deterministically.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cell_cost(&jobs[i].0, jobs[i].1)));
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (turn, &index) in order.iter().enumerate() {
            deques[turn % workers]
                .lock()
                .expect("cell deque poisoned")
                .push_back(index);
        }

        let stop = AtomicBool::new(false);
        let sink = Mutex::new(sink);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let slots = &slots;
                let datasets = &datasets;
                let ground_truths = &ground_truths;
                let stop = &stop;
                let sink = &sink;
                let job_fn = &job_fn;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let Some(index) = claim_cell(deques, me) else {
                            break;
                        };
                        let (config, family) = &jobs[index];
                        let dataset = &datasets[&config.dataset_config()];
                        let ground_truth = &ground_truths[&config.ground_truth_key()];
                        let outcome = job_fn(config, *family, dataset, ground_truth, backend);
                        let decision = {
                            let mut sink = sink.lock().expect("row sink poisoned");
                            (*sink)(config, *family, &outcome)
                        };
                        *slots[index].lock().expect("result slot poisoned") = Some(outcome);
                        if decision == SinkDecision::Stop {
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("result slot poisoned"))
            .collect()
    }

    /// Trains one `(config, family)` model with the runner's
    /// hyper-parameters and the config's seed. Training is deterministic
    /// in those inputs, which is what lets
    /// [`build_artifact`](Self::build_artifact) reproduce the exact models
    /// a [`run`](Self::run) batch evaluated.
    fn train_model(
        &self,
        config: &ExperimentConfig,
        family: ModelFamily,
        train: &Dataset,
    ) -> TrainedModel {
        match family {
            ModelFamily::Dt => TrainedModel::Dt(DecisionTree::fit(train, TreeConfig::default())),
            ModelFamily::Rft => TrainedModel::Rft(RandomForest::fit(
                train,
                ForestConfig {
                    num_trees: self.rft_trees,
                    seed: config.seed,
                    ..ForestConfig::default()
                },
            )),
            ModelFamily::Gbdt => TrainedModel::Gbdt(GradientBoosting::fit(
                train,
                GbdtConfig {
                    num_rounds: self.gbdt_rounds,
                    max_depth: self.gbdt_depth,
                    ..GbdtConfig::default()
                },
            )),
            ModelFamily::Abt => TrainedModel::Abt(AdaBoost::fit(
                train,
                AdaBoostConfig {
                    num_rounds: self.abt_rounds,
                    weak_depth: self.abt_depth,
                    seed: config.seed,
                },
            )),
            // The float networks are training scaffolding only: the
            // quantized model IS the evaluated classifier, so its test-set
            // metrics and its CNF/region encodings describe the same
            // function bit for bit.
            ModelFamily::Mlp => {
                let float = Mlp::fit(
                    train,
                    MlpConfig {
                        hidden_units: self.mlp_hidden,
                        seed: config.seed,
                        ..MlpConfig::default()
                    },
                );
                TrainedModel::Mlp(QuantizedMlp::from_mlp_calibrated(
                    &float,
                    self.quant_bits,
                    train.features(),
                ))
            }
            ModelFamily::Svm => {
                let float = LinearSvm::fit(
                    train,
                    SvmConfig {
                        seed: config.seed,
                        ..SvmConfig::default()
                    },
                );
                TrainedModel::Svm(QuantizedSvm::from_svm(&float, self.quant_bits))
            }
        }
    }

    /// Re-trains the batch's models and packages everything a warm start
    /// needs into a [`CircuitArtifact`]: each model's decision-region
    /// cover, the φ / ¬φ circuit fingerprints they are counted against,
    /// and a snapshot of `counter`'s circuit cache with those circuits
    /// force-compiled. Training goes through the same
    /// `train_model` path as [`run`](Self::run) —
    /// deterministic hyper-parameters and seeds — so the covers reproduce
    /// the evaluated models exactly and served results can match batch
    /// rows bit for bit. Each cover records the ground truth's
    /// `eval_symmetry`, so the serving layer can refuse whole-space plans
    /// that a symmetry-constrained φ would silently skew. Failed
    /// compilations are not persisted (the snapshot skips them).
    pub fn build_artifact(
        &self,
        configs: &[ExperimentConfig],
        counter: &CompiledCounter,
    ) -> Result<CircuitArtifact, EvalError> {
        if self.families.is_empty() {
            return Err(EvalError::NoModelFamilies);
        }
        let jobs: Vec<(ExperimentConfig, ModelFamily)> = configs
            .iter()
            .flat_map(|c| self.families.iter().map(move |f| (*c, *f)))
            .collect();
        let covers = self.execute(
            &jobs,
            counter,
            |config, family, dataset, ground_truth, counter| {
                let (train, _test) = dataset.split(config.ratio);
                let model = self.train_model(config, family, &train);
                let regions = model
                    .as_encodable()
                    .decision_regions_bounded(self.vote_node_bound)?;
                let phi_cnf = ground_truth.cnf_positive_ref();
                let not_phi_cnf = ground_truth.cnf_negative_ref();
                // Force both circuits into the cache; a budget-exhausted
                // compilation simply stays out of the snapshot.
                let _ = ModelCounter::count(counter, phi_cnf);
                let _ = ModelCounter::count(counter, not_phi_cnf);
                Ok(RegionCover {
                    property: config.property.name().to_string(),
                    scope: config.scope,
                    family: family.name().to_string(),
                    symmetry: config.eval_symmetry,
                    phi: cnf_fingerprint(phi_cnf),
                    not_phi: cnf_fingerprint(not_phi_cnf),
                    regions,
                })
            },
        )?;
        Ok(CircuitArtifact {
            backend: "compiled".to_string(),
            circuits: counter.snapshot_circuits(),
            covers,
        })
    }

    /// Trains and evaluates one `(config, family)` row.
    fn run_family_row<C: QueryCounter + ?Sized>(
        &self,
        config: &ExperimentConfig,
        family: ModelFamily,
        dataset: &PropertyDataset,
        ground_truth: &GroundTruth,
        backend: &C,
    ) -> Result<RunnerRow, EvalError> {
        let (train, test) = dataset.split(config.ratio);
        let model = self.train_model(config, family, &train);
        let test_metrics = evaluate_classifier(model.as_classifier(), &test);
        let whole_space = AccMc::with_engine(backend, self.engine)
            .vote_node_bound(self.vote_node_bound)
            .fallback(self.fallback)
            .evaluate(ground_truth, model.as_encodable())?;
        Ok(RunnerRow {
            config: *config,
            family,
            test_metrics,
            whole_space,
            dataset_size: dataset.dataset.len(),
            train_size: train.len(),
        })
    }
}

/// Evaluates a trained classifier on a dataset with the traditional metrics.
pub fn evaluate_classifier<C: Classifier + ?Sized>(model: &C, data: &Dataset) -> BinaryMetrics {
    let predictions: Vec<bool> = data.features().iter().map(|x| model.predict(x)).collect();
    ConfusionMatrix::from_predictions(data.labels(), &predictions).metrics()
}

/// Test-set performance of one model family (one row of Tables 2 / 4).
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Short model name (DT, RFT, GBDT, ABT, SVM, MLP).
    pub model: &'static str,
    /// Metrics on the test set.
    pub metrics: BinaryMetrics,
}

/// Trains all six model families of the study on `train` and evaluates them
/// on `test`, in the order the paper's tables list them.
pub fn evaluate_all_models(train: &Dataset, test: &Dataset, seed: u64) -> Vec<ModelReport> {
    let mut reports = Vec::with_capacity(6);

    let dt = DecisionTree::fit(
        train,
        TreeConfig {
            seed,
            ..TreeConfig::default()
        },
    );
    reports.push(ModelReport {
        model: dt.model_name(),
        metrics: evaluate_classifier(&dt, test),
    });

    let rft = RandomForest::fit(
        train,
        ForestConfig {
            seed,
            num_trees: 30,
            ..ForestConfig::default()
        },
    );
    reports.push(ModelReport {
        model: rft.model_name(),
        metrics: evaluate_classifier(&rft, test),
    });

    let gbdt = GradientBoosting::fit(
        train,
        GbdtConfig {
            num_rounds: 60,
            ..GbdtConfig::default()
        },
    );
    reports.push(ModelReport {
        model: gbdt.model_name(),
        metrics: evaluate_classifier(&gbdt, test),
    });

    let abt = AdaBoost::fit(
        train,
        AdaBoostConfig {
            seed,
            num_rounds: 40,
            weak_depth: 2,
        },
    );
    reports.push(ModelReport {
        model: abt.model_name(),
        metrics: evaluate_classifier(&abt, test),
    });

    let svm = LinearSvm::fit(
        train,
        SvmConfig {
            seed,
            ..SvmConfig::default()
        },
    );
    reports.push(ModelReport {
        model: svm.model_name(),
        metrics: evaluate_classifier(&svm, test),
    });

    let mlp = Mlp::fit(
        train,
        MlpConfig {
            seed,
            epochs: 40,
            ..MlpConfig::default()
        },
    );
    reports.push(ModelReport {
        model: mlp.model_name(),
        metrics: evaluate_classifier(&mlp, test),
    });

    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CounterBackend;
    use crate::counter::CachedCounter;
    use modelcount::exact::ExactCounter;

    #[test]
    fn reflexive_experiment_is_perfect_everywhere() {
        // Reflexive only depends on the diagonal; a tree learns it exactly
        // and both the test-set and the whole-space metrics are 1.0.
        let config = ExperimentConfig {
            ratio: SplitRatio::new(50),
            ..ExperimentConfig::table5(Property::Reflexive, 3)
        };
        let backend = CounterBackend::exact();
        let result = Experiment::new(config).run(&backend);
        assert!(result.test_metrics.accuracy >= 0.99);
        let ws = result.whole_space.expect("no budget configured");
        assert_eq!(ws.metrics.precision, 1.0);
        assert_eq!(ws.metrics.recall, 1.0);
        assert_eq!(ws.counts.total(), 512);
    }

    #[test]
    fn sparse_property_shows_precision_collapse() {
        // The central finding of the paper: a tree that looks excellent on
        // the balanced test set has far lower precision over the whole space,
        // because the true positive class is a tiny fraction of the space.
        let config = ExperimentConfig {
            ratio: SplitRatio::new(50),
            ..ExperimentConfig::table5(Property::PartialOrder, 4)
        };
        let backend = CounterBackend::exact();
        let result = Experiment::new(config).run(&backend);
        assert!(result.test_metrics.accuracy >= 0.80);
        let ws = result.whole_space.expect("no budget configured");
        assert_eq!(ws.counts.total(), 1u128 << 16);
        assert!(
            ws.metrics.precision < result.test_metrics.precision,
            "whole-space precision {} should be below test precision {}",
            ws.metrics.precision,
            result.test_metrics.precision
        );
    }

    #[test]
    fn mismatch_configs_carry_different_symmetries() {
        let t6 = ExperimentConfig::table6(Property::Connex, 4);
        assert_eq!(t6.data_symmetry, SymmetryBreaking::Transpositions);
        assert_eq!(t6.eval_symmetry, SymmetryBreaking::None);
        let t7 = ExperimentConfig::table7(Property::Connex, 4);
        assert_eq!(t7.data_symmetry, SymmetryBreaking::None);
        assert_eq!(t7.eval_symmetry, SymmetryBreaking::Transpositions);
    }

    #[test]
    fn all_six_models_report_metrics() {
        // Scope 4 keeps the balanced dataset large enough (hundreds of
        // rows) that "better than chance" is a stable expectation.
        let dataset = DatasetBuilder::new().build(
            DatasetConfig::new(Property::Function, 4)
                .without_symmetry()
                .with_max_positive(200),
        );
        let (train, test) = dataset.split(SplitRatio::new(75));
        let reports = evaluate_all_models(&train, &test, 1);
        let names: Vec<&str> = reports.iter().map(|r| r.model).collect();
        assert_eq!(names, vec!["DT", "RFT", "GBDT", "ABT", "SVM", "MLP"]);
        for r in &reports {
            assert!(
                r.metrics.accuracy >= 0.5,
                "{} no better than chance: {}",
                r.model,
                r.metrics.accuracy
            );
        }
    }

    #[test]
    fn train_tree_returns_usable_tree() {
        let config = ExperimentConfig {
            ratio: SplitRatio::new(50),
            ..ExperimentConfig::table3(Property::Irreflexive, 4)
        };
        let (tree, metrics) = Experiment::new(config).train_tree(TreeConfig::default());
        assert!(tree.num_leaves() >= 1);
        assert!(metrics.accuracy > 0.8);
    }

    #[test]
    fn runner_matches_sequential_experiments() {
        let configs = vec![
            ExperimentConfig::table5(Property::Reflexive, 3),
            ExperimentConfig::table5(Property::Function, 3),
            ExperimentConfig::table3(Property::Antisymmetric, 3),
            // A duplicate row: dataset/ground-truth dedup must not change it.
            ExperimentConfig::table5(Property::Reflexive, 3),
        ];
        let backend = CounterBackend::exact();
        let parallel = Runner::new()
            .threads(4)
            .run_experiments(&configs, &backend)
            .expect("well-formed configs");
        assert_eq!(parallel.len(), configs.len());
        for (config, row) in configs.iter().zip(&parallel) {
            let sequential = Experiment::new(*config).run(&backend);
            assert_eq!(row.config, *config);
            assert_eq!(row.test_metrics, sequential.test_metrics);
            assert_eq!(
                row.whole_space.map(|w| w.counts),
                sequential.whole_space.map(|w| w.counts)
            );
            assert_eq!(row.tree_leaves, sequential.tree_leaves);
            assert_eq!(row.tree_depth, sequential.tree_depth);
            assert_eq!(row.train_size, sequential.train_size);
        }
    }

    #[test]
    fn runner_trains_all_requested_families() {
        let configs = vec![ExperimentConfig::table5(Property::Reflexive, 3)];
        let backend = CounterBackend::exact();
        let rows = Runner::new()
            .families(ModelFamily::all())
            .rft_trees(5)
            .abt_rounds(5)
            .gbdt_rounds(4)
            .run(&configs, &backend)
            .expect("well-formed configs");
        let families: Vec<ModelFamily> = rows.iter().map(|r| r.family).collect();
        assert_eq!(families, ModelFamily::all().to_vec());
        for row in &rows {
            let ws = row.whole_space.expect("no budget configured");
            assert_eq!(ws.counts.total(), 512, "family {}", row.family);
            assert!(
                row.test_metrics.accuracy >= 0.9,
                "family {} accuracy {}",
                row.family,
                row.test_metrics.accuracy
            );
        }
    }

    #[test]
    fn runner_shares_cached_counts_across_rows() {
        // Two identical configs share the dataset, so they train identical
        // trees and issue identical counting queries: the second row must be
        // answered from the cache.
        let configs = vec![
            ExperimentConfig::table5(Property::Function, 3),
            ExperimentConfig::table5(Property::Function, 3),
        ];
        let cached = CachedCounter::new(ExactCounter::new());
        let rows = Runner::new()
            .threads(1)
            .run_experiments(&configs, &cached)
            .expect("well-formed configs");
        assert_eq!(
            rows[0].whole_space.unwrap().counts,
            rows[1].whole_space.unwrap().counts
        );
        let stats = cached.stats();
        assert!(stats.hits >= 4, "cache stats: {stats:?}");
    }

    #[test]
    fn runner_compiled_engine_matches_classic() {
        use crate::counter::CompiledCounter;
        let configs = vec![
            ExperimentConfig::table5(Property::Reflexive, 3),
            ExperimentConfig::table5(Property::Function, 3),
            ExperimentConfig::table3(Property::Antisymmetric, 3),
        ];
        let exact = CounterBackend::exact();
        let classic = Runner::new()
            .families(ModelFamily::all())
            .rft_trees(5)
            .abt_rounds(5)
            .gbdt_rounds(4)
            .run(&configs, &exact)
            .expect("well-formed configs");
        let compiled_backend = CachedCounter::new(CompiledCounter::new());
        let compiled = Runner::new()
            .families(ModelFamily::all())
            .rft_trees(5)
            .abt_rounds(5)
            .gbdt_rounds(4)
            .engine(CountingEngine::Compiled)
            .run(&configs, &compiled_backend)
            .expect("well-formed configs");
        assert_eq!(classic.len(), compiled.len());
        for (a, b) in classic.iter().zip(&compiled) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.family, b.family);
            assert_eq!(
                a.whole_space.map(|w| w.counts),
                b.whole_space.map(|w| w.counts),
                "family {} property {}",
                a.family,
                a.config.property
            );
        }
    }

    #[test]
    fn runner_with_no_families_is_a_typed_error() {
        let backend = CounterBackend::exact();
        let result = Runner::new().families(&[]).run(&[], &backend);
        assert!(matches!(result, Err(EvalError::NoModelFamilies)));
        let collected = Runner::new().families(&[]).run_collect(&[], &backend);
        assert!(matches!(collected, Err(EvalError::NoModelFamilies)));
    }

    #[test]
    fn empty_batch_yields_empty_rows_without_workers() {
        // Zero cells spawn zero workers (worker_count clamps to live
        // cells); the batch still resolves to an empty, well-typed result.
        let backend = CounterBackend::exact();
        let rows = Runner::new().run(&[], &backend).expect("empty batch");
        assert!(rows.is_empty());
        let outcome = Runner::new()
            .run_collect(&[], &backend)
            .expect("empty batch");
        assert!(outcome.rows.is_empty());
        assert!(outcome.errors.is_empty());
    }

    #[test]
    fn run_collect_keeps_partial_rows_and_types_the_failures() {
        use crate::counter::CompiledCounter;
        // Decision trees ignore the vote-node bound, ensembles honour it:
        // with a bound of 1 every RFT cell fails while every DT cell
        // lands, which is exactly the partial table `run` used to discard.
        let configs = vec![
            ExperimentConfig::table5(Property::Reflexive, 3),
            ExperimentConfig::table5(Property::Function, 3),
        ];
        let backend = CompiledCounter::new();
        let runner = Runner::new()
            .families(&[ModelFamily::Dt, ModelFamily::Rft])
            .rft_trees(5)
            .engine(CountingEngine::Compiled)
            .vote_node_bound(1);
        let outcome = runner
            .run_collect(&configs, &backend)
            .expect("families configured");
        assert_eq!(outcome.rows.len(), 2);
        assert!(outcome.rows.iter().all(|r| r.family == ModelFamily::Dt));
        assert_eq!(outcome.errors.len(), 2);
        for cell in &outcome.errors {
            assert_eq!(cell.family, ModelFamily::Rft);
            assert!(
                matches!(cell.error, EvalError::VoteCircuitTooLarge { bound: 1, .. }),
                "unexpected cell error: {:?}",
                cell.error
            );
        }
        // Rows and errors come back in job order: configs outer, families
        // inner.
        assert_eq!(outcome.rows[0].config.property, Property::Reflexive);
        assert_eq!(outcome.rows[1].config.property, Property::Function);
        assert_eq!(outcome.errors[0].config.property, Property::Reflexive);
        assert_eq!(outcome.errors[1].config.property, Property::Function);

        // And `run` is the strict wrapper: same batch, first job-order
        // error.
        let strict = runner.run(&configs, &backend);
        assert!(
            matches!(strict, Err(EvalError::VoteCircuitTooLarge { bound: 1, .. })),
            "unexpected strict outcome: {strict:?}"
        );
    }

    #[test]
    fn run_stream_emits_cells_as_they_land_costliest_first() {
        // One worker drains its deque in descending cost order, so the
        // scope-4 cell must stream out before the scope-3 one even though
        // job order lists scope 3 first.
        let configs = vec![
            ExperimentConfig::table5(Property::Reflexive, 3),
            ExperimentConfig::table5(Property::Reflexive, 4),
        ];
        let backend = CounterBackend::exact();
        let mut seen: Vec<(usize, bool)> = Vec::new();
        let outcome = Runner::new()
            .threads(1)
            .run_stream(
                &configs,
                &backend,
                |cell: Result<&RunnerRow, &CellError>| {
                    let row = cell.expect("reflexive rows are well-formed");
                    seen.push((row.config.scope, row.whole_space.is_some()));
                    SinkDecision::Continue
                },
            )
            .expect("families configured");
        assert_eq!(seen, vec![(4, true), (3, true)]);
        // The collected outcome is re-ordered into job order.
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.rows[0].config.scope, 3);
        assert_eq!(outcome.rows[1].config.scope, 4);
        assert!(outcome.errors.is_empty());
    }

    #[test]
    fn run_stream_stop_yields_a_partial_table() {
        let configs = vec![
            ExperimentConfig::table5(Property::Reflexive, 3),
            ExperimentConfig::table5(Property::Function, 3),
            ExperimentConfig::table5(Property::Irreflexive, 3),
        ];
        let backend = CounterBackend::exact();
        let mut delivered = 0usize;
        let outcome = Runner::new()
            .threads(1)
            .run_stream(&configs, &backend, |_: Result<&RunnerRow, &CellError>| {
                delivered += 1;
                SinkDecision::Stop
            })
            .expect("families configured");
        // The sink stopped after the first cell: exactly one row landed,
        // the unclaimed cells are neither rows nor errors.
        assert_eq!(delivered, 1);
        assert_eq!(outcome.rows.len(), 1);
        assert!(outcome.errors.is_empty());
    }

    #[test]
    fn model_family_parsing_round_trips() {
        assert_eq!(ModelFamily::all().len(), 6, "the six-family roster");
        for &family in ModelFamily::all() {
            assert_eq!(ModelFamily::parse(family.name()), Some(family));
            assert_eq!(
                ModelFamily::parse(&family.name().to_ascii_lowercase()),
                Some(family)
            );
        }
        assert_eq!(ModelFamily::parse("gbdt"), Some(ModelFamily::Gbdt));
        assert_eq!(ModelFamily::parse("mlp"), Some(ModelFamily::Mlp));
        assert_eq!(ModelFamily::parse("svm"), Some(ModelFamily::Svm));
        assert_eq!(ModelFamily::parse("cnn"), None, "CNNs are not encodable");
    }
}
