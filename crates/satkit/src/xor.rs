//! CNF encodings of XOR (parity) constraints.
//!
//! The approximate model counter partitions the projected solution space into
//! cells by conjoining random parity constraints `x_{i1} ^ ... ^ x_{ik} = b`.
//! Long parity constraints are chained through auxiliary variables so that
//! each emitted XOR has at most three inputs, keeping the clause count linear
//! in the constraint length. Auxiliary variables are functionally determined
//! by the constraint's inputs, so projected model counts are unaffected.

use crate::cnf::{Cnf, Lit, Var};

/// A parity constraint: the XOR of `vars` must equal `parity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorConstraint {
    /// Variables participating in the parity constraint.
    pub vars: Vec<Var>,
    /// Required parity of the sum (true = odd).
    pub parity: bool,
}

impl XorConstraint {
    /// Creates a parity constraint.
    pub fn new(vars: Vec<Var>, parity: bool) -> Self {
        XorConstraint { vars, parity }
    }

    /// Evaluates the constraint under a total assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        let sum = self.vars.iter().filter(|v| assignment[v.index()]).count();
        (sum % 2 == 1) == self.parity
    }
}

/// Adds the CNF encoding of `constraint` to `cnf`, allocating auxiliary
/// variables in `cnf` as needed.
///
/// An empty constraint with odd parity makes the formula unsatisfiable (an
/// empty clause is added); with even parity it is a no-op.
pub fn add_xor_constraint(cnf: &mut Cnf, constraint: &XorConstraint) {
    match constraint.vars.len() {
        0 => {
            if constraint.parity {
                cnf.add_clause(Vec::<Lit>::new());
            }
        }
        1 => {
            let v = constraint.vars[0];
            cnf.add_unit(Lit::from_var(v, constraint.parity));
        }
        _ => {
            // Chain: acc_0 = v_0, acc_i = acc_{i-1} ^ v_i, assert acc_last = parity.
            let mut acc = Lit::from_var(constraint.vars[0], true);
            for &v in &constraint.vars[1..] {
                let out = cnf.new_var().pos();
                encode_xor2(cnf, acc, Lit::from_var(v, true), out);
                acc = out;
            }
            cnf.add_unit(if constraint.parity { acc } else { !acc });
        }
    }
}

/// Adds clauses asserting `out <=> (a ^ b)`.
fn encode_xor2(cnf: &mut Cnf, a: Lit, b: Lit, out: Lit) {
    cnf.add_clause(vec![!out, a, b]);
    cnf.add_clause(vec![!out, !a, !b]);
    cnf.add_clause(vec![out, !a, b]);
    cnf.add_clause(vec![out, a, !b]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_projected, EnumerateConfig};

    fn count_projected(cnf: &Cnf, proj: &[Var]) -> usize {
        enumerate_projected(cnf, proj, &EnumerateConfig::default()).len()
    }

    #[test]
    fn xor_of_two_vars_halves_space() {
        let mut cnf = Cnf::new(2);
        add_xor_constraint(&mut cnf, &XorConstraint::new(vec![Var(0), Var(1)], true));
        let proj = [Var(0), Var(1)];
        assert_eq!(count_projected(&cnf, &proj), 2);
    }

    #[test]
    fn xor_of_three_vars_even_parity() {
        let mut cnf = Cnf::new(3);
        add_xor_constraint(
            &mut cnf,
            &XorConstraint::new(vec![Var(0), Var(1), Var(2)], false),
        );
        let proj = [Var(0), Var(1), Var(2)];
        let sols = enumerate_projected(&cnf, &proj, &EnumerateConfig::default());
        assert_eq!(sols.len(), 4);
        for s in &sols.solutions {
            let ones = s.iter().filter(|&&b| b).count();
            assert_eq!(ones % 2, 0);
        }
    }

    #[test]
    fn single_var_constraint_is_unit() {
        let mut cnf = Cnf::new(1);
        add_xor_constraint(&mut cnf, &XorConstraint::new(vec![Var(0)], true));
        assert_eq!(count_projected(&cnf, &[Var(0)]), 1);
    }

    #[test]
    fn empty_constraint_odd_parity_is_unsat() {
        let mut cnf = Cnf::new(1);
        add_xor_constraint(&mut cnf, &XorConstraint::new(vec![], true));
        assert_eq!(count_projected(&cnf, &[Var(0)]), 0);
    }

    #[test]
    fn empty_constraint_even_parity_is_noop() {
        let mut cnf = Cnf::new(1);
        add_xor_constraint(&mut cnf, &XorConstraint::new(vec![], false));
        assert_eq!(count_projected(&cnf, &[Var(0)]), 2);
    }

    #[test]
    fn eval_matches_encoding() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..6usize);
            let vars: Vec<Var> = (0..n as u32).map(Var).collect();
            let parity = rng.gen_bool(0.5);
            let c = XorConstraint::new(vars.clone(), parity);
            let mut cnf = Cnf::new(n);
            add_xor_constraint(&mut cnf, &c);
            let sols = enumerate_projected(&cnf, &vars, &EnumerateConfig::default());
            let expected: Vec<Vec<bool>> = (0..(1u32 << n))
                .map(|bits| (0..n).map(|i| bits >> i & 1 == 1).collect::<Vec<bool>>())
                .filter(|a| c.eval(a))
                .collect();
            assert_eq!(sols.len(), expected.len());
        }
    }
}
