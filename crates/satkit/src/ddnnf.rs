//! Compilation of CNF formulas into deterministic decomposable NNF (d-DNNF)
//! circuits for compile-once / query-many projected model counting.
//!
//! The MCML metrics ask many counting queries that share one formula: AccMC
//! conditions the same ground truth φ on the decision region of every
//! evaluated model, and every table row repeats the φ / ¬φ halves. A search
//! counter pays the full #SAT cost per query; a knowledge-compilation
//! counter (the ProjMC/D4 lineage) pays it **once**, producing a circuit on
//! which each subsequent count is linear in the circuit size.
//!
//! The [`Compiler`] here is a trace-recording variant of the classic
//! projected #SAT search (the same skeleton as `modelcount::exact`):
//!
//! 1. unit propagation — fixed *projection* literals become [`Lit`] leaves;
//!    fixed auxiliary (non-projection) literals are existentially forgotten;
//! 2. connected-component decomposition — components become the children of
//!    a decomposable `And` node (their variable sets are disjoint by
//!    construction);
//! 3. branching on a projection variable — the two subtraces become the
//!    branches of a `Decision` node (a deterministic `Or`: the branches
//!    disagree on the branch variable);
//! 4. a component without projection variables contributes `True` or
//!    `False` depending on plain satisfiability, decided by the CDCL
//!    [`Solver`] — this is the existential forgetting of the remaining
//!    Tseitin auxiliaries, so compiled counts equal projected counts.
//!
//! The hot paths are engineered sharpSAT-style rather than naively:
//!
//! * **Interned components.** Clauses live once in a flat arena; the search
//!   never materializes residual formulas. A component is a sorted list of
//!   arena [`ClauseId`]s plus the sorted list of its free variables (which
//!   together determine the residual exactly: in an unsatisfied clause every
//!   assigned variable has a falsified literal, so the residual clause is
//!   its literals over free variables). The component cache hashes a
//!   precomputed 64-bit signature of that pair — a cache probe never clones
//!   or re-hashes literal vectors.
//! * **Occurrence lists.** Per-literal clause lists drive counter-based unit
//!   propagation (satisfier / free-literal counters with trail-based undo)
//!   and the stamp-based component walk, so neither ever scans the whole
//!   clause set.
//! * **Activity-guided branching.** VSIDS-style variable activities (seeded
//!   from occurrence counts, bumped on conflicts and on decisions whose
//!   propagation splits the component, decayed per decision) replace pure
//!   occurrence counting. [`CompileStats`] exposes decisions, conflicts and
//!   the component-cache hit rate so heuristic regressions are measurable.
//! * **Cross-query component reuse.** A [`SharedComponentCache`] attached
//!   via [`Compiler::with_shared_cache`] outlives any single run: it keys
//!   component *content* (canonical residual clauses plus projection
//!   membership) and stores portable sub-circuits, so the φ / φ∧ψ halves
//!   and the per-family label CNFs of one batch reuse each other's
//!   components instead of recompiling them. The cross-query hit rate is
//!   surfaced in [`CompileStats::shared_hits`] /
//!   [`CompileStats::shared_lookups`].
//!
//! The compiled [`Ddnnf`] supports [`count`](Ddnnf::count), conditioned
//! counting on a cube of projection literals
//! ([`count_conditioned`](Ddnnf::count_conditioned)), **batched** cube
//! counting ([`count_cubes`](Ddnnf::count_cubes): all cubes of a region
//! list in one iterative topological sweep — the query the AccMC/DiffMC
//! region-sum plans issue per model side), structural conditioning
//! ([`condition`](Ddnnf::condition), which returns a smaller circuit) and
//! model enumeration over the projection set ([`models`](Ddnnf::models)).
//!
//! Circuits are hash-consed DAGs: structurally identical subtraces (which
//! the search cache detects) share one node. Projection sets are limited to
//! 128 variables — enough for every scope of the reproduction (scope 11 has
//! 121 primary variables) — so per-node variable sets are single `u128`
//! bitmasks and gap ("smoothing") factors are popcounts.

use crate::cnf::{Cnf, Lit, Var};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::solver::Solver;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Index of a node inside a [`Ddnnf`] circuit.
pub type NodeId = usize;

/// Index of a clause in the compiler's clause arena.
pub type ClauseId = u32;

/// One node of a d-DNNF circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant true (neutral element of `And`).
    True,
    /// The constant false (an unsatisfiable subtrace).
    False,
    /// A projection literal fixed by unit propagation.
    Lit(Lit),
    /// Decomposable conjunction: the children's variable sets are pairwise
    /// disjoint.
    And(Vec<NodeId>),
    /// Deterministic disjunction `(var ∧ hi) ∨ (¬var ∧ lo)` produced by
    /// branching on a projection variable.
    Decision {
        /// The projection variable branched on.
        var: u32,
        /// Subcircuit under `var = true`.
        hi: NodeId,
        /// Subcircuit under `var = false`.
        lo: NodeId,
    },
}

/// Why a compilation attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The decision budget ran out before the trace was complete (the
    /// compile-time analogue of a counting time-out).
    BudgetExhausted {
        /// Branching decisions recorded before giving up.
        decisions: u64,
    },
    /// The formula projects onto more than 128 variables, exceeding the
    /// `u128` bitmask representation of per-node variable sets.
    TooManyProjectionVars {
        /// Size of the effective projection set.
        found: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::BudgetExhausted { decisions } => {
                write!(
                    f,
                    "d-DNNF compilation budget exhausted after {decisions} decisions"
                )
            }
            CompileError::TooManyProjectionVars { found } => {
                write!(
                    f,
                    "projection set of {found} variables exceeds the 128-variable limit"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Statistics of one compilation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Branching decisions recorded.
    pub decisions: u64,
    /// Component-cache probes that found a shared subtrace.
    pub cache_hits: u64,
    /// Total component-cache probes (hits + misses).
    pub cache_lookups: u64,
    /// Conflicts found by unit propagation (each one bumps the activities
    /// of the conflicting clause's variables).
    pub conflicts: u64,
    /// SAT-solver calls on projection-free components.
    pub sat_calls: u64,
    /// Cross-query probes of the attached [`SharedComponentCache`] that
    /// found a reusable sub-circuit from an earlier compilation.
    pub shared_hits: u64,
    /// Total cross-query shared-cache probes (only made on local-cache
    /// misses, and only when a shared cache is attached).
    pub shared_lookups: u64,
}

impl CompileStats {
    /// Fraction of component-cache probes answered from the cache
    /// (`0.0` when no probe was made).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Fraction of cross-query shared-cache probes answered from the cache
    /// (`0.0` when no shared cache was attached or no probe was made).
    pub fn shared_hit_rate(&self) -> f64 {
        if self.shared_lookups == 0 {
            0.0
        } else {
            self.shared_hits as f64 / self.shared_lookups as f64
        }
    }
}

/// A compiled d-DNNF circuit together with its projection set.
#[derive(Debug, Clone)]
pub struct Ddnnf {
    nodes: Vec<Node>,
    /// Projection variables mentioned by node `i` (bit `k` = `proj_vars[k]`).
    masks: Vec<u128>,
    root: NodeId,
    /// Nodes reachable from the root in topological order (children precede
    /// parents) — the evaluation schedule of the iterative count sweep.
    order: Vec<u32>,
    /// Maps a [`NodeId`] to its position in `order` (`u32::MAX` when the
    /// node is unreachable from the root).
    dense: Vec<u32>,
    /// Sorted projection variables; bit positions in masks index this list.
    proj_vars: Vec<u32>,
    /// Map from variable id to bit position.
    var_bit: HashMap<u32, u32>,
    stats: CompileStats,
}

/// Saturating `2^exp` (projection sets may have up to 128 variables).
fn pow2(exp: u32) -> u128 {
    if exp >= 128 {
        u128::MAX
    } else {
        1u128 << exp
    }
}

/// Count cell of the batched sweep: `u64` when the projection is narrow
/// enough that no count — every count is at most `2^|projection|`, and
/// decomposability keeps every intermediate product under the same bound —
/// can overflow, `u128` otherwise. The narrow cells halve the scratch
/// traffic and replace two-word arithmetic with single instructions on the
/// sweep's inner loop.
trait CountCell: Copy {
    const ZERO: Self;
    const ONE: Self;
    fn is_zero(self) -> bool;
    fn sat_mul(self, other: Self) -> Self;
    fn sat_add(self, other: Self) -> Self;
    fn pow2(exp: u32) -> Self;
    fn widen(self) -> u128;
}

impl CountCell for u64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    fn is_zero(self) -> bool {
        self == 0
    }
    fn sat_mul(self, other: Self) -> Self {
        self.saturating_mul(other)
    }
    fn sat_add(self, other: Self) -> Self {
        self.saturating_add(other)
    }
    fn pow2(exp: u32) -> Self {
        if exp >= 64 {
            u64::MAX
        } else {
            1u64 << exp
        }
    }
    fn widen(self) -> u128 {
        u128::from(self)
    }
}

impl CountCell for u128 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    fn is_zero(self) -> bool {
        self == 0
    }
    fn sat_mul(self, other: Self) -> Self {
        self.saturating_mul(other)
    }
    fn sat_add(self, other: Self) -> Self {
        self.saturating_add(other)
    }
    fn pow2(exp: u32) -> Self {
        pow2(exp)
    }
    fn widen(self) -> u128 {
        self
    }
}

impl Ddnnf {
    /// Number of nodes in the circuit (including the constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes of the circuit in topological order (children precede
    /// parents); the last retains no special role — see [`root`](Self::root).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The projection variables of the compiled formula, sorted.
    pub fn projection(&self) -> Vec<Var> {
        self.proj_vars.iter().map(|&v| Var(v)).collect()
    }

    /// Statistics of the compilation that produced this circuit.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// The number of models projected onto the projection set.
    pub fn count(&self) -> u128 {
        self.count_conditioned(&[])
    }

    /// The number of projected models consistent with `cube` — i.e. the
    /// projected count of `φ ∧ cube` — in one linear pass over the circuit,
    /// without re-running any search.
    ///
    /// Every literal of `cube` must be over a projection variable.
    /// A self-contradictory cube yields 0.
    ///
    /// # Panics
    ///
    /// Panics if a cube literal mentions a non-projection variable.
    pub fn count_conditioned(&self, cube: &[Lit]) -> u128 {
        self.count_cubes(&[cube])[0]
    }

    /// The conditioned counts of **all** `cubes` in iterative topological
    /// sweeps over the circuit: `result[i]` equals
    /// `count_conditioned(&cubes[i])`, but the circuit is traversed once
    /// per chunk of up to 64 cubes — every node evaluates the whole chunk
    /// before the sweep moves on — over one scratch buffer shared by the
    /// chunk. Chunking bounds the scratch at `64 × |circuit|` counts no
    /// matter how wide the batch: a region list of any width against a
    /// large circuit costs `⌈k / 64⌉` linear passes, never a
    /// `k × |circuit|` allocation.
    ///
    /// This is the query the compiled AccMC/DiffMC region-sum plans issue:
    /// one call per (model, φ-side) with the model's full decision-region
    /// cube list, instead of one circuit walk (and one memo allocation) per
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if a cube literal mentions a non-projection variable.
    pub fn count_cubes<C: AsRef<[Lit]>>(&self, cubes: &[C]) -> Vec<u128> {
        // Narrow projections cannot overflow a u64 count (≤ 2^|projection|,
        // and decomposability bounds every intermediate the same way), so
        // the sweep runs on single-word cells whenever it can.
        if self.proj_vars.len() < 64 {
            self.count_cubes_with::<u64, C>(cubes)
        } else {
            self.count_cubes_with::<u128, C>(cubes)
        }
    }

    fn count_cubes_with<T: CountCell, C: AsRef<[Lit]>>(&self, cubes: &[C]) -> Vec<u128> {
        const SWEEP_CHUNK: usize = 64;
        let mut counts = Vec::with_capacity(cubes.len());
        // One scratch buffer for the whole batch, reused across chunks.
        let mut scratch: Vec<T> = Vec::new();
        for chunk in cubes.chunks(SWEEP_CHUNK) {
            let parsed: Vec<Option<(u128, u128)>> =
                chunk.iter().map(|c| self.cube_masks(c.as_ref())).collect();
            counts.extend(self.sweep(&parsed, &mut scratch));
        }
        counts
    }

    /// Structural conditioning: returns the circuit of `φ ∧ cube` with the
    /// cube variables removed from the projection set (so
    /// `condition(c).count() == count_conditioned(c)` — the former counts
    /// over fewer variables, but the cube variables it drops are fixed and
    /// contribute a factor of 1).
    ///
    /// # Panics
    ///
    /// Panics if a cube literal mentions a non-projection variable.
    pub fn condition(&self, cube: &[Lit]) -> Ddnnf {
        let parsed = self.cube_masks(cube);
        let contradictory = parsed.is_none();
        let (fixed, values) = parsed.unwrap_or_else(|| {
            // Contradictory cube: still drop every mentioned variable from
            // the projection of the (False) result circuit.
            let mut fixed = 0u128;
            for &lit in cube {
                fixed |= 1u128 << self.var_bit[&lit.var().0];
            }
            (fixed, 0)
        });
        let remaining: Vec<u32> = self
            .proj_vars
            .iter()
            .copied()
            .filter(|v| fixed & (1u128 << self.var_bit[v]) == 0)
            .collect();
        let mut builder = Builder::new(remaining);
        if contradictory {
            let root = builder.false_node();
            return builder.finish(root, self.stats);
        }
        // Children precede parents, so one forward pass remaps every node.
        let mut remap: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mapped = match node {
                Node::True => builder.true_node(),
                Node::False => builder.false_node(),
                Node::Lit(l) => {
                    let bit = 1u128 << self.var_bit[&l.var().0];
                    if fixed & bit == 0 {
                        builder.lit_node(*l)
                    } else if (values & bit != 0) == l.is_positive() {
                        builder.true_node()
                    } else {
                        builder.false_node()
                    }
                }
                Node::And(children) => {
                    let mapped: Vec<NodeId> = children.iter().map(|&c| remap[c]).collect();
                    builder.and_node(mapped)
                }
                Node::Decision { var, hi, lo } => {
                    let bit = 1u128 << self.var_bit[var];
                    if fixed & bit != 0 {
                        if values & bit != 0 {
                            remap[*hi]
                        } else {
                            remap[*lo]
                        }
                    } else {
                        builder.decision_node(*var, remap[*hi], remap[*lo])
                    }
                }
            };
            remap.push(mapped);
        }
        let root = remap[self.root];
        builder.finish(root, self.stats)
    }

    /// Enumerates every projected model as a full assignment of the
    /// projection variables, sorted by variable. Intended for tests and
    /// small circuits — the output is exponential in the gap sizes.
    pub fn models(&self) -> Vec<Vec<(Var, bool)>> {
        let full = self.full_mask();
        let mut out = Vec::new();
        for (mask, values) in self.partial_models(self.root) {
            let mut expanded = Vec::new();
            expand_bits(full & !mask, values, &mut expanded);
            out.extend(expanded.into_iter().map(|v| self.unpack(full, v)));
        }
        out.sort();
        out
    }

    fn full_mask(&self) -> u128 {
        if self.proj_vars.len() == 128 {
            u128::MAX
        } else {
            (1u128 << self.proj_vars.len()) - 1
        }
    }

    /// Validates the cube and returns `(fixed, values)` bitmasks, or `None`
    /// if the cube contradicts itself.
    fn cube_masks(&self, cube: &[Lit]) -> Option<(u128, u128)> {
        let mut fixed = 0u128;
        let mut values = 0u128;
        for &lit in cube {
            let bit_index = *self
                .var_bit
                .get(&lit.var().0)
                .unwrap_or_else(|| panic!("cube literal {lit} is not a projection variable"));
            let bit = 1u128 << bit_index;
            if fixed & bit != 0 {
                if (values & bit != 0) != lit.is_positive() {
                    return None;
                }
                continue;
            }
            fixed |= bit;
            if lit.is_positive() {
                values |= bit;
            }
        }
        Some((fixed, values))
    }

    /// The batched evaluation core: one forward pass over the reachable
    /// nodes in topological order, computing the count of every cube at
    /// every node before moving on. No recursion, no per-query memo —
    /// one flat scratch buffer sized `reachable nodes × cubes`, owned by
    /// the caller so chunked batches reuse its allocation.
    ///
    /// `parsed[j]` is the `(fixed, values)` mask pair of cube `j`, or
    /// `None` for a self-contradictory cube (whose count is 0).
    fn sweep<T: CountCell>(
        &self,
        parsed: &[Option<(u128, u128)>],
        scratch: &mut Vec<T>,
    ) -> Vec<u128> {
        let k = parsed.len();
        if k == 0 {
            return Vec::new();
        }
        scratch.clear();
        scratch.resize(self.order.len() * k, T::ZERO);
        for (oi, &id) in self.order.iter().enumerate() {
            let base = oi * k;
            match &self.nodes[id as usize] {
                Node::False => {}
                Node::True => {
                    for slot in &mut scratch[base..base + k] {
                        *slot = T::ONE;
                    }
                }
                Node::Lit(l) => {
                    let bit = 1u128 << self.var_bit[&l.var().0];
                    for (j, p) in parsed.iter().enumerate() {
                        let Some((fixed, values)) = *p else { continue };
                        scratch[base + j] =
                            if fixed & bit != 0 && (values & bit != 0) != l.is_positive() {
                                T::ZERO
                            } else {
                                T::ONE
                            };
                    }
                }
                Node::And(children) => {
                    for j in 0..k {
                        if parsed[j].is_none() {
                            continue;
                        }
                        let mut total = T::ONE;
                        for &c in children {
                            let n = scratch[self.dense[c] as usize * k + j];
                            if n.is_zero() {
                                total = T::ZERO;
                                break;
                            }
                            total = total.sat_mul(n);
                        }
                        scratch[base + j] = total;
                    }
                }
                Node::Decision { var, hi, lo } => {
                    let bit = 1u128 << self.var_bit[var];
                    let scope = self.masks[id as usize] & !bit;
                    for (j, p) in parsed.iter().enumerate() {
                        let Some((fixed, values)) = *p else { continue };
                        let mut total = T::ZERO;
                        for (branch, wanted) in [(*hi, true), (*lo, false)] {
                            if fixed & bit != 0 && (values & bit != 0) != wanted {
                                continue;
                            }
                            let branch_count = scratch[self.dense[branch] as usize * k + j];
                            let gap = scope & !self.masks[branch] & !fixed;
                            total = total.sat_add(branch_count.sat_mul(T::pow2(gap.count_ones())));
                        }
                        scratch[base + j] = total;
                    }
                }
            }
        }
        let root_base = self.dense[self.root] as usize * k;
        let root_gap = self.full_mask() & !self.masks[self.root];
        parsed
            .iter()
            .enumerate()
            .map(|(j, p)| match *p {
                None => 0,
                Some((fixed, _)) => scratch[root_base + j]
                    .sat_mul(T::pow2((root_gap & !fixed).count_ones()))
                    .widen(),
            })
            .collect()
    }

    /// Partial models of the subcircuit at `node`, as `(mask, values)`
    /// bitmask pairs over the projection set.
    fn partial_models(&self, node: NodeId) -> Vec<(u128, u128)> {
        match &self.nodes[node] {
            Node::True => vec![(0, 0)],
            Node::False => Vec::new(),
            Node::Lit(l) => {
                let bit = 1u128 << self.var_bit[&l.var().0];
                vec![(bit, if l.is_positive() { bit } else { 0 })]
            }
            Node::And(children) => {
                let mut acc = vec![(0u128, 0u128)];
                for &c in children {
                    let child = self.partial_models(c);
                    let mut next = Vec::with_capacity(acc.len() * child.len());
                    for &(am, av) in &acc {
                        for &(cm, cv) in &child {
                            next.push((am | cm, av | cv));
                        }
                    }
                    acc = next;
                }
                acc
            }
            Node::Decision { var, hi, lo } => {
                let bit = 1u128 << self.var_bit[var];
                let scope = self.masks[node];
                let mut out = Vec::new();
                for (branch, value) in [(*hi, bit), (*lo, 0)] {
                    for (m, v) in self.partial_models(branch) {
                        // Smooth inside the decision scope so every partial
                        // from this node covers the same variable set.
                        let mut expanded = Vec::new();
                        expand_bits(scope & !bit & !m, v | value, &mut expanded);
                        out.extend(expanded.into_iter().map(|v| (scope, v)));
                    }
                }
                out
            }
        }
    }

    /// Renders the variables selected by `mask` with their `values` bits.
    fn unpack(&self, mask: u128, values: u128) -> Vec<(Var, bool)> {
        self.proj_vars
            .iter()
            .enumerate()
            .filter(|&(k, _)| mask & (1u128 << k) != 0)
            .map(|(k, &v)| (Var(v), values & (1u128 << k) != 0))
            .collect()
    }
}

/// Why a circuit byte image was rejected by [`Ddnnf::from_bytes`].
///
/// The message names the structural invariant that failed (bad magic,
/// out-of-range child id, non-projection literal, …); callers that persist
/// circuits typically map this to [`std::io::ErrorKind::InvalidData`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed d-DNNF image: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Magic prefix of a serialized circuit image (`"ddn1"`), bumped when the
/// byte layout changes so a stale image fails loudly instead of decoding
/// into garbage.
const IMAGE_MAGIC: [u8; 4] = *b"ddn1";

/// Node tags of the serialized image.
const TAG_FALSE: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_LIT: u8 = 2;
const TAG_AND: u8 = 3;
const TAG_DECISION: u8 = 4;

/// Little-endian cursor over a circuit byte image.
struct ImageReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ImageReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| DecodeError(format!("truncated at byte {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Ddnnf {
    /// Serializes the circuit into a self-contained little-endian byte
    /// image: projection set, compile statistics, root and the node list
    /// (children by id). Variable masks and the evaluation schedule are
    /// *not* stored — [`from_bytes`](Self::from_bytes) recomputes them, so
    /// the image stays compact and the derived structures can never
    /// disagree with the nodes they were derived from. The cross-query
    /// shared-cache counters are not stored either: they describe the batch
    /// the circuit was compiled in, not the circuit, and keeping them out
    /// leaves the `ddn1` layout unchanged.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            self.nodes.len() <= u32::MAX as usize,
            "circuit too large for the u32 node-id image format"
        );
        let mut out = Vec::with_capacity(32 + self.nodes.len() * 8);
        out.extend_from_slice(&IMAGE_MAGIC);
        out.extend_from_slice(&(self.proj_vars.len() as u32).to_le_bytes());
        for &v in &self.proj_vars {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for s in [
            self.stats.decisions,
            self.stats.cache_hits,
            self.stats.cache_lookups,
            self.stats.conflicts,
            self.stats.sat_calls,
        ] {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.root as u32).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for node in &self.nodes {
            match node {
                Node::False => out.push(TAG_FALSE),
                Node::True => out.push(TAG_TRUE),
                Node::Lit(l) => {
                    out.push(TAG_LIT);
                    out.extend_from_slice(&(l.code() as u32).to_le_bytes());
                }
                Node::And(children) => {
                    out.push(TAG_AND);
                    out.extend_from_slice(&(children.len() as u32).to_le_bytes());
                    for &c in children {
                        out.extend_from_slice(&(c as u32).to_le_bytes());
                    }
                }
                Node::Decision { var, hi, lo } => {
                    out.push(TAG_DECISION);
                    out.extend_from_slice(&var.to_le_bytes());
                    out.extend_from_slice(&(*hi as u32).to_le_bytes());
                    out.extend_from_slice(&(*lo as u32).to_le_bytes());
                }
            }
        }
        out
    }

    /// Reconstructs a circuit from a [`to_bytes`](Self::to_bytes) image,
    /// revalidating every structural invariant the counting sweeps rely on:
    /// the projection set is sorted and within the 128-variable bitmask
    /// limit, every child id points *below* its parent (so the node list is
    /// acyclic and topologically ordered), and every literal or decision
    /// variable belongs to the projection set. Masks, the evaluation
    /// schedule and the variable-bit map are recomputed from the validated
    /// nodes. Any violation — including trailing garbage — is a
    /// [`DecodeError`], never a panic or a silently wrong circuit shape.
    pub fn from_bytes(bytes: &[u8]) -> Result<Ddnnf, DecodeError> {
        let mut r = ImageReader { bytes, pos: 0 };
        if r.take(4)? != IMAGE_MAGIC {
            return Err(DecodeError("bad magic".to_string()));
        }
        let proj_len = r.u32()? as usize;
        if proj_len > 128 {
            return Err(DecodeError(format!(
                "projection set of {proj_len} variables exceeds the 128-variable limit"
            )));
        }
        let mut proj_vars = Vec::with_capacity(proj_len);
        for _ in 0..proj_len {
            proj_vars.push(r.u32()?);
        }
        if !proj_vars.windows(2).all(|w| w[0] < w[1]) {
            return Err(DecodeError(
                "projection variables must be strictly ascending".to_string(),
            ));
        }
        let var_bit: HashMap<u32, u32> = proj_vars
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, k as u32))
            .collect();
        let stats = CompileStats {
            decisions: r.u64()?,
            cache_hits: r.u64()?,
            cache_lookups: r.u64()?,
            conflicts: r.u64()?,
            sat_calls: r.u64()?,
            ..CompileStats::default()
        };
        let root = r.u32()? as NodeId;
        let num_nodes = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(num_nodes.min(1 << 20));
        let mut masks = Vec::with_capacity(num_nodes.min(1 << 20));
        for id in 0..num_nodes {
            let child = |c: u32| -> Result<NodeId, DecodeError> {
                if (c as usize) < id {
                    Ok(c as NodeId)
                } else {
                    Err(DecodeError(format!(
                        "node {id} references child {c} at or above itself"
                    )))
                }
            };
            let proj_bit = |v: u32| -> Result<u128, DecodeError> {
                var_bit
                    .get(&v)
                    .map(|&bit| 1u128 << bit)
                    .ok_or_else(|| DecodeError(format!("variable {v} is not in the projection")))
            };
            let (node, mask) = match r.u8()? {
                TAG_FALSE => (Node::False, 0),
                TAG_TRUE => (Node::True, 0),
                TAG_LIT => {
                    let lit = Lit::from_code(r.u32()? as usize);
                    let mask = proj_bit(lit.var().0)?;
                    (Node::Lit(lit), mask)
                }
                TAG_AND => {
                    let len = r.u32()? as usize;
                    let mut children = Vec::with_capacity(len.min(1 << 20));
                    let mut mask = 0u128;
                    for _ in 0..len {
                        let c = child(r.u32()?)?;
                        mask |= masks[c];
                        children.push(c);
                    }
                    (Node::And(children), mask)
                }
                TAG_DECISION => {
                    let var = r.u32()?;
                    let hi = child(r.u32()?)?;
                    let lo = child(r.u32()?)?;
                    let mask = proj_bit(var)? | masks[hi] | masks[lo];
                    (Node::Decision { var, hi, lo }, mask)
                }
                tag => return Err(DecodeError(format!("node {id} has unknown tag {tag}"))),
            };
            nodes.push(node);
            masks.push(mask);
        }
        if r.pos != bytes.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after the node list",
                bytes.len() - r.pos
            )));
        }
        if root >= nodes.len() {
            return Err(DecodeError(format!(
                "root {root} out of range for {} nodes",
                nodes.len()
            )));
        }
        let (order, dense) = evaluation_schedule(&nodes, root);
        Ok(Ddnnf {
            nodes,
            masks,
            root,
            order,
            dense,
            proj_vars,
            var_bit,
            stats,
        })
    }
}

/// Expands every bit of `gap` both ways, pushing the completed value masks.
fn expand_bits(gap: u128, values: u128, out: &mut Vec<u128>) {
    if gap == 0 {
        out.push(values);
        return;
    }
    let bit = 1u128 << gap.trailing_zeros();
    expand_bits(gap & !bit, values, out);
    expand_bits(gap & !bit, values | bit, out);
}

/// Hash-consing circuit builder shared by the compiler and
/// [`Ddnnf::condition`].
struct Builder {
    nodes: Vec<Node>,
    masks: Vec<u128>,
    unique: FxHashMap<Node, NodeId>,
    proj_vars: Vec<u32>,
    var_bit: HashMap<u32, u32>,
}

impl Builder {
    fn new(mut proj_vars: Vec<u32>) -> Self {
        proj_vars.sort_unstable();
        proj_vars.dedup();
        let var_bit: HashMap<u32, u32> = proj_vars
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, k as u32))
            .collect();
        let mut b = Builder {
            nodes: Vec::new(),
            masks: Vec::new(),
            unique: FxHashMap::default(),
            proj_vars,
            var_bit,
        };
        // Interned constants at fixed slots.
        b.intern(Node::False, 0);
        b.intern(Node::True, 0);
        b
    }

    fn intern(&mut self, node: Node, mask: u128) -> NodeId {
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.masks.push(mask);
        self.unique.insert(node, id);
        id
    }

    fn false_node(&mut self) -> NodeId {
        0
    }

    fn true_node(&mut self) -> NodeId {
        1
    }

    fn lit_node(&mut self, lit: Lit) -> NodeId {
        let bit = 1u128 << self.var_bit[&lit.var().0];
        self.intern(Node::Lit(lit), bit)
    }

    /// Conjunction with constant folding and flattening of single children.
    fn and_node(&mut self, children: Vec<NodeId>) -> NodeId {
        let mut flat: Vec<NodeId> = Vec::with_capacity(children.len());
        for c in children {
            match self.nodes[c] {
                Node::False => return self.false_node(),
                Node::True => continue,
                _ => flat.push(c),
            }
        }
        match flat.len() {
            0 => self.true_node(),
            1 => flat[0],
            _ => {
                flat.sort_unstable();
                flat.dedup();
                if flat.len() == 1 {
                    return flat[0];
                }
                let mask = flat.iter().fold(0u128, |m, &c| {
                    debug_assert_eq!(m & self.masks[c], 0, "And children must be disjoint");
                    m | self.masks[c]
                });
                self.intern(Node::And(flat), mask)
            }
        }
    }

    /// Decision node with the standard BDD-style reductions.
    fn decision_node(&mut self, var: u32, hi: NodeId, lo: NodeId) -> NodeId {
        if hi == lo {
            // (v ∧ A) ∨ (¬v ∧ A) = A; v moves into the enclosing gap.
            return hi;
        }
        if self.nodes[hi] == Node::True && self.nodes[lo] == Node::False {
            return self.lit_node(Lit::pos(var));
        }
        if self.nodes[hi] == Node::False && self.nodes[lo] == Node::True {
            return self.lit_node(Lit::neg(var));
        }
        let mask = (1u128 << self.var_bit[&var]) | self.masks[hi] | self.masks[lo];
        self.intern(Node::Decision { var, hi, lo }, mask)
    }

    fn finish(self, root: NodeId, stats: CompileStats) -> Ddnnf {
        let (order, dense) = evaluation_schedule(&self.nodes, root);
        Ddnnf {
            nodes: self.nodes,
            masks: self.masks,
            root,
            order,
            dense,
            proj_vars: self.proj_vars,
            var_bit: self.var_bit,
            stats,
        }
    }
}

/// Marks the nodes reachable from the root and derives the evaluation
/// schedule. Children always carry smaller ids than their parents (the
/// builder interns bottom-up, and the deserializer verifies it), so a
/// single high-to-low pass settles reachability, and the ascending id
/// order of the marked nodes is a topological evaluation schedule.
fn evaluation_schedule(nodes: &[Node], root: NodeId) -> (Vec<u32>, Vec<u32>) {
    let mut reachable = vec![false; nodes.len()];
    reachable[root] = true;
    for id in (0..nodes.len()).rev() {
        if !reachable[id] {
            continue;
        }
        match &nodes[id] {
            Node::And(children) => {
                for &c in children {
                    reachable[c] = true;
                }
            }
            Node::Decision { hi, lo, .. } => {
                reachable[*hi] = true;
                reachable[*lo] = true;
            }
            _ => {}
        }
    }
    let mut order = Vec::new();
    let mut dense = vec![u32::MAX; nodes.len()];
    for (id, &r) in reachable.iter().enumerate() {
        if r {
            dense[id] = order.len() as u32;
            order.push(id as u32);
        }
    }
    (order, dense)
}

/// The d-DNNF compiler: a projected #SAT search that records its trace.
#[derive(Debug, Clone)]
pub struct Compiler {
    max_decisions: u64,
    shared: Option<Arc<SharedComponentCache>>,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with no decision budget.
    pub fn new() -> Self {
        Compiler {
            max_decisions: u64::MAX,
            shared: None,
        }
    }

    /// A compiler that aborts after `max_decisions` branching decisions —
    /// the compile-time analogue of [`modelcount`]'s node budget.
    ///
    /// [`modelcount`]: https://docs.rs/modelcount
    pub fn with_decision_budget(max_decisions: u64) -> Self {
        Compiler {
            max_decisions,
            shared: None,
        }
    }

    /// Attaches a cross-query [`SharedComponentCache`]: local component
    /// misses probe (and, when freshly compiled, feed) the shared cache, so
    /// later compilations over the same variable numbering — φ then φ∧ψ,
    /// or the label CNFs of a batch — splice in this run's sub-circuits
    /// instead of re-searching them.
    pub fn with_shared_cache(mut self, cache: Arc<SharedComponentCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Compiles `cnf` into a d-DNNF circuit whose counts are projected onto
    /// the formula's effective projection set.
    pub fn compile(&self, cnf: &Cnf) -> Result<Ddnnf, CompileError> {
        let projection: Vec<u32> = cnf.effective_projection().iter().map(|v| v.0).collect();
        if projection.len() > 128 {
            return Err(CompileError::TooManyProjectionVars {
                found: projection.len(),
            });
        }
        let mut builder = Builder::new(projection);

        // Intern the normalized clauses into the flat arena.
        let mut pool: Vec<Lit> = Vec::with_capacity(cnf.num_literals());
        let mut starts: Vec<u32> = vec![0];
        let mut contradiction = false;
        for c in cnf.clauses() {
            match c.normalized() {
                None => continue,
                Some(n) => {
                    if n.is_empty() {
                        contradiction = true;
                        break;
                    }
                    pool.extend_from_slice(n.lits());
                    starts.push(pool.len() as u32);
                }
            }
        }
        if contradiction {
            let root = builder.false_node();
            return Ok(builder.finish(root, CompileStats::default()));
        }

        let num_vars = cnf.num_vars();
        let num_clauses = starts.len() - 1;
        let mut occ: Vec<Vec<ClauseId>> = vec![Vec::new(); 2 * num_vars];
        let mut free_count: Vec<u32> = Vec::with_capacity(num_clauses);
        let mut activity: Vec<f64> = vec![0.0; num_vars];
        for c in 0..num_clauses {
            let lits = &pool[starts[c] as usize..starts[c + 1] as usize];
            free_count.push(lits.len() as u32);
            for &l in lits {
                occ[l.code()].push(c as ClauseId);
                // Seed activities from occurrence counts, so the very first
                // branchings reproduce the classic most-occurrences pick.
                activity[l.var().index()] += 1.0;
            }
        }
        let mut is_proj = vec![false; num_vars];
        for &v in &builder.proj_vars {
            if (v as usize) < num_vars {
                is_proj[v as usize] = true;
            }
        }

        let mut search = Search {
            pool,
            starts,
            occ,
            is_proj,
            value: vec![UNASSIGNED; num_vars],
            free_count,
            satisfier: vec![NO_SATISFIER; num_clauses],
            trail: Vec::with_capacity(num_vars),
            activity,
            var_inc: 1.0,
            clause_stamp: vec![0; num_clauses],
            var_stamp: vec![0; num_vars],
            stamp: 0,
            cache: FxHashMap::default(),
            shared: self.shared.clone(),
            depth: 0,
            stats: CompileStats::default(),
            max_decisions: self.max_decisions,
            exhausted: false,
        };
        let all_clauses: Vec<ClauseId> = (0..num_clauses as ClauseId).collect();
        let initial_units: Vec<ClauseId> = all_clauses
            .iter()
            .copied()
            .filter(|&c| search.free_count[c as usize] == 1)
            .collect();
        let root = search.compile_subproblem(&all_clauses, initial_units, None, &mut builder);
        if search.exhausted {
            return Err(CompileError::BudgetExhausted {
                decisions: search.stats.decisions,
            });
        }
        Ok(builder.finish(root, search.stats))
    }
}

const UNASSIGNED: u8 = 2;
const NO_SATISFIER: u32 = u32::MAX;

/// Cache key of one interned component: the sorted arena clause ids plus
/// the sorted free variables, with a precomputed 64-bit signature. Hashing
/// writes only the signature (an O(1) probe); equality compares the full
/// key, so a signature collision can never corrupt a count.
struct CompKey {
    sig: u64,
    clauses: Box<[ClauseId]>,
    vars: Box<[u32]>,
}

impl CompKey {
    fn new(clauses: Vec<ClauseId>, vars: Vec<u32>) -> Self {
        let mut sig: u64 = 0x243F_6A88_85A3_08D3;
        for &c in &clauses {
            sig = splitmix64(sig ^ (u64::from(c) + 1));
        }
        sig = splitmix64(sig ^ 0x9E37_79B9_7F4A_7C15);
        for &v in &vars {
            sig = splitmix64(sig ^ (u64::from(v) + 1));
        }
        CompKey {
            sig,
            clauses: clauses.into_boxed_slice(),
            vars: vars.into_boxed_slice(),
        }
    }
}

impl Hash for CompKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.sig);
    }
}

impl PartialEq for CompKey {
    fn eq(&self, other: &Self) -> bool {
        self.sig == other.sig && self.clauses == other.clauses && self.vars == other.vars
    }
}

impl Eq for CompKey {}

/// One stage of splitmix64 — the signature mixer of [`CompKey`].
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content-addressed key of a shared (cross-query) component: the canonical
/// length-prefixed encoding of its residual clauses (per-clause literal
/// codes sorted, clause list sorted and deduplicated) plus the sorted
/// projection members of its free variables, with a precomputed 64-bit
/// signature. Unlike [`CompKey`], which names clauses by per-run arena ids,
/// this key survives across compilation runs: equal keys mean equal
/// residual Boolean functions over equal variables with equal projection
/// membership, so any valid d-DNNF of one is a valid d-DNNF of the other.
struct PortableKey {
    sig: u64,
    data: Box<[u32]>,
    proj: Box<[u32]>,
}

impl PortableKey {
    fn new(data: Vec<u32>, proj: Vec<u32>) -> Self {
        let mut sig: u64 = 0x4528_21E6_38D0_1377;
        for &w in &data {
            sig = splitmix64(sig ^ (u64::from(w) + 1));
        }
        sig = splitmix64(sig ^ 0x9E37_79B9_7F4A_7C15);
        for &v in &proj {
            sig = splitmix64(sig ^ (u64::from(v) + 1));
        }
        PortableKey {
            sig,
            data: data.into_boxed_slice(),
            proj: proj.into_boxed_slice(),
        }
    }
}

impl Hash for PortableKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.sig);
    }
}

impl PartialEq for PortableKey {
    fn eq(&self, other: &Self) -> bool {
        self.sig == other.sig && self.data == other.data && self.proj == other.proj
    }
}

impl Eq for PortableKey {}

/// One node of a [`PortableCircuit`], referencing children by local index.
#[derive(Debug)]
enum PortableNode {
    False,
    True,
    Lit(Lit),
    And(Box<[u32]>),
    Decision { var: u32, hi: u32, lo: u32 },
}

/// A self-contained sub-circuit image stored by the shared cache: nodes in
/// children-before-parents order with local ids. Importable into any
/// [`Builder`] whose projection covers the circuit's variables — which a
/// [`PortableKey`] match guarantees, because the key records the projection
/// membership of every free variable.
#[derive(Debug)]
struct PortableCircuit {
    nodes: Vec<PortableNode>,
    root: u32,
}

/// Components larger than this are recompiled rather than copied through
/// the shared cache's lock: past a few thousand nodes the copy (and the
/// lock hold) costs more than the compile it would save.
const EXPORT_NODE_CAP: usize = 4096;

/// Components with fewer residual clauses than this skip the shared cache
/// entirely — no key, no probe, no export. The recursion bottoms out in a
/// stream of tiny components whose canonical keys cost more to build than
/// the one or two decisions a hit would save; sharing only pays for the
/// larger components where real compilation work is at stake.
const MIN_SHARED_CLAUSES: usize = 4;

/// Components discovered deeper than this many decisions skip the shared
/// cache. Cross-query reuse comes from whole sub-formulas — φ inside φ∧ψ,
/// the ground-truth clauses inside a label CNF — which component
/// decomposition isolates at or near the top of the search; the deep
/// residual components are query-specific, so keying and exporting each of
/// them taxes every cold compile for hits that never come.
const MAX_SHARED_DEPTH: usize = 1;

impl PortableCircuit {
    /// Extracts the reachable subgraph under `root` from `builder`, or
    /// `None` when it exceeds [`EXPORT_NODE_CAP`]. Traversal touches only
    /// the reachable nodes (with an early exit at the cap), so the cost
    /// scales with the exported component, not with the whole builder —
    /// components are exported once per local-cache miss, and a scan over
    /// every interned node each time would be quadratic across a run.
    fn export(builder: &Builder, root: NodeId) -> Option<PortableCircuit> {
        let mut ids: Vec<NodeId> = Vec::new();
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        seen.insert(root);
        while let Some(id) = stack.pop() {
            ids.push(id);
            if ids.len() > EXPORT_NODE_CAP {
                return None;
            }
            let mut visit = |c: NodeId, stack: &mut Vec<NodeId>| {
                if seen.insert(c) {
                    stack.push(c);
                }
            };
            match &builder.nodes[id] {
                Node::And(children) => {
                    for &c in children {
                        visit(c, &mut stack);
                    }
                }
                Node::Decision { hi, lo, .. } => {
                    visit(*hi, &mut stack);
                    visit(*lo, &mut stack);
                }
                _ => {}
            }
        }
        // The builder interns bottom-up (children carry smaller ids), so
        // ascending id order is already topological; children then map to
        // local indices by binary search over the sorted id list.
        ids.sort_unstable();
        let local = |ids: &[NodeId], c: NodeId| -> u32 {
            ids.binary_search(&c).expect("child was visited") as u32
        };
        let mut nodes = Vec::with_capacity(ids.len());
        for &id in &ids {
            nodes.push(match &builder.nodes[id] {
                Node::False => PortableNode::False,
                Node::True => PortableNode::True,
                Node::Lit(l) => PortableNode::Lit(*l),
                Node::And(children) => {
                    PortableNode::And(children.iter().map(|&c| local(&ids, c)).collect())
                }
                Node::Decision { var, hi, lo } => PortableNode::Decision {
                    var: *var,
                    hi: local(&ids, *hi),
                    lo: local(&ids, *lo),
                },
            });
        }
        Some(PortableCircuit {
            nodes,
            root: local(&ids, root),
        })
    }

    /// Splices the circuit into `builder`, returning the new id of the
    /// root. Hash-consing and the builder's reductions apply as usual, so
    /// an import never duplicates nodes the builder already holds.
    fn import(&self, builder: &mut Builder) -> NodeId {
        let mut map: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let id = match node {
                PortableNode::False => builder.false_node(),
                PortableNode::True => builder.true_node(),
                PortableNode::Lit(l) => builder.lit_node(*l),
                PortableNode::And(children) => {
                    let mapped: Vec<NodeId> = children.iter().map(|&c| map[c as usize]).collect();
                    builder.and_node(mapped)
                }
                PortableNode::Decision { var, hi, lo } => {
                    builder.decision_node(*var, map[*hi as usize], map[*lo as usize])
                }
            };
            map.push(id);
        }
        map[self.root as usize]
    }
}

/// Entries beyond this are not inserted (existing keys still refresh), so a
/// pathological batch cannot grow the shared cache without bound.
const SHARED_CACHE_CAPACITY: usize = 1 << 16;

struct SharedEntry {
    circuit: Arc<PortableCircuit>,
    /// Generation of the last insert or hit — the eviction criterion of
    /// [`SharedComponentCache::advance_generation`].
    stamp: u64,
}

struct SharedInner {
    entries: FxHashMap<PortableKey, SharedEntry>,
    generation: u64,
}

/// A thread-safe, generation-stamped cache of compiled components shared
/// **across** compilation runs.
///
/// The per-run component cache keys components by arena [`ClauseId`]s,
/// which are meaningless outside the run that interned them; it dies with
/// its `Builder`. A `SharedComponentCache` instead keys component *content*
/// (the internal `PortableKey`: canonical residual clauses plus projection
/// membership) and stores self-contained sub-circuits, so φ,
/// φ∧ψ and the per-family label CNFs of one batch — which share most of
/// their connected components under a common variable numbering — reuse
/// each other's compilation work. Attach one with
/// [`Compiler::with_shared_cache`]; [`CompileStats::shared_hits`] /
/// [`CompileStats::shared_lookups`] surface the per-run cross-query hit
/// rate, and [`hits`](Self::hits) / [`lookups`](Self::lookups) the
/// cumulative one.
///
/// Entries are generation-stamped: a probe hit restamps the entry with the
/// current generation, and [`advance_generation`](Self::advance_generation)
/// drops every entry the generation that just ended never touched before
/// opening the next one. A long-lived owner (a batch counter, a query
/// server) calls it at batch boundaries to bound the cache to its live
/// working set.
pub struct SharedComponentCache {
    inner: Mutex<SharedInner>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl Default for SharedComponentCache {
    fn default() -> Self {
        SharedComponentCache::new()
    }
}

impl std::fmt::Debug for SharedComponentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (len, generation) = {
            let inner = self.inner.lock().expect("shared cache poisoned");
            (inner.entries.len(), inner.generation)
        };
        f.debug_struct("SharedComponentCache")
            .field("entries", &len)
            .field("generation", &generation)
            .field("hits", &self.hits())
            .field("lookups", &self.lookups())
            .finish()
    }
}

impl SharedComponentCache {
    /// An empty cache at generation 0.
    pub fn new() -> Self {
        SharedComponentCache {
            inner: Mutex::new(SharedInner {
                entries: FxHashMap::default(),
                generation: 0,
            }),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    /// Closes the current generation: drops every entry it never inserted
    /// or hit, then opens the next one. Call at batch boundaries to keep
    /// the cache bounded to the working set of the batch that just ran.
    pub fn advance_generation(&self) {
        let mut inner = self.inner.lock().expect("shared cache poisoned");
        let current = inner.generation;
        inner.entries.retain(|_, e| e.stamp == current);
        inner.generation += 1;
    }

    /// The current generation (starts at 0, bumped by
    /// [`advance_generation`](Self::advance_generation)).
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("shared cache poisoned").generation
    }

    /// Number of cached components.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("shared cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no component.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative cross-query probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative cross-query probes.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    fn lookup(&self, key: &PortableKey) -> Option<Arc<PortableCircuit>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("shared cache poisoned");
        let generation = inner.generation;
        let entry = inner.entries.get_mut(key)?;
        entry.stamp = generation;
        let circuit = Arc::clone(&entry.circuit);
        drop(inner);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(circuit)
    }

    fn store(&self, key: PortableKey, circuit: PortableCircuit) {
        let mut inner = self.inner.lock().expect("shared cache poisoned");
        if inner.entries.len() >= SHARED_CACHE_CAPACITY && !inner.entries.contains_key(&key) {
            return;
        }
        let stamp = inner.generation;
        inner.entries.insert(
            key,
            SharedEntry {
                circuit: Arc::new(circuit),
                stamp,
            },
        );
    }
}

/// A connected component of the residual formula under the current
/// assignment: sorted active clause ids and sorted free variables.
struct Component {
    clauses: Vec<ClauseId>,
    vars: Vec<u32>,
}

/// The compiler's search state: clause arena, occurrence lists, the
/// counter-based assignment trail, VSIDS-style activities and the
/// signature-keyed component cache.
struct Search {
    /// Flat literal arena; clause `c` is `pool[starts[c]..starts[c+1]]`.
    pool: Vec<Lit>,
    starts: Vec<u32>,
    /// `occ[lit.code()]` lists the clauses containing `lit`.
    occ: Vec<Vec<ClauseId>>,
    is_proj: Vec<bool>,
    /// Per-variable assignment (false / true / [`UNASSIGNED`]).
    value: Vec<u8>,
    /// Per-clause count of unassigned literals.
    free_count: Vec<u32>,
    /// Per-clause first satisfying variable ([`NO_SATISFIER`] = active).
    satisfier: Vec<u32>,
    trail: Vec<Lit>,
    activity: Vec<f64>,
    var_inc: f64,
    /// Generation stamps of the component walk (no per-split allocation).
    clause_stamp: Vec<u32>,
    var_stamp: Vec<u32>,
    stamp: u32,
    cache: FxHashMap<CompKey, NodeId>,
    /// The cross-query cache, when the [`Compiler`] attached one.
    shared: Option<Arc<SharedComponentCache>>,
    /// Decisions on the current search path — the shared cache only admits
    /// components found within [`MAX_SHARED_DEPTH`] of the top.
    depth: usize,
    stats: CompileStats,
    max_decisions: u64,
    exhausted: bool,
}

impl Search {
    fn clause_range(&self, c: ClauseId) -> (usize, usize) {
        (
            self.starts[c as usize] as usize,
            self.starts[c as usize + 1] as usize,
        )
    }

    /// Asserts `lit`: marks newly satisfied clauses, decrements free
    /// counters on the falsified side, queues clauses that became unit and
    /// reports the first clause falsified outright. Counters stay
    /// consistent even on conflict, so [`undo_to`](Self::undo_to) always
    /// restores the prior state exactly.
    fn assign(&mut self, lit: Lit, pending: &mut Vec<ClauseId>) -> Result<(), ClauseId> {
        let v = lit.var().index();
        debug_assert_eq!(self.value[v], UNASSIGNED);
        self.value[v] = u8::from(lit.is_positive());
        self.trail.push(lit);
        let code = lit.code();
        for i in 0..self.occ[code].len() {
            let c = self.occ[code][i] as usize;
            if self.satisfier[c] == NO_SATISFIER {
                self.satisfier[c] = v as u32;
            }
        }
        let ncode = (!lit).code();
        let mut conflict = None;
        for i in 0..self.occ[ncode].len() {
            let c = self.occ[ncode][i];
            let cu = c as usize;
            self.free_count[cu] -= 1;
            if self.satisfier[cu] == NO_SATISFIER {
                match self.free_count[cu] {
                    0 if conflict.is_none() => conflict = Some(c),
                    1 => pending.push(c),
                    _ => {}
                }
            }
        }
        match conflict {
            Some(c) => Err(c),
            None => Ok(()),
        }
    }

    /// Exhaustive unit propagation from the queued unit clauses.
    fn propagate(&mut self, mut pending: Vec<ClauseId>) -> Result<(), ClauseId> {
        let mut i = 0;
        while i < pending.len() {
            let c = pending[i];
            i += 1;
            let cu = c as usize;
            if self.satisfier[cu] != NO_SATISFIER || self.free_count[cu] != 1 {
                continue;
            }
            let (s, e) = self.clause_range(c);
            let lit = self.pool[s..e]
                .iter()
                .copied()
                .find(|&l| self.value[l.var().index()] == UNASSIGNED)
                .expect("a unit clause has exactly one unassigned literal");
            self.assign(lit, &mut pending)?;
        }
        Ok(())
    }

    /// Unwinds the trail to `mark`, restoring satisfier marks and free
    /// counters (reverse order guarantees first-satisfier bookkeeping).
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let lit = self.trail.pop().expect("trail is longer than mark");
            let v = lit.var().index();
            self.value[v] = UNASSIGNED;
            let code = lit.code();
            for i in 0..self.occ[code].len() {
                let c = self.occ[code][i] as usize;
                if self.satisfier[c] == v as u32 {
                    self.satisfier[c] = NO_SATISFIER;
                }
            }
            let ncode = (!lit).code();
            for i in 0..self.occ[ncode].len() {
                let c = self.occ[ncode][i] as usize;
                self.free_count[c] += 1;
            }
        }
    }

    /// Bumps a variable's activity, rescaling on overflow.
    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// Records a conflict: bump every variable of the falsified clause.
    fn on_conflict(&mut self, c: ClauseId) {
        self.stats.conflicts += 1;
        let (s, e) = self.clause_range(c);
        for i in s..e {
            let v = self.pool[i].var().index();
            self.bump(v);
        }
    }

    /// Per-decision activity decay (implemented as inverse increment
    /// growth, MiniSat-style).
    fn decay(&mut self) {
        self.var_inc *= 1.0 / 0.95;
    }

    /// Splits the active clauses of the current subproblem into connected
    /// components of the free-variable interaction graph, walking the
    /// occurrence lists under generation stamps (no per-split hash maps).
    fn split_components(&mut self, clauses: &[ClauseId]) -> Vec<Component> {
        if self.stamp == u32::MAX {
            self.clause_stamp.fill(0);
            self.var_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let mut comps: Vec<Component> = Vec::new();
        let mut queue: Vec<ClauseId> = Vec::new();
        for &seed in clauses {
            if self.satisfier[seed as usize] != NO_SATISFIER
                || self.clause_stamp[seed as usize] == stamp
            {
                continue;
            }
            self.clause_stamp[seed as usize] = stamp;
            queue.clear();
            queue.push(seed);
            let mut comp_clauses: Vec<ClauseId> = Vec::new();
            let mut comp_vars: Vec<u32> = Vec::new();
            while let Some(c) = queue.pop() {
                comp_clauses.push(c);
                let (s, e) = self.clause_range(c);
                for i in s..e {
                    let l = self.pool[i];
                    let v = l.var().index();
                    if self.value[v] != UNASSIGNED || self.var_stamp[v] == stamp {
                        continue;
                    }
                    self.var_stamp[v] = stamp;
                    comp_vars.push(v as u32);
                    for code in [Lit::pos(v as u32).code(), Lit::neg(v as u32).code()] {
                        for j in 0..self.occ[code].len() {
                            let c2 = self.occ[code][j];
                            if self.satisfier[c2 as usize] != NO_SATISFIER
                                || self.clause_stamp[c2 as usize] == stamp
                            {
                                continue;
                            }
                            self.clause_stamp[c2 as usize] = stamp;
                            queue.push(c2);
                        }
                    }
                }
            }
            comp_clauses.sort_unstable();
            comp_vars.sort_unstable();
            comps.push(Component {
                clauses: comp_clauses,
                vars: comp_vars,
            });
        }
        // Smallest components first, like the original compiler, so an
        // early False child short-circuits the expensive siblings.
        comps.sort_by_key(|c| c.clauses.len());
        comps
    }

    /// Compiles a subproblem (a clause set plus queued units): propagate,
    /// turn fixed projection literals into leaves, decompose, recurse.
    /// `split_credit` names the decision variable to reward when its
    /// propagation decomposed the component.
    fn compile_subproblem(
        &mut self,
        clauses: &[ClauseId],
        pending: Vec<ClauseId>,
        split_credit: Option<u32>,
        builder: &mut Builder,
    ) -> NodeId {
        if self.exhausted {
            return builder.false_node();
        }
        let mark = self.trail.len();
        if let Err(c) = self.propagate(pending) {
            self.on_conflict(c);
            self.undo_to(mark);
            return builder.false_node();
        }
        let mut children: Vec<NodeId> = Vec::new();
        for i in mark..self.trail.len() {
            let l = self.trail[i];
            if self.is_proj[l.var().index()] {
                children.push(builder.lit_node(l));
            }
        }
        let comps = self.split_components(clauses);
        if comps.len() > 1 {
            if let Some(v) = split_credit {
                self.bump(v as usize);
            }
        }
        for comp in comps {
            let child = self.compile_component(comp, builder);
            children.push(child);
            if child == builder.false_node() {
                // A False child annihilates the conjunction; skip siblings.
                break;
            }
        }
        self.undo_to(mark);
        builder.and_node(children)
    }

    /// Compiles one component: probe the run-local signature-keyed cache,
    /// then the cross-query shared cache (importing a hit's portable
    /// sub-circuit), pick the highest-activity projection variable, branch
    /// (or SAT-check a projection-free component), cache the node both
    /// locally and — freshly compiled, within the export cap — shared.
    fn compile_component(&mut self, comp: Component, builder: &mut Builder) -> NodeId {
        if self.exhausted {
            return builder.false_node();
        }
        let key = CompKey::new(comp.clauses, comp.vars);
        self.stats.cache_lookups += 1;
        if let Some(&id) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return id;
        }
        let portable = self
            .shared
            .clone()
            .filter(|_| self.depth <= MAX_SHARED_DEPTH && key.clauses.len() >= MIN_SHARED_CLAUSES)
            .map(|shared| (shared, self.portable_key(&key)));
        if let Some((shared, pk)) = &portable {
            self.stats.shared_lookups += 1;
            if let Some(circuit) = shared.lookup(pk) {
                self.stats.shared_hits += 1;
                let id = circuit.import(builder);
                self.cache.insert(key, id);
                return id;
            }
        }
        let mut branch: Option<u32> = None;
        for &v in key.vars.iter() {
            if !self.is_proj[v as usize] {
                continue;
            }
            match branch {
                None => branch = Some(v),
                // Strict `>` with ascending iteration = smallest id on ties.
                Some(b) => {
                    if self.activity[v as usize] > self.activity[b as usize] {
                        branch = Some(v);
                    }
                }
            }
        }
        let id = match branch {
            None => {
                // Projection-free: existentially forget the auxiliaries by
                // reducing the component to its satisfiability.
                self.stats.sat_calls += 1;
                if self.component_satisfiable(&key.clauses) {
                    builder.true_node()
                } else {
                    builder.false_node()
                }
            }
            Some(v) => {
                self.stats.decisions += 1;
                if self.stats.decisions > self.max_decisions {
                    self.exhausted = true;
                    return builder.false_node();
                }
                self.decay();
                let mut branches = [builder.false_node(); 2];
                for (slot, lit) in branches.iter_mut().zip([Lit::pos(v), Lit::neg(v)]) {
                    let mark = self.trail.len();
                    let mut pending = Vec::new();
                    match self.assign(lit, &mut pending) {
                        Err(c) => self.on_conflict(c),
                        Ok(()) => {
                            self.depth += 1;
                            *slot =
                                self.compile_subproblem(&key.clauses, pending, Some(v), builder);
                            self.depth -= 1;
                        }
                    }
                    self.undo_to(mark);
                }
                builder.decision_node(v, branches[0], branches[1])
            }
        };
        if !self.exhausted {
            // Mirror the local-cache guard: a budget-truncated trace must
            // never leak into the shared cache either.
            if let Some((shared, pk)) = portable {
                if let Some(circuit) = PortableCircuit::export(builder, id) {
                    shared.store(pk, circuit);
                }
            }
            self.cache.insert(key, id);
        }
        id
    }

    /// Builds the content-addressed shared-cache key of a component: the
    /// canonical encoding of its residual clauses (each active clause
    /// reduced to its unassigned literals — assigned literals of an active
    /// clause are always falsified) plus the projection members of its free
    /// variables. The residual fixes the component's Boolean function and
    /// the projection membership fixes its count semantics, so equal keys
    /// across runs compile to interchangeable sub-circuits.
    fn portable_key(&self, key: &CompKey) -> PortableKey {
        // Residual clauses live as ranges over one flat literal buffer —
        // this runs on every local-cache miss, and a `Vec` per clause is
        // most of the keying cost.
        let mut flat: Vec<u32> = Vec::new();
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(key.clauses.len());
        for &c in key.clauses.iter() {
            let (s, e) = self.clause_range(c);
            let start = flat.len();
            flat.extend(
                self.pool[s..e]
                    .iter()
                    .filter(|l| self.value[l.var().index()] == UNASSIGNED)
                    .map(|l| l.code() as u32),
            );
            flat[start..].sort_unstable();
            ranges.push((start as u32, flat.len() as u32));
        }
        let slice = |r: &(u32, u32)| &flat[r.0 as usize..r.1 as usize];
        // Duplicate residual clauses don't change the Boolean function;
        // dropping them widens the match.
        ranges.sort_unstable_by(|a, b| slice(a).cmp(slice(b)));
        ranges.dedup_by(|a, b| slice(a) == slice(b));
        let mut data = Vec::with_capacity(flat.len() + ranges.len());
        for r in &ranges {
            let cl = slice(r);
            data.push(cl.len() as u32);
            data.extend_from_slice(cl);
        }
        let proj: Vec<u32> = key
            .vars
            .iter()
            .copied()
            .filter(|&v| self.is_proj[v as usize])
            .collect();
        PortableKey::new(data, proj)
    }

    /// Plain satisfiability of a projection-free component: materialize the
    /// residual clauses (the unassigned literals of each active clause —
    /// assigned literals of an active clause are always falsified) and run
    /// the CDCL solver.
    fn component_satisfiable(&self, clauses: &[ClauseId]) -> bool {
        let mut max_var = 0usize;
        let mut residual: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
        for &c in clauses {
            let (s, e) = self.clause_range(c);
            let lits: Vec<Lit> = self.pool[s..e]
                .iter()
                .copied()
                .filter(|&l| self.value[l.var().index()] == UNASSIGNED)
                .collect();
            for &l in &lits {
                max_var = max_var.max(l.var().index());
            }
            residual.push(lits);
        }
        let mut cnf = Cnf::new(max_var + 1);
        for lits in residual {
            cnf.add_clause(lits);
        }
        Solver::from_cnf(&cnf).solve().is_sat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    /// Projected brute-force count: distinct projection-variable patterns
    /// among the models of the full formula.
    fn brute_projected(cnf: &Cnf) -> u128 {
        let n = cnf.num_vars();
        assert!(n <= 20, "brute force oracle only at tiny sizes");
        let projection: Vec<usize> = cnf
            .effective_projection()
            .iter()
            .map(|v| v.index())
            .collect();
        let mut patterns = std::collections::HashSet::new();
        for bits in 0u64..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
            if cnf.eval(&assignment) {
                let pattern: Vec<bool> = projection.iter().map(|&k| assignment[k]).collect();
                patterns.insert(pattern);
            }
        }
        patterns.len() as u128
    }

    fn compile(cnf: &Cnf) -> Ddnnf {
        Compiler::new().compile(cnf).expect("no budget configured")
    }

    fn random_cnf(rng: &mut rand_chacha::ChaCha8Rng, max_vars: usize, max_clauses: usize) -> Cnf {
        use rand::Rng;
        let n = rng.gen_range(3..=max_vars);
        let m = rng.gen_range(1..=max_clauses);
        let mut cnf = Cnf::new(n);
        for _ in 0..m {
            let len = rng.gen_range(1..=3usize);
            let mut c = Vec::new();
            for _ in 0..len {
                let v = rng.gen_range(0..n) as u32;
                c.push(if rng.gen_bool(0.5) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                });
            }
            cnf.add_clause(c);
        }
        cnf
    }

    #[test]
    fn empty_formula_counts_all_assignments() {
        let d = compile(&Cnf::new(5));
        assert_eq!(d.count(), 32);
        assert_eq!(d.models().len(), 32);
    }

    #[test]
    fn single_clause_counts_and_enumerates() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 6);
        let models = d.models();
        assert_eq!(models.len(), 6);
        for m in &models {
            assert_eq!(m.len(), 3, "models are total over the projection");
            let by_var: std::collections::HashMap<u32, bool> =
                m.iter().map(|&(v, b)| (v.0, b)).collect();
            assert!(by_var[&0] || by_var[&1]);
        }
    }

    #[test]
    fn unsat_compiles_to_false() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 0);
        assert!(d.models().is_empty());
    }

    #[test]
    fn projected_count_forgets_auxiliaries() {
        // x2 <-> (x0 & x1), projected onto {x0, x1}: all 4 assignments.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::neg(0), Lit::neg(1)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 4);

        // Asserting the auxiliary leaves exactly (1, 1).
        let mut asserted = cnf.clone();
        asserted.add_unit(Lit::pos(2));
        let d = compile(&asserted);
        assert_eq!(d.count(), 1);
        assert_eq!(d.models(), vec![vec![(Var(0), true), (Var(1), true)]]);
    }

    #[test]
    fn conditioning_matches_unit_assertion() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for round in 0..40 {
            let cnf = random_cnf(&mut rng, 8, 16);
            let d = compile(&cnf);
            // Random cube over up to 3 projection variables.
            let n = cnf.num_vars();
            let cube: Vec<Lit> = (0..rng.gen_range(0..=3usize))
                .map(|_| {
                    let v = rng.gen_range(0..n) as u32;
                    if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            let mut asserted = cnf.clone();
            for &l in &cube {
                asserted.add_unit(l);
            }
            let expected = brute_projected(&asserted);
            assert_eq!(
                d.count_conditioned(&cube),
                expected,
                "round {round}, cube {cube:?}, cnf {cnf}"
            );
            assert_eq!(
                d.condition(&cube).count(),
                expected,
                "structural conditioning, round {round}"
            );
        }
    }

    #[test]
    fn count_cubes_agrees_with_per_cube_conditioning() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(97);
        for round in 0..30 {
            let cnf = random_cnf(&mut rng, 9, 18);
            let d = compile(&cnf);
            let n = cnf.num_vars();
            // A batch of random cubes, including an occasionally
            // self-contradictory one.
            let cubes: Vec<Vec<Lit>> = (0..rng.gen_range(1..=6usize))
                .map(|_| {
                    (0..rng.gen_range(0..=4usize))
                        .map(|_| {
                            let v = rng.gen_range(0..n) as u32;
                            if rng.gen_bool(0.5) {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let batched = d.count_cubes(&cubes);
            assert_eq!(batched.len(), cubes.len());
            for (j, cube) in cubes.iter().enumerate() {
                assert_eq!(
                    batched[j],
                    d.count_conditioned(cube),
                    "round {round}, cube {cube:?}"
                );
            }
        }
    }

    #[test]
    fn count_cubes_handles_empty_batches_and_empty_cubes() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let d = compile(&cnf);
        assert!(d.count_cubes::<Vec<Lit>>(&[]).is_empty());
        assert_eq!(d.count_cubes(&[Vec::new()]), vec![6]);
        assert_eq!(
            d.count_cubes(&[
                vec![Lit::pos(0)],
                vec![Lit::neg(0)],
                vec![Lit::pos(0), Lit::neg(0)]
            ]),
            vec![4, 2, 0]
        );
    }

    #[test]
    fn contradictory_cube_counts_zero() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let d = compile(&cnf);
        let cube = [Lit::pos(0), Lit::neg(0)];
        assert_eq!(d.count_conditioned(&cube), 0);
        assert_eq!(d.condition(&cube).count(), 0);
    }

    #[test]
    #[should_panic(expected = "not a projection variable")]
    fn conditioning_on_auxiliary_panics() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        let d = compile(&cnf);
        d.count_conditioned(&[Lit::pos(2)]);
    }

    #[test]
    fn agrees_with_brute_force_on_random_cnfs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for round in 0..60 {
            let mut cnf = random_cnf(&mut rng, 9, 20);
            if round % 2 == 0 {
                let proj = rng.gen_range(2..=cnf.num_vars());
                cnf.set_projection((0..proj as u32).map(Var).collect());
            }
            let d = compile(&cnf);
            assert_eq!(d.count(), brute_projected(&cnf), "round {round}, cnf {cnf}");
            assert_eq!(
                d.models().len() as u128,
                d.count(),
                "enumeration size, round {round}"
            );
        }
    }

    #[test]
    fn models_satisfy_the_formula() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let cnf = random_cnf(&mut rng, 7, 12);
        let d = compile(&cnf);
        let mut seen = std::collections::HashSet::new();
        for model in d.models() {
            assert!(seen.insert(model.clone()), "duplicate model {model:?}");
            let mut assignment = vec![false; cnf.num_vars()];
            for (v, b) in model {
                assignment[v.index()] = b;
            }
            assert!(cnf.eval(&assignment));
        }
    }

    #[test]
    fn decision_budget_aborts() {
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let result = Compiler::with_decision_budget(3).compile(&cnf);
        assert!(matches!(
            result,
            Err(CompileError::BudgetExhausted { decisions }) if decisions > 3
        ));
        assert!(Compiler::new().compile(&cnf).is_ok());
    }

    #[test]
    fn circuit_is_a_shared_dag() {
        // Independent identical constraints share one compiled subtrace.
        let mut cnf = Cnf::new(6);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::pos(3)]);
        cnf.add_clause(vec![Lit::pos(4), Lit::pos(5)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 27);
        assert!(
            d.num_nodes() <= 12,
            "hash-consing should keep the circuit small, got {}",
            d.num_nodes()
        );
    }

    #[test]
    fn compile_stats_report_activity() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::pos(3)]);
        let d = compile(&cnf);
        assert!(d.stats().decisions > 0);
        assert!(d.stats().cache_lookups > 0);
        assert!(d.stats().cache_hits <= d.stats().cache_lookups);
        let rate = d.stats().cache_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert_eq!(d.count(), 9);
    }

    #[test]
    fn component_cache_hits_on_repeated_subtraces() {
        // A chain of implications branches into identical residual tails
        // from both sides of early decisions, so the signature-keyed
        // component cache must report hits.
        let mut cnf = Cnf::new(10);
        for i in 0..9u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
            cnf.add_clause(vec![Lit::neg(i), Lit::pos(i + 1), Lit::pos((i + 5) % 10)]);
        }
        let d = compile(&cnf);
        assert_eq!(d.count(), brute_projected(&cnf));
        assert!(
            d.stats().cache_hits > 0,
            "expected component-cache hits, stats {:?}",
            d.stats()
        );
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(CompileStats::default().cache_hit_rate(), 0.0);
        assert_eq!(CompileStats::default().shared_hit_rate(), 0.0);
    }

    #[test]
    fn shared_cache_reuses_components_across_runs() {
        let mut cnf = Cnf::new(10);
        for i in 0..9u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
            cnf.add_clause(vec![Lit::neg(i), Lit::pos(i + 1), Lit::pos((i + 5) % 10)]);
        }
        let cold = compile(&cnf);
        let shared = Arc::new(SharedComponentCache::new());
        let compiler = Compiler::new().with_shared_cache(Arc::clone(&shared));
        let first = compiler.compile(&cnf).expect("no budget configured");
        assert_eq!(first.count(), cold.count());
        assert!(first.stats().shared_lookups > 0, "probes must be counted");
        assert!(!shared.is_empty(), "first run must feed the cache");
        // A second run over the same formula resolves every probed
        // component from the shared cache.
        let second = compiler.compile(&cnf).expect("no budget configured");
        assert_eq!(second.count(), cold.count());
        assert!(
            second.stats().shared_hits > 0,
            "second run must hit the shared cache, stats {:?}",
            second.stats()
        );
        assert_eq!(second.stats().shared_hits, second.stats().shared_lookups);
        assert_eq!(second.stats().shared_hit_rate(), 1.0);
        assert_eq!(shared.hits(), second.stats().shared_hits);
    }

    #[test]
    fn shared_cache_counts_agree_with_cold_compiles_on_random_cnfs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5EED);
        let shared = Arc::new(SharedComponentCache::new());
        let warm = Compiler::new().with_shared_cache(Arc::clone(&shared));
        for round in 0..40 {
            let mut cnf = random_cnf(&mut rng, 9, 18);
            if round % 2 == 0 {
                cnf.set_projection((0..5u32).map(Var).collect());
            }
            let cold = compile(&cnf);
            // Twice through the warm compiler: once feeding the cache,
            // once (mostly) reading it. Counts and models must be
            // bit-identical to the cold compile in both.
            for pass in 0..2 {
                let d = warm.compile(&cnf).expect("no budget configured");
                assert_eq!(d.count(), cold.count(), "round {round} pass {pass}");
                assert_eq!(d.models(), cold.models(), "round {round} pass {pass}");
            }
        }
        assert!(shared.hits() > 0, "the sweep must produce cross-query hits");
    }

    #[test]
    fn advance_generation_evicts_untouched_entries() {
        // One connected component comfortably above the shared-cache size
        // gate (tiny components skip the cache by design).
        let mut cnf = Cnf::new(6);
        for i in 0..5u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
            cnf.add_clause(vec![Lit::neg(i), Lit::pos((i + 2) % 6)]);
        }
        let shared = Arc::new(SharedComponentCache::new());
        let compiler = Compiler::new().with_shared_cache(Arc::clone(&shared));
        compiler.compile(&cnf).expect("no budget configured");
        let populated = shared.len();
        assert!(populated > 0);
        // Generation 0 inserted the entries, so closing it keeps them.
        shared.advance_generation();
        assert_eq!(shared.len(), populated);
        assert_eq!(shared.generation(), 1);
        // Generation 1 never touched them, so closing it drops them.
        shared.advance_generation();
        assert!(shared.is_empty());
        // A hit restamps: probed entries survive the next boundary again.
        // (Only the components actually probed survive — a hit imports its
        // whole sub-circuit without recursing, so nested entries lapse.)
        compiler.compile(&cnf).expect("no budget configured");
        shared.advance_generation();
        compiler.compile(&cnf).expect("no budget configured");
        shared.advance_generation();
        assert!(!shared.is_empty());
        assert!(shared.len() <= populated);
    }

    #[test]
    fn budget_truncated_traces_never_feed_the_shared_cache() {
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let shared = Arc::new(SharedComponentCache::new());
        let result = Compiler::with_decision_budget(3)
            .with_shared_cache(Arc::clone(&shared))
            .compile(&cnf);
        assert!(matches!(result, Err(CompileError::BudgetExhausted { .. })));
        // Components cached before exhaustion are complete and reusable;
        // verify nothing poisoned: a fresh full compile through the same
        // cache must still agree with a cold one.
        let warm = Compiler::new()
            .with_shared_cache(Arc::clone(&shared))
            .compile(&cnf)
            .expect("no budget configured");
        assert_eq!(warm.count(), compile(&cnf).count());
    }

    #[test]
    fn byte_image_round_trips_counts_and_schedule() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD0D0);
        for _ in 0..40 {
            let cnf = random_cnf(&mut rng, 10, 14);
            let d = compile(&cnf);
            let back = Ddnnf::from_bytes(&d.to_bytes()).expect("own image must decode");
            assert_eq!(back.count(), d.count());
            assert_eq!(back.num_nodes(), d.num_nodes());
            assert_eq!(back.projection(), d.projection());
            assert_eq!(back.stats(), d.stats());
            // The recomputed schedule must drive conditioned sweeps too.
            let cubes: Vec<Vec<Lit>> = (0..cnf.num_vars().min(4) as u32)
                .map(|v| vec![Lit::pos(v)])
                .collect();
            assert_eq!(back.count_cubes(&cubes), d.count_cubes(&cubes));
            // Same structure in, same bytes out.
            assert_eq!(back.to_bytes(), d.to_bytes());
        }
    }

    #[test]
    fn byte_image_round_trips_projected_circuits() {
        let mut cnf = Cnf::new(6);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(3)]);
        cnf.add_clause(vec![Lit::pos(3), Lit::pos(4), Lit::neg(1)]);
        cnf.add_clause(vec![Lit::neg(5), Lit::pos(2)]);
        cnf.set_projection(vec![Var(0), Var(1), Var(2)]);
        let d = compile(&cnf);
        let back = Ddnnf::from_bytes(&d.to_bytes()).expect("projected image must decode");
        assert_eq!(back.count(), d.count());
        assert_eq!(back.projection(), d.projection());
        assert_eq!(
            back.count_conditioned(&[Lit::pos(1)]),
            d.count_conditioned(&[Lit::pos(1)])
        );
    }

    #[test]
    fn corrupted_images_are_rejected_not_misread() {
        let mut cnf = Cnf::new(5);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(3), Lit::pos(4)]);
        let bytes = compile(&cnf).to_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(
            Ddnnf::from_bytes(&bad).is_err(),
            "bad magic must be rejected"
        );

        // Every truncation point fails cleanly instead of panicking.
        for cut in 0..bytes.len() {
            assert!(
                Ddnnf::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        // Trailing garbage is not silently ignored.
        let mut long = bytes.clone();
        long.push(0);
        assert!(
            Ddnnf::from_bytes(&long).is_err(),
            "trailing bytes must be rejected"
        );
    }

    #[test]
    fn forward_references_and_foreign_variables_are_rejected() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::neg(3)]);
        let d = compile(&cnf);
        let bytes = d.to_bytes();
        // Walk the image flipping each u32-aligned word in the node region;
        // decode must either fail or produce a structurally valid circuit —
        // never panic. (Some flips land on literal payloads and still decode;
        // the invariant under test is "no out-of-bounds child survives".)
        let node_region = 4 + 4 + 4 * d.projection().len() + 40 + 4 + 4;
        for pos in (node_region..bytes.len().saturating_sub(3)).step_by(4) {
            let mut bad = bytes.clone();
            bad[pos] = bad[pos].wrapping_add(0x40);
            bad[pos + 3] |= 0x80; // push ids/lengths far out of range
            if let Ok(back) = Ddnnf::from_bytes(&bad) {
                // Decoding succeeded: counting must still be safe.
                let _ = back.count();
            }
        }
    }
}
