//! Compilation of CNF formulas into deterministic decomposable NNF (d-DNNF)
//! circuits for compile-once / query-many projected model counting.
//!
//! The MCML metrics ask many counting queries that share one formula: AccMC
//! conditions the same ground truth φ on the decision region of every
//! evaluated model, and every table row repeats the φ / ¬φ halves. A search
//! counter pays the full #SAT cost per query; a knowledge-compilation
//! counter (the ProjMC/D4 lineage) pays it **once**, producing a circuit on
//! which each subsequent count is linear in the circuit size.
//!
//! The [`Compiler`] here is a trace-recording variant of the classic
//! projected #SAT search (the same skeleton as `modelcount::exact`):
//!
//! 1. unit propagation — fixed *projection* literals become [`Lit`] leaves;
//!    fixed auxiliary (non-projection) literals are existentially forgotten;
//! 2. connected-component decomposition — components become the children of
//!    a decomposable `And` node (their variable sets are disjoint by
//!    construction);
//! 3. branching on a projection variable — the two subtraces become the
//!    branches of a `Decision` node (a deterministic `Or`: the branches
//!    disagree on the branch variable);
//! 4. a component without projection variables contributes `True` or
//!    `False` depending on plain satisfiability, decided by the CDCL
//!    [`Solver`] — this is the existential forgetting of the remaining
//!    Tseitin auxiliaries, so compiled counts equal projected counts.
//!
//! The compiled [`Ddnnf`] supports [`count`](Ddnnf::count), conditioned
//! counting on a cube of projection literals
//! ([`count_conditioned`](Ddnnf::count_conditioned)), structural
//! conditioning ([`condition`](Ddnnf::condition), which returns a smaller
//! circuit) and model enumeration over the projection set
//! ([`models`](Ddnnf::models)).
//!
//! Circuits are hash-consed DAGs: structurally identical subtraces (which
//! the search cache detects) share one node. Projection sets are limited to
//! 128 variables — enough for every scope of the reproduction (scope 11 has
//! 121 primary variables) — so per-node variable sets are single `u128`
//! bitmasks and gap ("smoothing") factors are popcounts.

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::Solver;
use std::collections::HashMap;

/// Index of a node inside a [`Ddnnf`] circuit.
pub type NodeId = usize;

/// One node of a d-DNNF circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant true (neutral element of `And`).
    True,
    /// The constant false (an unsatisfiable subtrace).
    False,
    /// A projection literal fixed by unit propagation.
    Lit(Lit),
    /// Decomposable conjunction: the children's variable sets are pairwise
    /// disjoint.
    And(Vec<NodeId>),
    /// Deterministic disjunction `(var ∧ hi) ∨ (¬var ∧ lo)` produced by
    /// branching on a projection variable.
    Decision {
        /// The projection variable branched on.
        var: u32,
        /// Subcircuit under `var = true`.
        hi: NodeId,
        /// Subcircuit under `var = false`.
        lo: NodeId,
    },
}

/// Why a compilation attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The decision budget ran out before the trace was complete (the
    /// compile-time analogue of a counting time-out).
    BudgetExhausted {
        /// Branching decisions recorded before giving up.
        decisions: u64,
    },
    /// The formula projects onto more than 128 variables, exceeding the
    /// `u128` bitmask representation of per-node variable sets.
    TooManyProjectionVars {
        /// Size of the effective projection set.
        found: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::BudgetExhausted { decisions } => {
                write!(
                    f,
                    "d-DNNF compilation budget exhausted after {decisions} decisions"
                )
            }
            CompileError::TooManyProjectionVars { found } => {
                write!(
                    f,
                    "projection set of {found} variables exceeds the 128-variable limit"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Statistics of one compilation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Branching decisions recorded.
    pub decisions: u64,
    /// Subtrace cache hits (shared circuit nodes).
    pub cache_hits: u64,
    /// SAT-solver calls on projection-free components.
    pub sat_calls: u64,
}

/// A compiled d-DNNF circuit together with its projection set.
#[derive(Debug, Clone)]
pub struct Ddnnf {
    nodes: Vec<Node>,
    /// Projection variables mentioned by node `i` (bit `k` = `proj_vars[k]`).
    masks: Vec<u128>,
    root: NodeId,
    /// Sorted projection variables; bit positions in masks index this list.
    proj_vars: Vec<u32>,
    /// Map from variable id to bit position.
    var_bit: HashMap<u32, u32>,
    stats: CompileStats,
}

/// Saturating `2^exp` (projection sets may have up to 128 variables).
fn pow2(exp: u32) -> u128 {
    if exp >= 128 {
        u128::MAX
    } else {
        1u128 << exp
    }
}

impl Ddnnf {
    /// Number of nodes in the circuit (including the constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes of the circuit in topological order (children precede
    /// parents); the last retains no special role — see [`root`](Self::root).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The projection variables of the compiled formula, sorted.
    pub fn projection(&self) -> Vec<Var> {
        self.proj_vars.iter().map(|&v| Var(v)).collect()
    }

    /// Statistics of the compilation that produced this circuit.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// The number of models projected onto the projection set.
    pub fn count(&self) -> u128 {
        self.count_conditioned(&[])
    }

    /// The number of projected models consistent with `cube` — i.e. the
    /// projected count of `φ ∧ cube` — in one linear pass over the circuit,
    /// without re-running any search.
    ///
    /// Every literal of `cube` must be over a projection variable.
    /// A self-contradictory cube yields 0.
    ///
    /// # Panics
    ///
    /// Panics if a cube literal mentions a non-projection variable.
    pub fn count_conditioned(&self, cube: &[Lit]) -> u128 {
        let Some((fixed, values)) = self.cube_masks(cube) else {
            return 0;
        };
        let mut memo: Vec<Option<u128>> = vec![None; self.nodes.len()];
        let root_count = self.count_node(self.root, fixed, values, &mut memo);
        let gap = self.full_mask() & !self.masks[self.root];
        root_count.saturating_mul(pow2((gap & !fixed).count_ones()))
    }

    /// Structural conditioning: returns the circuit of `φ ∧ cube` with the
    /// cube variables removed from the projection set (so
    /// `condition(c).count() == count_conditioned(c)` — the former counts
    /// over fewer variables, but the cube variables it drops are fixed and
    /// contribute a factor of 1).
    ///
    /// # Panics
    ///
    /// Panics if a cube literal mentions a non-projection variable.
    pub fn condition(&self, cube: &[Lit]) -> Ddnnf {
        let parsed = self.cube_masks(cube);
        let contradictory = parsed.is_none();
        let (fixed, values) = parsed.unwrap_or_else(|| {
            // Contradictory cube: still drop every mentioned variable from
            // the projection of the (False) result circuit.
            let mut fixed = 0u128;
            for &lit in cube {
                fixed |= 1u128 << self.var_bit[&lit.var().0];
            }
            (fixed, 0)
        });
        let remaining: Vec<u32> = self
            .proj_vars
            .iter()
            .copied()
            .filter(|v| fixed & (1u128 << self.var_bit[v]) == 0)
            .collect();
        let mut builder = Builder::new(remaining);
        if contradictory {
            let root = builder.false_node();
            return builder.finish(root, self.stats);
        }
        // Children precede parents, so one forward pass remaps every node.
        let mut remap: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mapped = match node {
                Node::True => builder.true_node(),
                Node::False => builder.false_node(),
                Node::Lit(l) => {
                    let bit = 1u128 << self.var_bit[&l.var().0];
                    if fixed & bit == 0 {
                        builder.lit_node(*l)
                    } else if (values & bit != 0) == l.is_positive() {
                        builder.true_node()
                    } else {
                        builder.false_node()
                    }
                }
                Node::And(children) => {
                    let mapped: Vec<NodeId> = children.iter().map(|&c| remap[c]).collect();
                    builder.and_node(mapped)
                }
                Node::Decision { var, hi, lo } => {
                    let bit = 1u128 << self.var_bit[var];
                    if fixed & bit != 0 {
                        if values & bit != 0 {
                            remap[*hi]
                        } else {
                            remap[*lo]
                        }
                    } else {
                        builder.decision_node(*var, remap[*hi], remap[*lo])
                    }
                }
            };
            remap.push(mapped);
        }
        let root = remap[self.root];
        builder.finish(root, self.stats)
    }

    /// Enumerates every projected model as a full assignment of the
    /// projection variables, sorted by variable. Intended for tests and
    /// small circuits — the output is exponential in the gap sizes.
    pub fn models(&self) -> Vec<Vec<(Var, bool)>> {
        let full = self.full_mask();
        let mut out = Vec::new();
        for (mask, values) in self.partial_models(self.root) {
            let mut expanded = Vec::new();
            expand_bits(full & !mask, values, &mut expanded);
            out.extend(expanded.into_iter().map(|v| self.unpack(full, v)));
        }
        out.sort();
        out
    }

    fn full_mask(&self) -> u128 {
        if self.proj_vars.len() == 128 {
            u128::MAX
        } else {
            (1u128 << self.proj_vars.len()) - 1
        }
    }

    /// Validates the cube and returns `(fixed, values)` bitmasks, or `None`
    /// if the cube contradicts itself.
    fn cube_masks(&self, cube: &[Lit]) -> Option<(u128, u128)> {
        let mut fixed = 0u128;
        let mut values = 0u128;
        for &lit in cube {
            let bit_index = *self
                .var_bit
                .get(&lit.var().0)
                .unwrap_or_else(|| panic!("cube literal {lit} is not a projection variable"));
            let bit = 1u128 << bit_index;
            if fixed & bit != 0 {
                if (values & bit != 0) != lit.is_positive() {
                    return None;
                }
                continue;
            }
            fixed |= bit;
            if lit.is_positive() {
                values |= bit;
            }
        }
        Some((fixed, values))
    }

    /// Counts models of the subcircuit at `node` over its own variable set,
    /// weighting cube-fixed variables 1 and free variables 2 at every
    /// smoothing gap.
    fn count_node(
        &self,
        node: NodeId,
        fixed: u128,
        values: u128,
        memo: &mut Vec<Option<u128>>,
    ) -> u128 {
        if let Some(c) = memo[node] {
            return c;
        }
        let result = match &self.nodes[node] {
            Node::True => 1,
            Node::False => 0,
            Node::Lit(l) => {
                let bit = 1u128 << self.var_bit[&l.var().0];
                if fixed & bit != 0 && (values & bit != 0) != l.is_positive() {
                    0
                } else {
                    1
                }
            }
            Node::And(children) => {
                let mut total: u128 = 1;
                for &c in children {
                    let n = self.count_node(c, fixed, values, memo);
                    if n == 0 {
                        total = 0;
                        break;
                    }
                    total = total.saturating_mul(n);
                }
                total
            }
            Node::Decision { var, hi, lo } => {
                let bit = 1u128 << self.var_bit[var];
                let scope = self.masks[node] & !bit;
                let mut total: u128 = 0;
                for (branch, wanted) in [(*hi, true), (*lo, false)] {
                    if fixed & bit != 0 && (values & bit != 0) != wanted {
                        continue;
                    }
                    let branch_count = self.count_node(branch, fixed, values, memo);
                    let gap = scope & !self.masks[branch] & !fixed;
                    total =
                        total.saturating_add(branch_count.saturating_mul(pow2(gap.count_ones())));
                }
                total
            }
        };
        memo[node] = Some(result);
        result
    }

    /// Partial models of the subcircuit at `node`, as `(mask, values)`
    /// bitmask pairs over the projection set.
    fn partial_models(&self, node: NodeId) -> Vec<(u128, u128)> {
        match &self.nodes[node] {
            Node::True => vec![(0, 0)],
            Node::False => Vec::new(),
            Node::Lit(l) => {
                let bit = 1u128 << self.var_bit[&l.var().0];
                vec![(bit, if l.is_positive() { bit } else { 0 })]
            }
            Node::And(children) => {
                let mut acc = vec![(0u128, 0u128)];
                for &c in children {
                    let child = self.partial_models(c);
                    let mut next = Vec::with_capacity(acc.len() * child.len());
                    for &(am, av) in &acc {
                        for &(cm, cv) in &child {
                            next.push((am | cm, av | cv));
                        }
                    }
                    acc = next;
                }
                acc
            }
            Node::Decision { var, hi, lo } => {
                let bit = 1u128 << self.var_bit[var];
                let scope = self.masks[node];
                let mut out = Vec::new();
                for (branch, value) in [(*hi, bit), (*lo, 0)] {
                    for (m, v) in self.partial_models(branch) {
                        // Smooth inside the decision scope so every partial
                        // from this node covers the same variable set.
                        let mut expanded = Vec::new();
                        expand_bits(scope & !bit & !m, v | value, &mut expanded);
                        out.extend(expanded.into_iter().map(|v| (scope, v)));
                    }
                }
                out
            }
        }
    }

    /// Renders the variables selected by `mask` with their `values` bits.
    fn unpack(&self, mask: u128, values: u128) -> Vec<(Var, bool)> {
        self.proj_vars
            .iter()
            .enumerate()
            .filter(|&(k, _)| mask & (1u128 << k) != 0)
            .map(|(k, &v)| (Var(v), values & (1u128 << k) != 0))
            .collect()
    }
}

/// Expands every bit of `gap` both ways, pushing the completed value masks.
fn expand_bits(gap: u128, values: u128, out: &mut Vec<u128>) {
    if gap == 0 {
        out.push(values);
        return;
    }
    let bit = 1u128 << gap.trailing_zeros();
    expand_bits(gap & !bit, values, out);
    expand_bits(gap & !bit, values | bit, out);
}

/// Hash-consing circuit builder shared by the compiler and
/// [`Ddnnf::condition`].
struct Builder {
    nodes: Vec<Node>,
    masks: Vec<u128>,
    unique: HashMap<Node, NodeId>,
    proj_vars: Vec<u32>,
    var_bit: HashMap<u32, u32>,
}

impl Builder {
    fn new(mut proj_vars: Vec<u32>) -> Self {
        proj_vars.sort_unstable();
        proj_vars.dedup();
        let var_bit: HashMap<u32, u32> = proj_vars
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, k as u32))
            .collect();
        let mut b = Builder {
            nodes: Vec::new(),
            masks: Vec::new(),
            unique: HashMap::new(),
            proj_vars,
            var_bit,
        };
        // Interned constants at fixed slots.
        b.intern(Node::False, 0);
        b.intern(Node::True, 0);
        b
    }

    fn intern(&mut self, node: Node, mask: u128) -> NodeId {
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.masks.push(mask);
        self.unique.insert(node, id);
        id
    }

    fn false_node(&mut self) -> NodeId {
        0
    }

    fn true_node(&mut self) -> NodeId {
        1
    }

    fn lit_node(&mut self, lit: Lit) -> NodeId {
        let bit = 1u128 << self.var_bit[&lit.var().0];
        self.intern(Node::Lit(lit), bit)
    }

    /// Conjunction with constant folding and flattening of single children.
    fn and_node(&mut self, children: Vec<NodeId>) -> NodeId {
        let mut flat: Vec<NodeId> = Vec::with_capacity(children.len());
        for c in children {
            match self.nodes[c] {
                Node::False => return self.false_node(),
                Node::True => continue,
                _ => flat.push(c),
            }
        }
        match flat.len() {
            0 => self.true_node(),
            1 => flat[0],
            _ => {
                flat.sort_unstable();
                flat.dedup();
                if flat.len() == 1 {
                    return flat[0];
                }
                let mask = flat.iter().fold(0u128, |m, &c| {
                    debug_assert_eq!(m & self.masks[c], 0, "And children must be disjoint");
                    m | self.masks[c]
                });
                self.intern(Node::And(flat), mask)
            }
        }
    }

    /// Decision node with the standard BDD-style reductions.
    fn decision_node(&mut self, var: u32, hi: NodeId, lo: NodeId) -> NodeId {
        if hi == lo {
            // (v ∧ A) ∨ (¬v ∧ A) = A; v moves into the enclosing gap.
            return hi;
        }
        if self.nodes[hi] == Node::True && self.nodes[lo] == Node::False {
            return self.lit_node(Lit::pos(var));
        }
        if self.nodes[hi] == Node::False && self.nodes[lo] == Node::True {
            return self.lit_node(Lit::neg(var));
        }
        let mask = (1u128 << self.var_bit[&var]) | self.masks[hi] | self.masks[lo];
        self.intern(Node::Decision { var, hi, lo }, mask)
    }

    fn finish(self, root: NodeId, stats: CompileStats) -> Ddnnf {
        Ddnnf {
            nodes: self.nodes,
            masks: self.masks,
            root,
            proj_vars: self.proj_vars,
            var_bit: self.var_bit,
            stats,
        }
    }
}

/// The d-DNNF compiler: a projected #SAT search that records its trace.
#[derive(Debug, Clone)]
pub struct Compiler {
    max_decisions: u64,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

/// A residual formula: active clauses over not-yet-assigned variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Residual {
    clauses: Vec<Vec<Lit>>,
}

impl Compiler {
    /// A compiler with no decision budget.
    pub fn new() -> Self {
        Compiler {
            max_decisions: u64::MAX,
        }
    }

    /// A compiler that aborts after `max_decisions` branching decisions —
    /// the compile-time analogue of [`modelcount`]'s node budget.
    ///
    /// [`modelcount`]: https://docs.rs/modelcount
    pub fn with_decision_budget(max_decisions: u64) -> Self {
        Compiler { max_decisions }
    }

    /// Compiles `cnf` into a d-DNNF circuit whose counts are projected onto
    /// the formula's effective projection set.
    pub fn compile(&self, cnf: &Cnf) -> Result<Ddnnf, CompileError> {
        let projection: Vec<u32> = cnf.effective_projection().iter().map(|v| v.0).collect();
        if projection.len() > 128 {
            return Err(CompileError::TooManyProjectionVars {
                found: projection.len(),
            });
        }
        let mut builder = Builder::new(projection);

        let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(cnf.num_clauses());
        let mut contradiction = false;
        for c in cnf.clauses() {
            match c.normalized() {
                None => continue,
                Some(n) => {
                    if n.is_empty() {
                        contradiction = true;
                        break;
                    }
                    clauses.push(n.lits().to_vec());
                }
            }
        }

        let mut ctx = CompileCtx {
            cache: HashMap::new(),
            stats: CompileStats::default(),
            max_decisions: self.max_decisions,
            exhausted: false,
        };
        let root = if contradiction {
            builder.false_node()
        } else {
            ctx.compile_residual(Residual { clauses }, &mut builder)
        };
        if ctx.exhausted {
            return Err(CompileError::BudgetExhausted {
                decisions: ctx.stats.decisions,
            });
        }
        Ok(builder.finish(root, ctx.stats))
    }
}

struct CompileCtx {
    cache: HashMap<Residual, NodeId>,
    stats: CompileStats,
    max_decisions: u64,
    exhausted: bool,
}

impl CompileCtx {
    /// Compiles a residual: propagate, decompose, recurse. The trace of the
    /// projection literals fixed by propagation is kept as `Lit` leaves;
    /// fixed non-projection literals are forgotten.
    fn compile_residual(&mut self, residual: Residual, builder: &mut Builder) -> NodeId {
        if self.exhausted {
            return builder.false_node();
        }
        let Some((residual, fixed)) = propagate(residual) else {
            return builder.false_node();
        };
        let mut children: Vec<NodeId> = Vec::new();
        for l in fixed {
            if builder.var_bit.contains_key(&l.var().0) {
                children.push(builder.lit_node(l));
            }
        }
        if !residual.clauses.is_empty() {
            for comp in split_components(&residual) {
                let child = self.compile_component(comp, builder);
                children.push(child);
            }
        }
        builder.and_node(children)
    }

    fn compile_component(&mut self, comp: Residual, builder: &mut Builder) -> NodeId {
        if let Some(&id) = self.cache.get(&comp) {
            self.stats.cache_hits += 1;
            return id;
        }
        // Branch on the projection variable with the most occurrences (the
        // same heuristic as the search counter, so traces stay comparable).
        let mut occurrences: HashMap<u32, usize> = HashMap::new();
        for lit in comp.clauses.iter().flatten() {
            let v = lit.var().0;
            if builder.var_bit.contains_key(&v) {
                *occurrences.entry(v).or_default() += 1;
            }
        }
        let branch_var = occurrences
            .into_iter()
            .max_by_key(|&(v, count)| (count, std::cmp::Reverse(v)))
            .map(|(v, _)| v);

        let id = match branch_var {
            None => {
                // Projection-free: existentially forget the auxiliaries by
                // reducing the component to its satisfiability.
                self.stats.sat_calls += 1;
                if is_satisfiable(&comp) {
                    builder.true_node()
                } else {
                    builder.false_node()
                }
            }
            Some(v) => {
                self.stats.decisions += 1;
                if self.stats.decisions > self.max_decisions {
                    self.exhausted = true;
                    return builder.false_node();
                }
                let mut branches = [builder.false_node(); 2];
                for (slot, lit) in branches.iter_mut().zip([Lit::pos(v), Lit::neg(v)]) {
                    if let Some(r) = assign(&comp, lit) {
                        *slot = self.compile_residual(r, builder);
                    }
                }
                builder.decision_node(v, branches[0], branches[1])
            }
        };
        self.cache.insert(comp, id);
        id
    }
}

/// Asserts a literal in the residual: drops satisfied clauses, removes the
/// falsified literal from others. Returns `None` on an empty clause.
fn assign(residual: &Residual, lit: Lit) -> Option<Residual> {
    let mut clauses = Vec::with_capacity(residual.clauses.len());
    for c in &residual.clauses {
        if c.contains(&lit) {
            continue;
        }
        let filtered: Vec<Lit> = c.iter().copied().filter(|&l| l != !lit).collect();
        if filtered.is_empty() {
            return None;
        }
        clauses.push(filtered);
    }
    Some(Residual { clauses })
}

/// Exhaustive unit propagation; returns the propagated residual and the
/// fixed literals, or `None` on conflict.
fn propagate(mut residual: Residual) -> Option<(Residual, Vec<Lit>)> {
    let mut fixed = Vec::new();
    loop {
        let unit = residual.clauses.iter().find(|c| c.len() == 1).map(|c| c[0]);
        match unit {
            None => return Some((residual, fixed)),
            Some(l) => {
                fixed.push(l);
                residual = assign(&residual, l)?;
            }
        }
    }
}

/// Splits the residual into connected components of the variable-interaction
/// graph (variables are connected when they co-occur in a clause).
fn split_components(residual: &Residual) -> Vec<Residual> {
    let mut parent: HashMap<u32, u32> = HashMap::new();

    fn find(parent: &mut HashMap<u32, u32>, v: u32) -> u32 {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            v
        } else {
            let root = find(parent, p);
            parent.insert(v, root);
            root
        }
    }

    for c in &residual.clauses {
        let first = c[0].var().0;
        for l in &c[1..] {
            let (a, b) = (find(&mut parent, first), find(&mut parent, l.var().0));
            if a != b {
                parent.insert(a, b);
            }
        }
        find(&mut parent, first);
    }

    let mut groups: HashMap<u32, Vec<Vec<Lit>>> = HashMap::new();
    for c in &residual.clauses {
        let root = find(&mut parent, c[0].var().0);
        groups.entry(root).or_default().push(c.clone());
    }
    let mut comps: Vec<Residual> = groups
        .into_values()
        .map(|mut clauses| {
            clauses.sort();
            Residual { clauses }
        })
        .collect();
    comps.sort_by_key(|c| c.clauses.len());
    comps
}

fn is_satisfiable(comp: &Residual) -> bool {
    let max_var = comp
        .clauses
        .iter()
        .flatten()
        .map(|l| l.var().index())
        .max()
        .unwrap_or(0);
    let mut cnf = Cnf::new(max_var + 1);
    for c in &comp.clauses {
        cnf.add_clause(c.clone());
    }
    Solver::from_cnf(&cnf).solve().is_sat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    /// Projected brute-force count: distinct projection-variable patterns
    /// among the models of the full formula.
    fn brute_projected(cnf: &Cnf) -> u128 {
        let n = cnf.num_vars();
        assert!(n <= 20, "brute force oracle only at tiny sizes");
        let projection: Vec<usize> = cnf
            .effective_projection()
            .iter()
            .map(|v| v.index())
            .collect();
        let mut patterns = std::collections::HashSet::new();
        for bits in 0u64..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
            if cnf.eval(&assignment) {
                let pattern: Vec<bool> = projection.iter().map(|&k| assignment[k]).collect();
                patterns.insert(pattern);
            }
        }
        patterns.len() as u128
    }

    fn compile(cnf: &Cnf) -> Ddnnf {
        Compiler::new().compile(cnf).expect("no budget configured")
    }

    fn random_cnf(rng: &mut rand_chacha::ChaCha8Rng, max_vars: usize, max_clauses: usize) -> Cnf {
        use rand::Rng;
        let n = rng.gen_range(3..=max_vars);
        let m = rng.gen_range(1..=max_clauses);
        let mut cnf = Cnf::new(n);
        for _ in 0..m {
            let len = rng.gen_range(1..=3usize);
            let mut c = Vec::new();
            for _ in 0..len {
                let v = rng.gen_range(0..n) as u32;
                c.push(if rng.gen_bool(0.5) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                });
            }
            cnf.add_clause(c);
        }
        cnf
    }

    #[test]
    fn empty_formula_counts_all_assignments() {
        let d = compile(&Cnf::new(5));
        assert_eq!(d.count(), 32);
        assert_eq!(d.models().len(), 32);
    }

    #[test]
    fn single_clause_counts_and_enumerates() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 6);
        let models = d.models();
        assert_eq!(models.len(), 6);
        for m in &models {
            assert_eq!(m.len(), 3, "models are total over the projection");
            let by_var: std::collections::HashMap<u32, bool> =
                m.iter().map(|&(v, b)| (v.0, b)).collect();
            assert!(by_var[&0] || by_var[&1]);
        }
    }

    #[test]
    fn unsat_compiles_to_false() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 0);
        assert!(d.models().is_empty());
    }

    #[test]
    fn projected_count_forgets_auxiliaries() {
        // x2 <-> (x0 & x1), projected onto {x0, x1}: all 4 assignments.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::neg(0), Lit::neg(1)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 4);

        // Asserting the auxiliary leaves exactly (1, 1).
        let mut asserted = cnf.clone();
        asserted.add_unit(Lit::pos(2));
        let d = compile(&asserted);
        assert_eq!(d.count(), 1);
        assert_eq!(d.models(), vec![vec![(Var(0), true), (Var(1), true)]]);
    }

    #[test]
    fn conditioning_matches_unit_assertion() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for round in 0..40 {
            let cnf = random_cnf(&mut rng, 8, 16);
            let d = compile(&cnf);
            // Random cube over up to 3 projection variables.
            let n = cnf.num_vars();
            let cube: Vec<Lit> = (0..rng.gen_range(0..=3usize))
                .map(|_| {
                    let v = rng.gen_range(0..n) as u32;
                    if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            let mut asserted = cnf.clone();
            for &l in &cube {
                asserted.add_unit(l);
            }
            let expected = brute_projected(&asserted);
            assert_eq!(
                d.count_conditioned(&cube),
                expected,
                "round {round}, cube {cube:?}, cnf {cnf}"
            );
            assert_eq!(
                d.condition(&cube).count(),
                expected,
                "structural conditioning, round {round}"
            );
        }
    }

    #[test]
    fn contradictory_cube_counts_zero() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let d = compile(&cnf);
        let cube = [Lit::pos(0), Lit::neg(0)];
        assert_eq!(d.count_conditioned(&cube), 0);
        assert_eq!(d.condition(&cube).count(), 0);
    }

    #[test]
    #[should_panic(expected = "not a projection variable")]
    fn conditioning_on_auxiliary_panics() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        let d = compile(&cnf);
        d.count_conditioned(&[Lit::pos(2)]);
    }

    #[test]
    fn agrees_with_brute_force_on_random_cnfs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for round in 0..60 {
            let mut cnf = random_cnf(&mut rng, 9, 20);
            if round % 2 == 0 {
                let proj = rng.gen_range(2..=cnf.num_vars());
                cnf.set_projection((0..proj as u32).map(Var).collect());
            }
            let d = compile(&cnf);
            assert_eq!(d.count(), brute_projected(&cnf), "round {round}, cnf {cnf}");
            assert_eq!(
                d.models().len() as u128,
                d.count(),
                "enumeration size, round {round}"
            );
        }
    }

    #[test]
    fn models_satisfy_the_formula() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let cnf = random_cnf(&mut rng, 7, 12);
        let d = compile(&cnf);
        let mut seen = std::collections::HashSet::new();
        for model in d.models() {
            assert!(seen.insert(model.clone()), "duplicate model {model:?}");
            let mut assignment = vec![false; cnf.num_vars()];
            for (v, b) in model {
                assignment[v.index()] = b;
            }
            assert!(cnf.eval(&assignment));
        }
    }

    #[test]
    fn decision_budget_aborts() {
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let result = Compiler::with_decision_budget(3).compile(&cnf);
        assert!(matches!(
            result,
            Err(CompileError::BudgetExhausted { decisions }) if decisions > 3
        ));
        assert!(Compiler::new().compile(&cnf).is_ok());
    }

    #[test]
    fn circuit_is_a_shared_dag() {
        // Independent identical constraints share one compiled subtrace.
        let mut cnf = Cnf::new(6);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::pos(3)]);
        cnf.add_clause(vec![Lit::pos(4), Lit::pos(5)]);
        let d = compile(&cnf);
        assert_eq!(d.count(), 27);
        assert!(
            d.num_nodes() <= 12,
            "hash-consing should keep the circuit small, got {}",
            d.num_nodes()
        );
    }

    #[test]
    fn compile_stats_report_activity() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::pos(3)]);
        let d = compile(&cnf);
        assert!(d.stats().decisions > 0);
        assert_eq!(d.count(), 9);
    }
}
