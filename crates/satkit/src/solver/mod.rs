//! A CDCL SAT solver.
//!
//! The design follows the MiniSat lineage: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS variable
//! activities managed in an indexed binary heap, phase saving, Luby restarts,
//! and activity-based deletion of learnt clauses. The solver supports
//! incremental use with assumption literals, which is how the enumerator and
//! the model counters drive it.

mod heap;
mod luby;

pub use luby::luby;

use crate::cnf::{Cnf, Lit, Var};
use heap::VarHeap;

/// Three-valued assignment state of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Index of a clause in the solver's clause database.
type ClauseRef = usize;

#[derive(Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    /// The *other* watched literal, used as a fast pre-check ("blocker").
    blocker: Lit,
}

#[derive(Debug, Clone, Copy)]
struct VarData {
    reason: Option<ClauseRef>,
    level: usize,
}

/// A satisfying assignment returned by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of variable `var` in the model.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: u32) -> bool {
        self.values[var as usize]
    }

    /// The value of a literal in the model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        lit.eval(self.values[lit.var().index()])
    }

    /// The underlying assignment, indexed by variable.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; a model is provided.
    Sat(Model),
    /// The formula is unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SolveResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Extracts the model if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

/// Runtime statistics of a [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
}

/// A CDCL SAT solver over a fixed set of variables.
#[derive(Debug)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<ClauseData>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order_heap: VarHeap,
    var_inc: f64,
    var_decay: f64,
    cla_inc: f64,
    cla_decay: f64,
    ok: bool,
    seen: Vec<bool>,
    stats: SolverStats,
    num_learnts: usize,
}

impl Solver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        let solver = Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assigns: vec![LBool::Undef; num_vars],
            polarity: vec![false; num_vars],
            vardata: vec![
                VarData {
                    reason: None,
                    level: 0
                };
                num_vars
            ],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            order_heap: VarHeap::new(num_vars),
            var_inc: 1.0,
            var_decay: 0.95,
            cla_inc: 1.0,
            cla_decay: 0.999,
            ok: true,
            seen: vec![false; num_vars],
            stats: SolverStats::default(),
            num_learnts: 0,
        };
        debug_assert_eq!(solver.order_heap.len(), num_vars);
        solver
    }

    /// Creates a solver pre-loaded with all clauses of a CNF formula.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c.lits().to_vec());
        }
        s
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Current statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the clause database is already known to be unsatisfiable.
    pub fn is_trivially_unsat(&self) -> bool {
        !self.ok
    }

    /// Adds a clause. Returns `false` if the clause database became
    /// unsatisfiable (e.g. by adding an empty clause or conflicting units).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable outside the solver.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at decision level 0"
        );
        if !self.ok {
            return false;
        }
        for l in &lits {
            assert!(l.var().index() < self.num_vars, "literal {l} out of range");
        }
        // Normalize: sort, dedup, drop tautologies and false literals.
        lits.sort();
        lits.dedup();
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // tautology: l and !l
            }
            i += 1;
        }
        lits.retain(|&l| self.lit_value(l) != LBool::False);
        if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true; // already satisfied at level 0
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        let w0 = Watcher {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        if learnt {
            self.num_learnts += 1;
            self.stats.learnt_clauses = self.num_learnts as u64;
        }
        self.clauses.push(ClauseData {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        cref
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        match self.assigns[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.vardata[v] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause if a conflict occurs.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut kept: Vec<Watcher> = Vec::with_capacity(watchers.len());
            let mut idx = 0;
            while idx < watchers.len() {
                let w = watchers[idx];
                idx += 1;
                if self.clauses[w.clause].deleted {
                    continue;
                }
                // Fast path: blocker already satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    kept.push(w);
                    continue;
                }
                let cref = w.clause;
                // Make sure the false literal is at position 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    kept.push(Watcher {
                        clause: cref,
                        blocker: first,
                    });
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch = None;
                for k in 2..self.clauses[cref].lits.len() {
                    let l = self.clauses[cref].lits[k];
                    if self.lit_value(l) != LBool::False {
                        new_watch = Some(k);
                        break;
                    }
                }
                match new_watch {
                    Some(k) => {
                        self.clauses[cref].lits.swap(1, k);
                        let new_lit = self.clauses[cref].lits[1];
                        self.watches[(!new_lit).code()].push(Watcher {
                            clause: cref,
                            blocker: first,
                        });
                    }
                    None => {
                        // Clause is unit or conflicting.
                        kept.push(Watcher {
                            clause: cref,
                            blocker: first,
                        });
                        if self.lit_value(first) == LBool::False {
                            // Conflict: keep remaining watchers and stop.
                            conflict = Some(cref);
                            self.qhead = self.trail.len();
                            kept.extend_from_slice(&watchers[idx..]);
                            break;
                        } else {
                            self.unchecked_enqueue(first, Some(cref));
                        }
                    }
                }
            }
            self.watches[p.code()] = kept;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn var_bump_activity(&mut self, var: usize) {
        self.order_heap.bump(var, self.var_inc);
        if self.order_heap.activity(var) > 1e100 {
            self.order_heap.rescale(1e-100);
            self.var_inc *= 1e-100;
        }
    }

    fn var_decay_activity(&mut self) {
        self.var_inc /= self.var_decay;
    }

    fn cla_bump_activity(&mut self, cref: ClauseRef) {
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn cla_decay_activity(&mut self) {
        self.cla_inc /= self.cla_decay;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;

        loop {
            self.cla_bump_activity(cref);
            let start = usize::from(p.is_some());
            // Walk the clause by index: bumping activities needs `&mut self`,
            // so holding a borrow of the clause arena (or cloning its
            // literals, as this loop once did) is off the table.
            for i in start..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[i];
                let v = q.var().index();
                if !self.seen[v] && self.vardata[v].level > 0 {
                    self.seen[v] = true;
                    self.var_bump_activity(v);
                    if self.vardata[v].level >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("p set above").var().index();
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("p set above");
                break;
            }
            cref = self.vardata[pv]
                .reason
                .expect("non-decision literal must have a reason");
        }

        // Simple clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.literal_redundant(l) {
                minimized.push(l);
            }
        }

        // Compute backtrack level = second-highest level in the clause.
        let backtrack = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.vardata[minimized[i].var().index()].level
                    > self.vardata[minimized[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.vardata[minimized[1].var().index()].level
        };

        // Clear seen flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        (minimized, backtrack)
    }

    /// A literal is redundant in a learnt clause if its reason clause's other
    /// literals are all already marked seen (a cheap, local version of
    /// recursive minimization).
    fn literal_redundant(&self, lit: Lit) -> bool {
        let v = lit.var().index();
        match self.vardata[v].reason {
            None => false,
            Some(cref) => self.clauses[cref].lits.iter().all(|&q| {
                let qv = q.var().index();
                qv == v || self.seen[qv] || self.vardata[qv].level == 0
            }),
        }
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.assigns[v] = LBool::Undef;
            self.polarity[v] = l.is_positive();
            self.vardata[v].reason = None;
            self.order_heap.insert(v);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order_heap.pop_max() {
            if self.assigns[v] == LBool::Undef {
                return Some(Var(v as u32));
            }
        }
        None
    }

    /// Deletes roughly half of the learnt clauses, keeping the most active.
    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, _)| i)
            .collect();
        if learnt_refs.len() < 2 {
            return;
        }
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnt_refs
            .iter()
            .map(|&cref| {
                let first = self.clauses[cref].lits[0];
                self.vardata[first.var().index()].reason == Some(cref)
                    && self.lit_value(first) == LBool::True
            })
            .collect();
        let half = learnt_refs.len() / 2;
        for (i, &cref) in learnt_refs.iter().enumerate().take(half) {
            if !locked[i] {
                self.clauses[cref].deleted = true;
                self.num_learnts = self.num_learnts.saturating_sub(1);
            }
        }
        self.stats.learnt_clauses = self.num_learnts as u64;
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// The assumptions are treated as temporary decisions: the result is
    /// relative to them, and the solver can be reused afterwards with
    /// different assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve cannot exhaust its budget")
    }

    /// Solves under assumptions with a conflict budget. Returns `None` if the
    /// budget was exhausted before a definitive answer was reached.
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        self.cancel_until(0);
        let mut restart_round = 0u64;
        let conflict_start = self.stats.conflicts;
        let mut max_learnts = (self.clauses.len() as f64 * 0.3).max(1000.0);

        loop {
            let budget = 100.0 * luby(2.0, restart_round);
            restart_round += 1;
            match self.search(assumptions, budget as u64, &mut max_learnts) {
                SearchOutcome::Sat(m) => {
                    self.cancel_until(0);
                    return Some(SolveResult::Sat(m));
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return Some(SolveResult::Unsat);
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    if self.stats.conflicts - conflict_start > max_conflicts {
                        self.cancel_until(0);
                        return None;
                    }
                }
            }
        }
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflict_budget: u64,
        max_learnts: &mut f64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, backtrack) = self.analyze(conflict);
                // Never backtrack past the assumptions: if the learnt clause
                // demands it, the assumption set itself may be inconsistent.
                let assumption_level = assumptions.len().min(self.decision_level());
                if backtrack < assumption_level {
                    // Re-check feasibility from scratch below assumption level.
                    self.cancel_until(backtrack.min(assumption_level));
                } else {
                    self.cancel_until(backtrack);
                }
                if learnt.len() == 1 {
                    if self.decision_level() == 0 {
                        if self.lit_value(learnt[0]) == LBool::False {
                            self.ok = false;
                            return SearchOutcome::Unsat;
                        }
                        if self.lit_value(learnt[0]) == LBool::Undef {
                            self.unchecked_enqueue(learnt[0], None);
                        }
                    } else {
                        // Backtracked only to assumption level; enqueue there.
                        if self.lit_value(learnt[0]) == LBool::Undef {
                            self.unchecked_enqueue(learnt[0], None);
                        } else if self.lit_value(learnt[0]) == LBool::False {
                            return SearchOutcome::Unsat;
                        }
                    }
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    self.cla_bump_activity(cref);
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], Some(cref));
                    } else if self.lit_value(learnt[0]) == LBool::False {
                        // The asserting literal is falsified even after
                        // backtracking: only possible when constrained by
                        // assumptions, meaning they are inconsistent.
                        return SearchOutcome::Unsat;
                    }
                }
                self.var_decay_activity();
                self.cla_decay_activity();
                if (self.num_learnts as f64) > *max_learnts {
                    self.reduce_db();
                    *max_learnts *= 1.1;
                }
            } else {
                if conflicts_here >= conflict_budget {
                    self.cancel_until(assumptions.len().min(self.decision_level()));
                    return SearchOutcome::Restart;
                }
                // Apply assumptions as pseudo-decisions first.
                if self.decision_level() < assumptions.len() {
                    let a = assumptions[self.decision_level()];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: open an empty decision level
                            // so levels stay aligned with assumption indices.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SearchOutcome::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let values: Vec<bool> =
                            self.assigns.iter().map(|&a| a == LBool::True).collect();
                        return SearchOutcome::Sat(Model { values });
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let lit = Lit::from_var(v, self.polarity[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Checks whether a total assignment satisfies all (non-deleted, original)
    /// clauses. Intended for debugging and tests.
    pub fn verify_model(&self, model: &Model) -> bool {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .all(|c| c.lits.iter().any(|&l| model.lit_value(l)))
    }
}

enum SearchOutcome {
    Sat(Model),
    Unsat,
    Restart,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn trivially_sat_empty() {
        let mut s = Solver::new(3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new(4);
        s.add_clause(vec![lit(1)]);
        s.add_clause(vec![lit(-1), lit(2)]);
        s.add_clause(vec![lit(-2), lit(3)]);
        s.add_clause(vec![lit(-3), lit(4)]);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(0) && m.value(1) && m.value(2) && m.value(3));
            }
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn simple_unsat() {
        let mut s = Solver::new(1);
        s.add_clause(vec![lit(1)]);
        let ok = s.add_clause(vec![lit(-1)]);
        assert!(!ok || !s.solve().is_sat());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new(2);
        assert!(!s.add_clause(vec![]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p_{i,h} with i in 0..3, h in 0..2.
        let var = |i: usize, h: usize| (i * 2 + h) as u32;
        let mut s = Solver::new(6);
        for i in 0..3 {
            s.add_clause(vec![Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(vec![Lit::neg(var(i, h)), Lit::neg(var(j, h))]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_clauses() {
        let mut cnf = Cnf::new(5);
        cnf.add_clause(vec![lit(1), lit(2), lit(-3)]);
        cnf.add_clause(vec![lit(-1), lit(4)]);
        cnf.add_clause(vec![lit(3), lit(5)]);
        cnf.add_clause(vec![lit(-2), lit(-4), lit(5)]);
        let mut s = Solver::from_cnf(&cnf);
        match s.solve() {
            SolveResult::Sat(m) => assert!(cnf.eval(m.values())),
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new(2);
        s.add_clause(vec![lit(1), lit(2)]);
        assert!(s.solve_with_assumptions(&[lit(-1)]).is_sat());
        assert!(s.solve_with_assumptions(&[lit(-1), lit(-2)]) == SolveResult::Unsat);
        // Solver remains usable after an UNSAT-under-assumptions call.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_respected_in_model() {
        let mut s = Solver::new(3);
        s.add_clause(vec![lit(1), lit(2), lit(3)]);
        match s.solve_with_assumptions(&[lit(-1), lit(-2)]) {
            SolveResult::Sat(m) => {
                assert!(!m.value(0));
                assert!(!m.value(1));
                assert!(m.value(2));
            }
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..60 {
            let n = rng.gen_range(3..=8usize);
            let m = rng.gen_range(2..=24usize);
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..n) as u32;
                    c.push(if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    });
                }
                cnf.add_clause(c);
            }
            let brute_sat = (0..(1u32 << n)).any(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                cnf.eval(&a)
            });
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve();
            assert_eq!(got.is_sat(), brute_sat, "cnf: {cnf}");
            if let SolveResult::Sat(m) = got {
                assert!(cnf.eval(m.values()));
            }
        }
    }

    #[test]
    fn solve_limited_small_budget_returns_none_or_answer() {
        // A moderately hard pigeonhole instance: 6 pigeons into 5 holes.
        let n_p = 6usize;
        let n_h = 5usize;
        let var = |i: usize, h: usize| (i * n_h + h) as u32;
        let mut s = Solver::new(n_p * n_h);
        for i in 0..n_p {
            let c: Vec<Lit> = (0..n_h).map(|h| Lit::pos(var(i, h))).collect();
            s.add_clause(c);
        }
        for h in 0..n_h {
            for i in 0..n_p {
                for j in (i + 1)..n_p {
                    s.add_clause(vec![Lit::neg(var(i, h)), Lit::neg(var(j, h))]);
                }
            }
        }
        // With an unlimited budget this is UNSAT; with a tiny budget the
        // solver may give up, but must never claim SAT.
        match s.solve_limited(&[], 5) {
            None => {}
            Some(r) => assert_eq!(r, SolveResult::Unsat),
        }
    }
}
