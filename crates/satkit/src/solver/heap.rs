//! Indexed max-heap over variable activities (VSIDS order).
//!
//! The heap keeps every variable's position so that activity bumps can sift
//! the variable up in `O(log n)` without a search.

/// A binary max-heap over variables keyed by activity.
#[derive(Debug, Clone)]
pub struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
    /// Activity of each variable.
    activity: Vec<f64>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates a heap containing all `num_vars` variables with zero activity.
    pub fn new(num_vars: usize) -> Self {
        let mut h = VarHeap {
            heap: Vec::with_capacity(num_vars),
            position: vec![ABSENT; num_vars],
            activity: vec![0.0; num_vars],
        };
        for v in 0..num_vars {
            h.insert(v);
        }
        h
    }

    /// The activity of a variable.
    pub fn activity(&self, var: usize) -> f64 {
        self.activity[var]
    }

    /// Whether the variable is currently in the heap.
    pub fn contains(&self, var: usize) -> bool {
        self.position[var] != ABSENT
    }

    /// Number of variables currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts a variable (no-op if already present).
    pub fn insert(&mut self, var: usize) {
        if self.contains(var) {
            return;
        }
        self.position[var] = self.heap.len();
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop_max(&mut self) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.position[self.heap[0]] = 0;
        self.heap.pop();
        self.position[top] = ABSENT;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    /// Increases a variable's activity by `amount` and restores heap order.
    pub fn bump(&mut self, var: usize, amount: f64) {
        self.activity[var] += amount;
        if self.contains(var) {
            self.sift_up(self.position[var]);
        }
    }

    /// Multiplies all activities by `factor` (used to avoid overflow).
    pub fn rescale(&mut self, factor: f64) {
        for a in &mut self.activity {
            *a *= factor;
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i]] <= self.activity[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len()
                && self.activity[self.heap[l]] > self.activity[self.heap[largest]]
            {
                largest = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r]] > self.activity[self.heap[largest]]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i]] = i;
        self.position[self.heap[j]] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let mut h = VarHeap::new(5);
        h.bump(2, 10.0);
        h.bump(0, 5.0);
        h.bump(4, 7.5);
        assert_eq!(h.pop_max(), Some(2));
        assert_eq!(h.pop_max(), Some(4));
        assert_eq!(h.pop_max(), Some(0));
        // Remaining variables (1 and 3) have zero activity, order unspecified.
        let mut rest = vec![h.pop_max().unwrap(), h.pop_max().unwrap()];
        rest.sort();
        assert_eq!(rest, vec![1, 3]);
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn reinsert_after_pop() {
        let mut h = VarHeap::new(3);
        h.bump(1, 3.0);
        assert_eq!(h.pop_max(), Some(1));
        assert!(!h.contains(1));
        h.insert(1);
        assert!(h.contains(1));
        assert_eq!(h.pop_max(), Some(1));
    }

    #[test]
    fn rescale_preserves_order() {
        let mut h = VarHeap::new(3);
        h.bump(0, 100.0);
        h.bump(1, 50.0);
        h.rescale(1e-3);
        assert!(h.activity(0) > h.activity(1));
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut h = VarHeap::new(2);
        h.insert(0);
        h.insert(0);
        assert_eq!(h.len(), 2);
    }
}
