//! The Luby restart sequence.

/// Returns `base^(k)` scaled Luby value for restart round `i` (0-based).
///
/// The Luby sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...;
/// this function returns `base` raised to the Luby exponent, matching the
/// MiniSat restart schedule.
pub fn luby(base: f64, mut i: u64) -> f64 {
    // Find the finite subsequence that contains index i, and its size.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    base.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let expected = [
            1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 8.0,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(2.0, i as u64), e, "index {i}");
        }
    }

    #[test]
    fn luby_with_unit_base_is_constant() {
        for i in 0..32 {
            assert_eq!(luby(1.0, i), 1.0);
        }
    }
}
