//! Core CNF data structures: variables, literals, clauses and formulas.
//!
//! Variables are `u32` indices starting at 0. Literals pack a variable and a
//! sign into a single `u32` (`var * 2 + sign`), the classic MiniSat layout,
//! which keeps watcher lists and assignment tables compact.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a zero-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Creates a variable from its zero-based index.
    pub fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the zero-based index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit::pos(self.0)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::neg(self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var * 2 + sign` where `sign == 1` means negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of variable `var`.
    pub fn pos(var: u32) -> Self {
        Lit(var << 1)
    }

    /// Negative literal of variable `var`.
    pub fn neg(var: u32) -> Self {
        Lit((var << 1) | 1)
    }

    /// Builds a literal from a variable and a polarity (`true` = positive).
    pub fn from_var(var: Var, positive: bool) -> Self {
        if positive {
            Lit::pos(var.0)
        } else {
            Lit::neg(var.0)
        }
    }

    /// Builds a literal from a DIMACS-style non-zero integer.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        let var = (dimacs.unsigned_abs() - 1) as u32;
        if dimacs > 0 {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// Converts this literal to its DIMACS integer representation.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.var().0) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is the positive occurrence of its variable.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Whether the literal is the negative occurrence of its variable.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Raw encoded value (`var * 2 + sign`), usable as an array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its [`code`](Self::code).
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Evaluates this literal under an assignment to its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!")?;
        }
        write!(f, "{}", self.var())
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }

    /// The literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (i.e. unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the clause contains the given literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Returns a normalized copy: literals sorted and deduplicated, or `None`
    /// if the clause is a tautology (contains both `l` and `!l`).
    pub fn normalized(&self) -> Option<Clause> {
        let mut lits = self.lits.clone();
        lits.sort();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None; // tautology
            }
        }
        Some(Clause { lits })
    }

    /// Evaluates the clause under a total assignment (indexed by variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| l.eval(assignment[l.var().index()]))
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause::new(lits)
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
///
/// The formula also carries an optional *projection set* of variables. For
/// projected model counting, the count is the number of assignments to the
/// projection variables that can be extended to a model of the formula. When
/// the projection set is empty the formula is counted over all variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
    projection: Vec<Var>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
            projection: Vec::new(),
        }
    }

    /// Number of variables in the formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Grows the variable count to at least `num_vars`.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.num_vars = num_vars;
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Adds a clause given as a vector of literals.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable outside the formula.
    pub fn add_clause<C: Into<Clause>>(&mut self, clause: C) {
        let clause = clause.into();
        for l in clause.iter() {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} out of range (num_vars = {})",
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause(vec![lit]);
    }

    /// Appends all clauses of `other`, which must range over a compatible set
    /// of variables (its variables are merged into this formula).
    pub fn extend_from(&mut self, other: &Cnf) {
        self.ensure_vars(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Sets the projection (independent-support) variable set.
    pub fn set_projection(&mut self, vars: Vec<Var>) {
        self.projection = vars;
    }

    /// The projection variable set (may be empty).
    pub fn projection(&self) -> &[Var] {
        &self.projection
    }

    /// The projection set if present, otherwise all variables.
    pub fn effective_projection(&self) -> Vec<Var> {
        if self.projection.is_empty() {
            (0..self.num_vars as u32).map(Var).collect()
        } else {
            self.projection.clone()
        }
    }

    /// Evaluates the formula under a total assignment (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Returns a copy with normalized clauses: tautologies removed, duplicate
    /// literals removed, duplicate clauses removed.
    pub fn simplified(&self) -> Cnf {
        let mut seen = std::collections::HashSet::new();
        let mut out = Cnf::new(self.num_vars);
        out.projection = self.projection.clone();
        for c in &self.clauses {
            if let Some(n) = c.normalized() {
                if seen.insert(n.clone()) {
                    out.clauses.push(n);
                }
            }
        }
        out
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip_dimacs() {
        for d in [-5i64, -1, 1, 7, 42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn lit_from_dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lit_negation_flips_sign_only() {
        let l = Lit::pos(3);
        assert_eq!((!l).var(), l.var());
        assert!((!l).is_negative());
        assert_eq!(!!l, l);
    }

    #[test]
    fn lit_eval_respects_polarity() {
        assert!(Lit::pos(0).eval(true));
        assert!(!Lit::pos(0).eval(false));
        assert!(Lit::neg(0).eval(false));
        assert!(!Lit::neg(0).eval(true));
    }

    #[test]
    fn clause_normalized_dedups_and_detects_tautology() {
        let c = Clause::new(vec![Lit::pos(1), Lit::pos(1), Lit::neg(0)]);
        let n = c.normalized().unwrap();
        assert_eq!(n.len(), 2);

        let taut = Clause::new(vec![Lit::pos(1), Lit::neg(1)]);
        assert!(taut.normalized().is_none());
    }

    #[test]
    fn clause_eval() {
        let c = Clause::new(vec![Lit::pos(0), Lit::neg(1)]);
        assert!(c.eval(&[true, true]));
        assert!(c.eval(&[false, false]));
        assert!(!c.eval(&[false, true]));
    }

    #[test]
    fn cnf_eval_and_simplify() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(0)]);
        assert!(cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, false]));
        let s = cnf.simplified();
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn cnf_new_var_grows() {
        let mut cnf = Cnf::new(1);
        let v = cnf.new_var();
        assert_eq!(v.index(), 1);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cnf_add_clause_out_of_range_panics() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(5)]);
    }

    #[test]
    fn effective_projection_defaults_to_all_vars() {
        let mut cnf = Cnf::new(3);
        assert_eq!(cnf.effective_projection().len(), 3);
        cnf.set_projection(vec![Var(1)]);
        assert_eq!(cnf.effective_projection(), vec![Var(1)]);
    }
}
