//! A minimal multiply-rotate hasher for the hot hash tables of the kit.
//!
//! The compilation hot paths — BDD unique/ITE tables, d-DNNF hash-consing,
//! the component cache — probe hash maps once per node operation, and the
//! standard library's DoS-resistant SipHash costs more than the table work
//! it guards. These tables are keyed on process-internal integers (node
//! handles, precomputed signatures), not attacker-controlled input, so the
//! classic `rotate-xor-multiply` scheme used by rustc ("FxHash") is the
//! right trade: a couple of cycles per word, good-enough dispersion for
//! pointer-like keys.
//!
//! Implemented locally because the build is hermetic (no crates.io); the
//! algorithm is the well-known public-domain one, not a vendored crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHasher`: one rotate, one xor, one multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_nearby_keys() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                map.insert((a, b), a * 100 + b);
            }
        }
        assert_eq!(map.len(), 2500);
        assert_eq!(map[&(7, 31)], 731);
    }

    #[test]
    fn byte_stream_matches_chunked_words() {
        // write() must consume trailing bytes, not drop them.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
