//! Boolean expression AST and Tseitin CNF encoding.
//!
//! The relational-logic translation in the `relspec` crate produces arbitrary
//! boolean expressions over the *primary* variables (the adjacency-matrix
//! bits). [`TseitinEncoder`] turns such an expression into CNF, introducing
//! one auxiliary variable per compound sub-expression. Because every
//! auxiliary variable is functionally determined by the primary variables,
//! model counts *projected onto the primary variables* are preserved, which
//! is exactly the property the model counters in `modelcount` rely on.

use crate::cnf::{Cnf, Lit, Var};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A boolean expression over variables identified by `u32` indices.
///
/// Sub-expressions are reference counted so shared sub-formulas (common in
/// quantifier expansions) are encoded only once by the Tseitin encoder.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A propositional variable.
    Var(u32),
    /// Negation.
    Not(Rc<BoolExpr>),
    /// N-ary conjunction.
    And(Vec<Rc<BoolExpr>>),
    /// N-ary disjunction.
    Or(Vec<Rc<BoolExpr>>),
    /// Implication `lhs => rhs`.
    Implies(Rc<BoolExpr>, Rc<BoolExpr>),
    /// Bi-implication `lhs <=> rhs`.
    Iff(Rc<BoolExpr>, Rc<BoolExpr>),
}

impl BoolExpr {
    /// A variable expression.
    pub fn var(index: u32) -> Rc<BoolExpr> {
        Rc::new(BoolExpr::Var(index))
    }

    /// The constant true expression.
    pub fn tru() -> Rc<BoolExpr> {
        Rc::new(BoolExpr::True)
    }

    /// The constant false expression.
    pub fn fls() -> Rc<BoolExpr> {
        Rc::new(BoolExpr::False)
    }

    /// Negation with constant folding and double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Rc<BoolExpr>) -> Rc<BoolExpr> {
        match &*e {
            BoolExpr::True => BoolExpr::fls(),
            BoolExpr::False => BoolExpr::tru(),
            BoolExpr::Not(inner) => Rc::clone(inner),
            _ => Rc::new(BoolExpr::Not(e)),
        }
    }

    /// N-ary conjunction with constant folding and flattening.
    pub fn and(es: Vec<Rc<BoolExpr>>) -> Rc<BoolExpr> {
        let mut flat = Vec::with_capacity(es.len());
        for e in es {
            match &*e {
                BoolExpr::True => {}
                BoolExpr::False => return BoolExpr::fls(),
                BoolExpr::And(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(e),
            }
        }
        match flat.len() {
            0 => BoolExpr::tru(),
            1 => flat.pop().expect("length checked"),
            _ => Rc::new(BoolExpr::And(flat)),
        }
    }

    /// N-ary disjunction with constant folding and flattening.
    pub fn or(es: Vec<Rc<BoolExpr>>) -> Rc<BoolExpr> {
        let mut flat = Vec::with_capacity(es.len());
        for e in es {
            match &*e {
                BoolExpr::False => {}
                BoolExpr::True => return BoolExpr::tru(),
                BoolExpr::Or(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(e),
            }
        }
        match flat.len() {
            0 => BoolExpr::fls(),
            1 => flat.pop().expect("length checked"),
            _ => Rc::new(BoolExpr::Or(flat)),
        }
    }

    /// Binary conjunction.
    pub fn and2(a: Rc<BoolExpr>, b: Rc<BoolExpr>) -> Rc<BoolExpr> {
        BoolExpr::and(vec![a, b])
    }

    /// Binary disjunction.
    pub fn or2(a: Rc<BoolExpr>, b: Rc<BoolExpr>) -> Rc<BoolExpr> {
        BoolExpr::or(vec![a, b])
    }

    /// Implication with constant folding.
    pub fn implies(lhs: Rc<BoolExpr>, rhs: Rc<BoolExpr>) -> Rc<BoolExpr> {
        match (&*lhs, &*rhs) {
            (BoolExpr::False, _) | (_, BoolExpr::True) => BoolExpr::tru(),
            (BoolExpr::True, _) => rhs,
            (_, BoolExpr::False) => BoolExpr::not(lhs),
            _ => Rc::new(BoolExpr::Implies(lhs, rhs)),
        }
    }

    /// Bi-implication with constant folding.
    pub fn iff(lhs: Rc<BoolExpr>, rhs: Rc<BoolExpr>) -> Rc<BoolExpr> {
        match (&*lhs, &*rhs) {
            (BoolExpr::True, _) => rhs,
            (_, BoolExpr::True) => lhs,
            (BoolExpr::False, _) => BoolExpr::not(rhs),
            (_, BoolExpr::False) => BoolExpr::not(lhs),
            _ => Rc::new(BoolExpr::Iff(lhs, rhs)),
        }
    }

    /// Evaluates the expression under a total assignment indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range of `assignment`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            BoolExpr::True => true,
            BoolExpr::False => false,
            BoolExpr::Var(v) => assignment[*v as usize],
            BoolExpr::Not(e) => !e.eval(assignment),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(assignment)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(assignment)),
            BoolExpr::Implies(a, b) => !a.eval(assignment) || b.eval(assignment),
            BoolExpr::Iff(a, b) => a.eval(assignment) == b.eval(assignment),
        }
    }

    /// The largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            BoolExpr::True | BoolExpr::False => None,
            BoolExpr::Var(v) => Some(*v),
            BoolExpr::Not(e) => e.max_var(),
            BoolExpr::And(es) | BoolExpr::Or(es) => es.iter().filter_map(|e| e.max_var()).max(),
            BoolExpr::Implies(a, b) | BoolExpr::Iff(a, b) => a.max_var().max(b.max_var()),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "true"),
            BoolExpr::False => write!(f, "false"),
            BoolExpr::Var(v) => write!(f, "x{v}"),
            BoolExpr::Not(e) => write!(f, "!({e})"),
            BoolExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Implies(a, b) => write!(f, "({a} => {b})"),
            BoolExpr::Iff(a, b) => write!(f, "({a} <=> {b})"),
        }
    }
}

/// Tseitin encoder: converts [`BoolExpr`] trees into CNF.
///
/// The encoder is seeded with the number of *primary* variables; auxiliary
/// variables introduced for compound sub-expressions are allocated after the
/// primary block, so the primary variables keep their indices and can be used
/// directly as the projection set for model counting.
#[derive(Debug)]
pub struct TseitinEncoder {
    cnf: Cnf,
    num_primary: usize,
    cache: HashMap<*const BoolExpr, Lit>,
    const_true: Option<Lit>,
}

impl TseitinEncoder {
    /// Creates an encoder over `num_primary` primary variables.
    pub fn new(num_primary: usize) -> Self {
        let mut cnf = Cnf::new(num_primary);
        cnf.set_projection((0..num_primary as u32).map(Var).collect());
        TseitinEncoder {
            cnf,
            num_primary,
            cache: HashMap::new(),
            const_true: None,
        }
    }

    /// Number of primary variables.
    pub fn num_primary(&self) -> usize {
        self.num_primary
    }

    /// Encodes the expression and returns a literal that is logically
    /// equivalent to it (given the defining clauses added to the CNF).
    pub fn encode(&mut self, expr: &Rc<BoolExpr>) -> Lit {
        if let Some(&l) = self.cache.get(&Rc::as_ptr(expr)) {
            return l;
        }
        let lit = match &**expr {
            BoolExpr::True => self.true_lit(),
            BoolExpr::False => !self.true_lit(),
            BoolExpr::Var(v) => {
                assert!(
                    (*v as usize) < self.num_primary,
                    "primary variable x{v} out of declared range {}",
                    self.num_primary
                );
                Lit::pos(*v)
            }
            BoolExpr::Not(inner) => !self.encode(inner),
            BoolExpr::And(es) => {
                let lits: Vec<Lit> = es.iter().map(|e| self.encode(e)).collect();
                self.define_and(&lits)
            }
            BoolExpr::Or(es) => {
                let lits: Vec<Lit> = es.iter().map(|e| self.encode(e)).collect();
                let neg: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                !self.define_and(&neg)
            }
            BoolExpr::Implies(a, b) => {
                let la = self.encode(a);
                let lb = self.encode(b);
                let neg = [la, !lb];
                !self.define_and(&neg)
            }
            BoolExpr::Iff(a, b) => {
                let la = self.encode(a);
                let lb = self.encode(b);
                self.define_iff(la, lb)
            }
        };
        self.cache.insert(Rc::as_ptr(expr), lit);
        lit
    }

    /// Encodes the expression and asserts it (adds a unit clause on its
    /// defining literal). Returns the asserted literal.
    pub fn assert(&mut self, expr: &Rc<BoolExpr>) -> Lit {
        let l = self.encode(expr);
        self.cnf.add_unit(l);
        l
    }

    /// Encodes the expression and asserts its negation.
    pub fn assert_not(&mut self, expr: &Rc<BoolExpr>) -> Lit {
        let l = self.encode(expr);
        self.cnf.add_unit(!l);
        !l
    }

    /// Finishes encoding and returns the CNF (with the primary variables as
    /// its projection set).
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// Read-only access to the CNF built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Adds an arbitrary clause over already-allocated variables.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.cnf.add_clause(lits);
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let v = self.cnf.new_var();
        let l = v.pos();
        self.cnf.add_unit(l);
        self.const_true = Some(l);
        l
    }

    /// Introduces `a <=> (l1 & l2 & ... & lk)` and returns `a`.
    fn define_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                let a = self.cnf.new_var().pos();
                // a => li for each i
                for &l in lits {
                    self.cnf.add_clause(vec![!a, l]);
                }
                // (l1 & ... & lk) => a
                let mut big: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                big.push(a);
                self.cnf.add_clause(big);
                a
            }
        }
    }

    /// Introduces `a <=> (p <=> q)` and returns `a`.
    fn define_iff(&mut self, p: Lit, q: Lit) -> Lit {
        let a = self.cnf.new_var().pos();
        self.cnf.add_clause(vec![!a, !p, q]);
        self.cnf.add_clause(vec![!a, p, !q]);
        self.cnf.add_clause(vec![a, !p, !q]);
        self.cnf.add_clause(vec![a, p, q]);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check that for every assignment to the primary variables,
    /// the expression is satisfied iff the Tseitin CNF (with the root
    /// asserted) has an extension to the auxiliary variables.
    fn check_equisat_projected(expr: &Rc<BoolExpr>, num_primary: usize) {
        use crate::solver::{SolveResult, Solver};
        let mut enc = TseitinEncoder::new(num_primary);
        enc.assert(expr);
        let cnf = enc.into_cnf();
        for bits in 0..(1u32 << num_primary) {
            let assignment: Vec<bool> = (0..num_primary).map(|i| bits >> i & 1 == 1).collect();
            let expected = expr.eval(&assignment);
            let mut solver = Solver::from_cnf(&cnf);
            let assumptions: Vec<Lit> = (0..num_primary as u32)
                .map(|v| Lit::from_var(Var(v), assignment[v as usize]))
                .collect();
            let got = matches!(
                solver.solve_with_assumptions(&assumptions),
                SolveResult::Sat(_)
            );
            assert_eq!(
                got, expected,
                "mismatch at assignment {assignment:?} for {expr}"
            );
        }
    }

    #[test]
    fn constant_folding() {
        let t = BoolExpr::tru();
        let f = BoolExpr::fls();
        assert_eq!(*BoolExpr::not(t.clone()), BoolExpr::False);
        assert_eq!(*BoolExpr::and(vec![t.clone(), f.clone()]), BoolExpr::False);
        assert_eq!(*BoolExpr::or(vec![t.clone(), f.clone()]), BoolExpr::True);
        assert_eq!(*BoolExpr::implies(f.clone(), t.clone()), BoolExpr::True);
        let x = BoolExpr::var(0);
        assert_eq!(*BoolExpr::iff(t, x.clone()), *x);
        assert_eq!(*BoolExpr::not(BoolExpr::not(x.clone())), *x);
    }

    #[test]
    fn and_or_flattening() {
        let x = BoolExpr::var(0);
        let y = BoolExpr::var(1);
        let z = BoolExpr::var(2);
        let inner = BoolExpr::and(vec![x.clone(), y.clone()]);
        let nested = BoolExpr::and(vec![inner, z.clone()]);
        match &*nested {
            BoolExpr::And(es) => assert_eq!(es.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn eval_matches_semantics() {
        let x = BoolExpr::var(0);
        let y = BoolExpr::var(1);
        let e = BoolExpr::iff(
            BoolExpr::implies(x.clone(), y.clone()),
            BoolExpr::or2(BoolExpr::not(x.clone()), y.clone()),
        );
        for a in [[false, false], [false, true], [true, false], [true, true]] {
            assert!(e.eval(&a), "implication/or equivalence must be valid");
        }
    }

    #[test]
    fn tseitin_preserves_projected_semantics_small() {
        let x = BoolExpr::var(0);
        let y = BoolExpr::var(1);
        let z = BoolExpr::var(2);
        let e = BoolExpr::or(vec![
            BoolExpr::and(vec![x.clone(), BoolExpr::not(y.clone())]),
            BoolExpr::iff(y.clone(), z.clone()),
            BoolExpr::implies(z.clone(), x.clone()),
        ]);
        check_equisat_projected(&e, 3);
    }

    #[test]
    fn tseitin_constants() {
        let e = BoolExpr::and(vec![BoolExpr::tru(), BoolExpr::var(0)]);
        check_equisat_projected(&e, 1);
        let e2 = BoolExpr::or(vec![BoolExpr::fls(), BoolExpr::var(0)]);
        check_equisat_projected(&e2, 1);
    }

    #[test]
    fn tseitin_projection_is_primary_block() {
        let e = BoolExpr::and(vec![BoolExpr::var(0), BoolExpr::var(3)]);
        let mut enc = TseitinEncoder::new(4);
        enc.assert(&e);
        let cnf = enc.into_cnf();
        assert_eq!(cnf.projection().len(), 4);
        assert!(cnf.num_vars() >= 4);
    }

    #[test]
    #[should_panic(expected = "out of declared range")]
    fn tseitin_rejects_out_of_range_primary() {
        let mut enc = TseitinEncoder::new(1);
        enc.encode(&BoolExpr::var(3));
    }

    #[test]
    fn max_var() {
        let e = BoolExpr::or2(BoolExpr::var(2), BoolExpr::not(BoolExpr::var(7)));
        assert_eq!(e.max_var(), Some(7));
        assert_eq!(BoolExpr::tru().max_var(), None);
    }
}
