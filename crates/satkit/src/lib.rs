//! # satkit
//!
//! Propositional-logic substrate for the MCML reproduction.
//!
//! The crate provides:
//!
//! * [`cnf`] — variables, literals, clauses and CNF formulas;
//! * [`expr`] — a small boolean-expression AST together with a Tseitin
//!   encoder that turns arbitrary expressions into CNF while keeping track of
//!   *primary* (projection) variables;
//! * [`dimacs`] — DIMACS CNF reading/writing, including `c ind` projection
//!   lines as used by projected model counters;
//! * [`solver`] — a CDCL SAT solver (two-watched literals, VSIDS, first-UIP
//!   learning, Luby restarts, phase saving, assumptions);
//! * [`enumerate`] — all-solutions enumeration over a projection set using
//!   blocking clauses;
//! * [`xor`] — CNF encodings of parity (XOR) constraints, used by the
//!   hashing-based approximate model counter;
//! * [`card`] — totalizer cardinality encodings (count-preserving under
//!   projection), used by the ensemble-model CNF encodings in `mcml`;
//! * [`fxhash`] — the rustc multiply-rotate hasher for the process-internal
//!   hot hash tables (BDD unique/ITE tables, d-DNNF caches);
//! * [`bdd`] — reduced ordered binary decision diagrams with hash-consing
//!   and a node budget, used to compile ensemble vote circuits into
//!   disjoint decision-region cube covers;
//! * [`ddnnf`] — compilation of CNF into deterministic decomposable NNF
//!   circuits for compile-once / query-many projected counting (the engine
//!   behind `mcml`'s compiled counting backend).
//!
//! # Example
//!
//! ```
//! use satkit::cnf::{Cnf, Lit};
//! use satkit::solver::{Solver, SolveResult};
//!
//! // (x0 or x1) and (!x0 or x1) forces x1 = true.
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
//! cnf.add_clause(vec![Lit::neg(0), Lit::pos(1)]);
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert!(model.value(1)),
//!     SolveResult::Unsat => unreachable!("formula is satisfiable"),
//! }
//! ```

pub mod bdd;
pub mod card;
pub mod cnf;
pub mod ddnnf;
pub mod dimacs;
pub mod enumerate;
pub mod expr;
pub mod fxhash;
pub mod solver;
pub mod xor;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use expr::{BoolExpr, TseitinEncoder};
pub use solver::{Model, SolveResult, Solver};
