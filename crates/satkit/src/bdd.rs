//! Reduced ordered binary decision diagrams (ROBDDs) with hash-consing and
//! dynamic variable reordering.
//!
//! The module exists for one job in the reproduction: compiling the
//! *vote circuits* of ensemble models (random-forest majority votes,
//! AdaBoost weighted votes, GBDT additive score folds) into functions of
//! the **feature variables**, and then extracting a
//! [`cube_cover`](Bdd::cube_cover) from the diagram — a disjoint,
//! exhaustive list of cubes labelling every input with the ensemble's
//! decision. Those cubes are exactly the *decision regions* the compiled
//! AccMC/DiffMC query plans consume (`Σ mc(φ | region-cube)`), so with this
//! module the ensembles ride the same compile-once/query-many counting path
//! as single decision trees.
//!
//! Design notes:
//!
//! * Nodes are hash-consed into a unique table, so the diagram is *reduced*:
//!   no duplicate `(var, lo, hi)` triples and no redundant tests
//!   (`lo == hi` collapses). Equal functions therefore share one node.
//! * Variables are ordered by **level**, not by index: the manager carries a
//!   var ↔ level permutation (initially the identity, so the default order
//!   is by `u32` index exactly as before reordering existed). [`Bdd::ite`]
//!   is the classic recursive if-then-else apply with a memo cache,
//!   branching on the topmost level among its operands.
//! * The manager carries a **node budget**: a vote diagram over learners
//!   with pairwise-distinct float weights can reach `2^rounds` nodes, so
//!   [`Bdd::ite`] (and the other constructors) report
//!   [`BddError::TooManyNodes`] instead of exhausting memory. The budget
//!   counts *live* nodes: slots reclaimed by garbage collection are reused.
//!   Cube extraction counts root-to-sink paths first and reports
//!   [`BddError::TooManyCubes`] before materializing an oversized cover.
//!
//! # Dynamic reordering (sifting)
//!
//! A fixed variable order can be exponentially worse than the best one
//! (the classic example: `(x₀∧x₃) ∨ (x₁∧x₄) ∨ (x₂∧x₅)` is linear when the
//! pairs are adjacent and exponential when they interleave). The manager
//! therefore supports **in-place reordering**:
//!
//! * [`Bdd::swap_adjacent_levels`] exchanges two adjacent levels in place.
//!   Nodes are rewritten *without changing their [`NodeRef`]s*: every
//!   handle keeps denoting the same boolean function across swaps, so
//!   callers' roots, memo tables and caches stay valid.
//! * [`Bdd::sift`] runs Rudell's sifting: each variable (densest first) is
//!   moved through every level by adjacent swaps and parked where the
//!   reachable-node count is smallest. Sifting garbage-collects first
//!   (only nodes reachable from the caller's `roots` survive — any other
//!   handle is dangling afterwards) and again at the end, so the budget
//!   measures the live diagram.
//! * [`ReorderPolicy`] selects when reordering happens automatically:
//!   [`Off`](ReorderPolicy::Off) (never — explicit [`Bdd::sift`] calls
//!   remain available), or [`OnPressure`](ReorderPolicy::OnPressure) —
//!   [`Bdd::vote_fold`] responds to a blown node budget by sifting and
//!   retrying instead of failing, so wider ensembles fit smaller budgets.
//!
//! # Example
//!
//! ```
//! use satkit::bdd::{Bdd, NodeRef};
//!
//! let mut bdd = Bdd::new();
//! let x0 = bdd.literal(0, true).unwrap();
//! let x1 = bdd.literal(1, true).unwrap();
//! let f = bdd.or(x0, x1).unwrap(); // x0 ∨ x1
//! assert!(bdd.eval(f, &[true, false]));
//! assert!(!bdd.eval(f, &[false, false]));
//! let cubes = bdd.cube_cover(f).unwrap();
//! // Every input satisfies exactly one cube of the cover.
//! assert_eq!(cubes.iter().map(|c| 1u128 << (2 - c.lits.len())).sum::<u128>(), 4);
//! ```

use crate::fxhash::FxHashMap;
use std::fmt;

/// A handle to a node of a [`Bdd`] manager. The two sinks are
/// [`Bdd::FALSE`] and [`Bdd::TRUE`]; every other handle points at a decision
/// node owned by the manager that created it. Reordering rewrites nodes in
/// place, so a handle keeps denoting the same boolean function across
/// [`Bdd::swap_adjacent_levels`] and [`Bdd::sift`] — but [`Bdd::sift`]
/// garbage-collects, so only handles reachable from its `roots` survive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

/// An interned decision node: branch on `var`, follow `lo` when it is
/// false, `hi` when it is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// When a [`Bdd`] manager reorders its variables automatically.
///
/// Explicit reordering — calling [`Bdd::sift`] directly — is available
/// under every policy; the policy only governs what the manager does on its
/// own when a [`vote_fold`](Bdd::vote_fold) hits the node budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReorderPolicy {
    /// Never reorder automatically: a blown node budget is reported as
    /// [`BddError::TooManyNodes`] immediately (the pre-reordering
    /// behaviour).
    #[default]
    Off,
    /// Reorder under budget pressure: when a [`vote_fold`](Bdd::vote_fold)
    /// step exceeds the node budget, garbage-collect, sift, and retry the
    /// step; the error only surfaces if the reordered diagram still does
    /// not fit.
    OnPressure,
}

/// Errors reported by the size-guarded [`Bdd`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// An operation would have materialized more decision nodes than the
    /// manager's budget allows.
    TooManyNodes {
        /// Nodes alive when the bound was hit.
        nodes: usize,
        /// The configured node budget.
        bound: usize,
    },
    /// A [`cube_cover`](Bdd::cube_cover) would contain more cubes than the
    /// manager's budget allows.
    TooManyCubes {
        /// Lower bound on the cubes of the cover when extraction gave up.
        cubes: usize,
        /// The configured budget.
        bound: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::TooManyNodes { nodes, bound } => {
                write!(
                    f,
                    "BDD exceeded its node budget ({nodes} nodes, bound {bound})"
                )
            }
            BddError::TooManyCubes { cubes, bound } => {
                write!(
                    f,
                    "BDD cube cover exceeded its budget ({cubes}+ cubes, bound {bound})"
                )
            }
        }
    }
}

impl std::error::Error for BddError {}

/// One cube of a [`Bdd::cube_cover`]: the literals fixed along a
/// root-to-sink path (as `(variable, polarity)` pairs, in the diagram's
/// current level order) and the sink value the path reaches. Variables
/// absent from `lits` are free — the cube covers both values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddCube {
    /// The `(variable, polarity)` literals of the cube.
    pub lits: Vec<(u32, bool)>,
    /// The function value on every input of the cube.
    pub value: bool,
}

/// Cap on the automatic sift-and-retry attempts of one
/// [`vote_fold`](Bdd::vote_fold) under [`ReorderPolicy::OnPressure`] — a
/// fold whose diagram keeps outgrowing the budget after this many
/// reorderings is genuinely too large, and each extra sift only delays the
/// typed error.
const MAX_FOLD_SIFTS: usize = 32;

/// Immutable context of one [`staged_vote_fold`](Bdd::staged_vote_fold).
/// The fold recurses once per reachable abstract vote state; hoisting the
/// loop-invariant arguments into one borrowed struct keeps each recursion
/// frame down to the two values that actually change (`stage`, `state`)
/// plus the mutable tables.
struct FoldCtx<'a, C, D> {
    stages: &'a [Vec<NodeRef>],
    guards: &'a [NodeRef],
    cast: &'a C,
    decide: &'a D,
    bound: usize,
}

impl Node {
    /// Sentinel filling a garbage-collected arena slot. Never interned:
    /// real nodes cannot carry the reserved sink variable.
    const FREE: Node = Node {
        var: u32::MAX,
        lo: NodeRef(0),
        hi: NodeRef(0),
    };
}

/// A reduced ordered BDD manager: a shared node store plus the operation
/// caches. All nodes of one computation must come from one manager.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    /// Arena indices of garbage-collected slots, reused by allocation.
    free: Vec<u32>,
    unique: FxHashMap<Node, NodeRef>,
    ite_cache: FxHashMap<(NodeRef, NodeRef, NodeRef), NodeRef>,
    /// Memo table of [`vote_fold`](Bdd::vote_fold), keyed on
    /// `(voter index, vote state)`. Owned by the manager so repeated folds
    /// on one manager reuse the allocation instead of building a fresh map
    /// per fold.
    vote_memo: FxHashMap<(u32, u64), NodeRef>,
    /// `level_of[var]` — the level a variable currently sits at (smaller =
    /// closer to the root). Initially the identity permutation.
    level_of: Vec<u32>,
    /// `var_at[level]` — the inverse permutation.
    var_at: Vec<u32>,
    bound: usize,
    policy: ReorderPolicy,
    /// Automatic sifts performed by the current [`vote_fold`](Bdd::vote_fold).
    fold_sifts: usize,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// The false sink.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The true sink.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Sentinel variable index of the sinks, ordered after every real
    /// variable.
    const SINK_VAR: u32 = u32::MAX;

    /// Sentinel level of the sinks, below every real level.
    const SINK_LEVEL: u32 = u32::MAX;

    /// A manager with an effectively unlimited node budget.
    pub fn new() -> Self {
        Bdd::with_node_budget(usize::MAX)
    }

    /// A manager that fails any operation pushing the number of live
    /// decision nodes (sinks excluded, garbage-collected slots reusable)
    /// past `bound`.
    pub fn with_node_budget(bound: usize) -> Self {
        // Seed the node store and both operation tables with room for a
        // typical vote diagram: growing them from empty costs a rehash of
        // every entry at each doubling, which shows up on the region
        // extraction hot path (many short-lived managers, one per model).
        let seed_capacity = bound.saturating_add(1).min(1 << 10);
        Bdd {
            nodes: Vec::with_capacity(seed_capacity),
            free: Vec::new(),
            unique: FxHashMap::with_capacity_and_hasher(seed_capacity, Default::default()),
            ite_cache: FxHashMap::with_capacity_and_hasher(seed_capacity, Default::default()),
            vote_memo: FxHashMap::default(),
            level_of: Vec::new(),
            var_at: Vec::new(),
            bound,
            policy: ReorderPolicy::Off,
            fold_sifts: 0,
        }
    }

    /// Sets the automatic-reordering policy (default
    /// [`ReorderPolicy::Off`]).
    pub fn with_reorder_policy(mut self, policy: ReorderPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The manager's automatic-reordering policy.
    pub fn reorder_policy(&self) -> ReorderPolicy {
        self.policy
    }

    /// Number of live decision nodes (sinks and garbage-collected slots
    /// excluded) — the quantity the node budget bounds.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// The current variable order, root level first. Starts as the
    /// identity over the variables seen so far; [`sift`](Bdd::sift) and
    /// [`swap_adjacent_levels`](Bdd::swap_adjacent_levels) permute it.
    pub fn variable_order(&self) -> &[u32] {
        &self.var_at
    }

    /// The sink for a boolean constant.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Registers `var` (and any smaller index not yet seen) at the bottom
    /// of the order, keeping the default index order for fresh managers.
    fn ensure_var(&mut self, var: u32) {
        assert!(var != Bdd::SINK_VAR, "variable index reserved for sinks");
        while self.level_of.len() <= var as usize {
            let v = self.level_of.len() as u32;
            self.level_of.push(v);
            self.var_at.push(v);
        }
    }

    /// The function of a single literal: `var` when `positive`, `¬var`
    /// otherwise.
    pub fn literal(&mut self, var: u32, positive: bool) -> Result<NodeRef, BddError> {
        self.ensure_var(var);
        if positive {
            self.mk(var, Bdd::FALSE, Bdd::TRUE)
        } else {
            self.mk(var, Bdd::TRUE, Bdd::FALSE)
        }
    }

    fn node(&self, r: NodeRef) -> Node {
        let n = self.nodes[r.0 as usize - 2];
        debug_assert!(n != Node::FREE, "dangling NodeRef into a collected slot");
        n
    }

    fn var_of(&self, r: NodeRef) -> u32 {
        if r == Bdd::FALSE || r == Bdd::TRUE {
            Bdd::SINK_VAR
        } else {
            self.node(r).var
        }
    }

    /// The level `r` branches at ([`SINK_LEVEL`](Self::SINK_LEVEL) for the
    /// sinks, which sit below every variable). The hot paths use
    /// [`branch_info`](Self::branch_info) instead; this remains the
    /// readable form for invariant checks.
    #[cfg(test)]
    fn level_of_ref(&self, r: NodeRef) -> u32 {
        if r == Bdd::FALSE || r == Bdd::TRUE {
            Bdd::SINK_LEVEL
        } else {
            self.level_of[self.node(r).var as usize]
        }
    }

    /// The cofactors of `r` with respect to `var` (identity when `r` does
    /// not branch on `var` at its root).
    fn cofactors(&self, r: NodeRef, var: u32) -> (NodeRef, NodeRef) {
        if self.var_of(r) == var {
            let n = self.node(r);
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// Stores a fresh node, reusing a garbage-collected slot when one is
    /// available, and interns it in the unique table.
    fn alloc(&mut self, node: Node) -> NodeRef {
        let r = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                NodeRef(slot + 2)
            }
            None => {
                self.nodes.push(node);
                NodeRef(self.nodes.len() as u32 + 1)
            }
        };
        self.unique.insert(node, r);
        r
    }

    /// Interns the reduced node `(var, lo, hi)`, enforcing the node budget.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> Result<NodeRef, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.node_count() >= self.bound {
            return Err(BddError::TooManyNodes {
                nodes: self.node_count() + 1,
                bound: self.bound,
            });
        }
        Ok(self.alloc(node))
    }

    /// [`mk`](Self::mk) without the budget check — used by the reordering
    /// swaps, whose transient growth is governed by the sifting loop (and
    /// undone by the garbage collection that brackets it) rather than by
    /// the construction budget.
    fn mk_unbounded(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        self.alloc(node)
    }

    /// The level an operand branches at and its children, fetched in one
    /// arena read ([`SINK_LEVEL`](Self::SINK_LEVEL) and self-children for
    /// the sinks, which branch nowhere).
    fn branch_info(&self, r: NodeRef) -> (u32, NodeRef, NodeRef) {
        if r == Bdd::FALSE || r == Bdd::TRUE {
            (Bdd::SINK_LEVEL, r, r)
        } else {
            let n = self.node(r);
            (self.level_of[n.var as usize], n.lo, n.hi)
        }
    }

    /// If-then-else: the function `(f ∧ g) ∨ (¬f ∧ h)`. Every binary (and
    /// the unary) connective reduces to this.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> Result<NodeRef, BddError> {
        if f == Bdd::TRUE {
            return Ok(g);
        }
        if f == Bdd::FALSE {
            return Ok(h);
        }
        // Standard-triple rewrites: a branch equal to the selector is the
        // selector's value on that branch (ite(f, f, h) = f ∨ h and
        // ite(f, g, f) = f ∧ g — without complement edges these are the
        // applicable identities). Canonicalizing improves cache hits and
        // lets the terminal checks below fire more often.
        let g = if g == f { Bdd::TRUE } else { g };
        let h = if h == f { Bdd::FALSE } else { h };
        if g == h {
            return Ok(g);
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        // One arena read per operand: level and both children together,
        // instead of separate level/cofactor lookups re-reading the node.
        let (fl, f_lo, f_hi) = self.branch_info(f);
        let (gl, g_lo, g_hi) = self.branch_info(g);
        let (hl, h_lo, h_hi) = self.branch_info(h);
        let level = fl.min(gl).min(hl);
        let var = self.var_at[level as usize];
        let (f0, f1) = if fl == level { (f_lo, f_hi) } else { (f, f) };
        let (g0, g1) = if gl == level { (g_lo, g_hi) } else { (g, g) };
        let (h0, h1) = if hl == level { (h_lo, h_hi) } else { (h, h) };
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(var, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction. Commutative, so the operands are ordered by handle
    /// before the [`ite`](Self::ite) call — `a ∧ b` and `b ∧ a` share one
    /// cache entry.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, BddError> {
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.ite(a, b, Bdd::FALSE)
    }

    /// Disjunction. Commutative, so the operands are ordered by handle
    /// before the [`ite`](Self::ite) call — `a ∨ b` and `b ∨ a` share one
    /// cache entry.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, BddError> {
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.ite(a, Bdd::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, Bdd::FALSE, Bdd::TRUE)
    }

    /// Evaluates the function rooted at `root` under an assignment indexed
    /// by variable.
    ///
    /// # Panics
    ///
    /// Panics if a variable tested on the path is out of `assignment`'s
    /// bounds.
    pub fn eval(&self, root: NodeRef, assignment: &[bool]) -> bool {
        let mut r = root;
        loop {
            if r == Bdd::TRUE {
                return true;
            }
            if r == Bdd::FALSE {
                return false;
            }
            let n = self.node(r);
            r = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Exchanges the variables at `level` and `level + 1` **in place**,
    /// preserving every live handle's function and the reduced/hash-consed
    /// invariants.
    ///
    /// Only nodes at `level` whose children test the variable below are
    /// rewritten (their content changes, their [`NodeRef`] does not); every
    /// other node is untouched. Nodes created by the rewrite bypass the
    /// construction budget — swap growth is transient and bounded by the
    /// sifting loop that drives it.
    ///
    /// # Panics
    ///
    /// Panics unless both `level` and `level + 1` are occupied levels.
    pub fn swap_adjacent_levels(&mut self, level: usize) {
        assert!(
            level + 1 < self.var_at.len(),
            "swap needs two adjacent levels, got level {level} of {}",
            self.var_at.len()
        );
        let x = self.var_at[level];
        let y = self.var_at[level + 1];
        // Nodes testing x above a y-child change structure; everything else
        // just changes level, which is recorded only in the permutation.
        let rewrite: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.var == x && (self.var_of(n.lo) == y || self.var_of(n.hi) == y))
            .map(|(i, _)| i)
            .collect();
        // Reorder the permutation first so `mk` places x below y.
        self.var_at.swap(level, level + 1);
        self.level_of.swap(x as usize, y as usize);
        // Drop the stale unique-table entries before any `mk` can observe
        // them; rewritten contents are re-interned below.
        for &i in &rewrite {
            self.unique.remove(&self.nodes[i]);
        }
        for &i in &rewrite {
            let n = self.nodes[i];
            // f = x ? (y ? hi1 : hi0) : (y ? lo1 : lo0)
            //   = y ? (x ? hi1 : lo1) : (x ? hi0 : lo0)
            let (lo0, lo1) = self.cofactors(n.lo, y);
            let (hi0, hi1) = self.cofactors(n.hi, y);
            let new_lo = self.mk_unbounded(x, lo0, hi0);
            let new_hi = self.mk_unbounded(x, lo1, hi1);
            // With full reduction the rewritten content is provably fresh:
            // at least one child is an x-node (otherwise the original node
            // was redundant), and no pre-existing node can have an x-child
            // at this point in the order.
            let rewritten = Node {
                var: y,
                lo: new_lo,
                hi: new_hi,
            };
            self.nodes[i] = rewritten;
            self.unique.insert(rewritten, NodeRef(i as u32 + 2));
        }
    }

    /// Marks every decision node reachable from `roots`. The returned
    /// bitmap is indexed by arena slot.
    fn mark_reachable(&self, roots: &[NodeRef]) -> Vec<bool> {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeRef> = roots
            .iter()
            .copied()
            .filter(|&r| r != Bdd::FALSE && r != Bdd::TRUE)
            .collect();
        while let Some(r) = stack.pop() {
            let slot = r.0 as usize - 2;
            if marked[slot] {
                continue;
            }
            marked[slot] = true;
            let n = self.nodes[slot];
            for child in [n.lo, n.hi] {
                if child != Bdd::FALSE && child != Bdd::TRUE {
                    stack.push(child);
                }
            }
        }
        marked
    }

    /// Number of decision nodes reachable from `roots` — the size metric
    /// sifting minimizes (the arena may additionally hold garbage awaiting
    /// collection).
    pub fn reachable_count(&self, roots: &[NodeRef]) -> usize {
        self.mark_reachable(roots).iter().filter(|&&m| m).count()
    }

    /// Reclaims every node not reachable from `roots`: the slot goes onto
    /// the free list (reused by later allocations) and its unique-table
    /// entry disappears. The operation caches are cleared — they may hold
    /// collected handles.
    ///
    /// Any [`NodeRef`] not reachable from `roots` is dangling afterwards.
    pub fn collect_garbage(&mut self, roots: &[NodeRef]) {
        let marked = self.mark_reachable(roots);
        for (i, keep) in marked.iter().enumerate() {
            if !keep && self.nodes[i] != Node::FREE {
                self.unique.remove(&self.nodes[i]);
                self.nodes[i] = Node::FREE;
                self.free.push(i as u32);
            }
        }
        self.ite_cache.clear();
        self.vote_memo.clear();
    }

    /// Rudell-style sifting: garbage-collects down to `roots`, then moves
    /// each variable (densest first) through every level by
    /// [adjacent swaps](Bdd::swap_adjacent_levels) and parks it at the
    /// position minimizing the reachable-node count. A sweep direction is
    /// abandoned early when the diagram doubles past the best size seen.
    ///
    /// Handles in `roots` remain valid and keep their functions; every
    /// other handle must be considered dangling (the collection reclaims
    /// it). Sifting never fails — if no better order exists the diagram is
    /// simply left at the best (possibly original) position per variable.
    pub fn sift(&mut self, roots: &[NodeRef]) {
        self.collect_garbage(roots);
        let levels = self.var_at.len();
        if levels < 2 {
            return;
        }
        let mut population = vec![0usize; levels];
        for n in &self.nodes {
            if *n != Node::FREE {
                population[n.var as usize] += 1;
            }
        }
        let mut vars: Vec<u32> = (0..levels as u32)
            .filter(|&v| population[v as usize] > 0)
            .collect();
        vars.sort_by_key(|&v| std::cmp::Reverse(population[v as usize]));
        for var in vars {
            // Keep the arena lean: each variable's sweep creates transient
            // nodes the next sweep should not have to walk around.
            self.collect_garbage(roots);
            self.sift_var(var, roots);
        }
        self.collect_garbage(roots);
    }

    /// Sifts one variable: down to the bottom, up to the top, then back to
    /// the best level seen.
    fn sift_var(&mut self, var: u32, roots: &[NodeRef]) {
        let levels = self.var_at.len();
        let mut cur = self.level_of[var as usize] as usize;
        let mut best = cur;
        let mut best_size = self.reachable_count(roots);
        // Abandon a sweep direction once the diagram doubles past the best
        // size seen (Rudell's max-growth heuristic).
        let grow_limit = best_size.saturating_mul(2).max(16);
        while cur + 1 < levels {
            self.swap_adjacent_levels(cur);
            cur += 1;
            let size = self.reachable_count(roots);
            if size < best_size {
                best_size = size;
                best = cur;
            }
            if size > grow_limit {
                break;
            }
        }
        while cur > 0 {
            self.swap_adjacent_levels(cur - 1);
            cur -= 1;
            let size = self.reachable_count(roots);
            if size < best_size {
                best_size = size;
                best = cur;
            }
            if size > grow_limit {
                break;
            }
        }
        // Every visited position is at or below `cur` when a sweep
        // abandons, so the best level is always reachable by settling
        // downward.
        while cur < best {
            self.swap_adjacent_levels(cur);
            cur += 1;
        }
    }

    /// Compiles an ensemble vote `decide(state after every voter)` into the
    /// diagram — the builder behind the random-forest majority vote and the
    /// AdaBoost weighted vote.
    ///
    /// `voters[i]` is the diagram of voter `i`'s positive region; `cast`
    /// folds one vote into the running `u64` state (`true` = the voter
    /// fired; a tally fits directly, an `f64` partial sum travels as its
    /// bit pattern), and `decide` maps a final state to the ensemble's
    /// output. This is the two-alternative case of
    /// [`staged_vote_fold`](Bdd::staged_vote_fold) — one stage per voter,
    /// whose guard is the voter's region and whose "otherwise" branch is
    /// the vote not firing — and shares all of its machinery: the
    /// manager-owned memo table, the state-space cap, and the
    /// [`ReorderPolicy::OnPressure`] sift-and-retry on budget pressure.
    pub fn vote_fold(
        &mut self,
        voters: &[NodeRef],
        initial: u64,
        cast: &impl Fn(usize, u64, bool) -> u64,
        decide: &impl Fn(u64) -> bool,
        vote_node_bound: usize,
    ) -> Result<NodeRef, BddError> {
        let stages: Vec<Vec<NodeRef>> = voters.iter().map(|&v| vec![v]).collect();
        self.staged_vote_fold(
            &stages,
            initial,
            &|stage, alternative, state| cast(stage, state, alternative == 0),
            decide,
            vote_node_bound,
        )
    }

    /// Compiles a **staged** vote `decide(state after every stage)` into
    /// the diagram — the general additive-score fold behind
    /// [`vote_fold`](Bdd::vote_fold) and the GBDT leaf fold.
    ///
    /// Stage `t` chooses among `stages[t].len() + 1` mutually exclusive
    /// alternatives: alternative `j < stages[t].len()` is guarded by the
    /// diagram `stages[t][j]`, and the last alternative (index
    /// `stages[t].len()`) is the implicit *otherwise* branch, taken when no
    /// guard holds. The guards of one stage must be **pairwise disjoint**
    /// (so the chained if-then-else tests are order-independent); when they
    /// are also exhaustive with the otherwise-alternative (a regression
    /// tree's leaf cubes), every input takes exactly one alternative per
    /// stage. `cast(stage, alternative, state)` advances the `u64` state —
    /// a tally directly, or an `f64` partial sum as its bit pattern.
    ///
    /// Staging is what keeps multi-way voters tractable: a gradient-boosted
    /// tree with `k` leaves folded as `k` independent binary voters would
    /// enumerate abstract subsets of leaves (`2^k` states per tree), while
    /// one stage with `k` alternatives enumerates only the states one
    /// firing leaf per tree can reach.
    ///
    /// Memoization is keyed on `(stage, state)` in a table **owned by the
    /// manager** — cleared, allocation kept — so repeated folds on one
    /// manager reuse the allocation. The table is capped at
    /// `vote_node_bound` entries: distinct `(stage, state)` pairs are
    /// exactly the nodes of the abstract vote branching program, and
    /// bounding them keeps the fold fail-fast even when every ITE collapses
    /// to a constant (the diagram stays tiny while the state space — e.g.
    /// pairwise-distinct float partial sums — still grows exponentially).
    ///
    /// Under [`ReorderPolicy::OnPressure`], a fold step that blows the node
    /// budget garbage-collects, [sifts](Bdd::sift) and retries before
    /// reporting [`BddError::TooManyNodes`] — the state-space cap above is
    /// never retried (reordering cannot merge distinct vote states).
    pub fn staged_vote_fold(
        &mut self,
        stages: &[Vec<NodeRef>],
        initial: u64,
        cast: &impl Fn(usize, usize, u64) -> u64,
        decide: &impl Fn(u64) -> bool,
        vote_node_bound: usize,
    ) -> Result<NodeRef, BddError> {
        let mut memo = std::mem::take(&mut self.vote_memo);
        memo.clear();
        // The memo holds one entry per reachable abstract vote state; the
        // product of per-stage alternative counts bounds that from above.
        // Reserving up front (capped by the state budget and a sanity
        // ceiling) avoids rehashing the table several times mid-fold.
        let state_space = stages
            .iter()
            .try_fold(1usize, |acc, s| acc.checked_mul(s.len() + 1))
            .unwrap_or(usize::MAX);
        memo.reserve(state_space.min(vote_node_bound).min(1 << 13));
        let guards: Vec<NodeRef> = stages.iter().flatten().copied().collect();
        let ctx = FoldCtx {
            stages,
            guards: &guards,
            cast,
            decide,
            bound: vote_node_bound,
        };
        // Intermediate fold results alive across recursive calls; the
        // pressure sift must treat them as roots.
        let mut protect: Vec<NodeRef> = Vec::new();
        self.fold_sifts = 0;
        let result = self.staged_fold_rec(&ctx, 0, initial, &mut memo, &mut protect);
        // Hand the allocation back to the manager even on failure.
        self.vote_memo = memo;
        result
    }

    fn staged_fold_rec<C: Fn(usize, usize, u64) -> u64, D: Fn(u64) -> bool>(
        &mut self,
        ctx: &FoldCtx<'_, C, D>,
        stage: usize,
        state: u64,
        memo: &mut FxHashMap<(u32, u64), NodeRef>,
        protect: &mut Vec<NodeRef>,
    ) -> Result<NodeRef, BddError> {
        if stage == ctx.stages.len() {
            return Ok(self.constant((ctx.decide)(state)));
        }
        if let Some(&r) = memo.get(&(stage as u32, state)) {
            return Ok(r);
        }
        if memo.len() >= ctx.bound {
            return Err(BddError::TooManyNodes {
                nodes: memo.len() + 1,
                bound: ctx.bound,
            });
        }
        let alts = &ctx.stages[stage];
        // Build the if-then-else chain from the otherwise-branch backwards:
        // acc = g₀ ? s₀ : (g₁ ? s₁ : (… : s_otherwise)).
        let mut acc = self.staged_fold_rec(
            ctx,
            stage + 1,
            (ctx.cast)(stage, alts.len(), state),
            memo,
            protect,
        )?;
        for j in (0..alts.len()).rev() {
            // `acc` must survive any pressure sift happening below `sub`.
            protect.push(acc);
            let sub =
                self.staged_fold_rec(ctx, stage + 1, (ctx.cast)(stage, j, state), memo, protect);
            protect.pop();
            acc = self.pressure_ite(alts[j], sub?, acc, ctx.guards, memo, protect)?;
        }
        memo.insert((stage as u32, state), acc);
        Ok(acc)
    }

    /// [`ite`](Bdd::ite) with the fold's budget-pressure response: under
    /// [`ReorderPolicy::OnPressure`], a blown node budget triggers one
    /// garbage-collecting [sift](Bdd::sift) over everything the fold still
    /// needs — the stage guards, every memoized partial diagram, the
    /// in-flight intermediates, and this step's operands — and one retry.
    fn pressure_ite(
        &mut self,
        f: NodeRef,
        g: NodeRef,
        h: NodeRef,
        guards: &[NodeRef],
        memo: &FxHashMap<(u32, u64), NodeRef>,
        protect: &[NodeRef],
    ) -> Result<NodeRef, BddError> {
        match self.ite(f, g, h) {
            Ok(r) => Ok(r),
            Err(BddError::TooManyNodes { .. })
                if self.policy == ReorderPolicy::OnPressure && self.fold_sifts < MAX_FOLD_SIFTS =>
            {
                self.fold_sifts += 1;
                let mut roots: Vec<NodeRef> =
                    Vec::with_capacity(guards.len() + memo.len() + protect.len() + 3);
                roots.extend_from_slice(guards);
                roots.extend(memo.values().copied());
                roots.extend_from_slice(protect);
                roots.extend([f, g, h]);
                self.sift(&roots);
                self.ite(f, g, h)
            }
            Err(e) => Err(e),
        }
    }

    /// Number of root-to-sink paths under `root`, saturated at `cap`
    /// (paths, not nodes: a small DAG can have exponentially many).
    fn path_count(&self, root: NodeRef, cap: usize) -> usize {
        if root == Bdd::FALSE || root == Bdd::TRUE {
            return 1;
        }
        // Dense per-slot tables: the sweep touches every reachable node
        // exactly once, and arena-indexed vectors beat a hash map on that
        // walk. A separate `done` bitmap (instead of a sentinel count)
        // keeps every saturated value — including `usize::MAX` — distinct
        // from "not computed yet".
        let mut counts = vec![0usize; self.nodes.len()];
        let mut done = vec![false; self.nodes.len()];
        let resolved = |counts: &[usize], done: &[bool], r: NodeRef| -> Option<usize> {
            if r == Bdd::FALSE || r == Bdd::TRUE {
                Some(1)
            } else if done[r.0 as usize - 2] {
                Some(counts[r.0 as usize - 2])
            } else {
                None
            }
        };
        // Post-order without recursion: push unresolved children first
        // (sinks are always resolved, so only decision nodes are stacked).
        let mut stack = vec![root];
        while let Some(&r) = stack.last() {
            let slot = r.0 as usize - 2;
            if done[slot] {
                stack.pop();
                continue;
            }
            let n = self.node(r);
            match (
                resolved(&counts, &done, n.lo),
                resolved(&counts, &done, n.hi),
            ) {
                (Some(lo), Some(hi)) => {
                    counts[slot] = lo.saturating_add(hi).min(cap);
                    done[slot] = true;
                    stack.pop();
                }
                (lo, hi) => {
                    if lo.is_none() {
                        stack.push(n.lo);
                    }
                    if hi.is_none() {
                        stack.push(n.hi);
                    }
                }
            }
        }
        counts[root.0 as usize - 2]
    }

    /// The root-to-sink path cubes of the function: a **disjoint and
    /// exhaustive** cover of the input space. Every assignment follows
    /// exactly one path (the diagram is deterministic and ordered), so each
    /// input satisfies exactly one cube, whose `value` is the function's
    /// output on that input.
    ///
    /// Fails with [`BddError::TooManyCubes`] when the cover would exceed the
    /// manager's budget — path counts can be exponential in the node count.
    pub fn cube_cover(&self, root: NodeRef) -> Result<Vec<BddCube>, BddError> {
        let total = self.path_count(root, self.bound.saturating_add(1));
        if total > self.bound {
            return Err(BddError::TooManyCubes {
                cubes: total,
                bound: self.bound,
            });
        }
        let mut cover = Vec::with_capacity(total);
        // DFS over one shared literal prefix: each entry restores the
        // prefix to its depth and appends its own literal, so only the
        // emitted cubes are materialized — no per-node prefix clones.
        // A frame: the node to visit, the prefix depth to restore, and the
        // literal this edge contributes (None at the root).
        type CoverFrame = (NodeRef, usize, Option<(u32, bool)>);
        let mut lits: Vec<(u32, bool)> = Vec::new();
        let mut stack: Vec<CoverFrame> = vec![(root, 0, None)];
        while let Some((r, depth, lit)) = stack.pop() {
            lits.truncate(depth);
            if let Some(l) = lit {
                lits.push(l);
            }
            if r == Bdd::TRUE || r == Bdd::FALSE {
                cover.push(BddCube {
                    lits: lits.clone(),
                    value: r == Bdd::TRUE,
                });
                continue;
            }
            let n = self.node(r);
            let depth = lits.len();
            stack.push((n.hi, depth, Some((n.var, true))));
            stack.push((n.lo, depth, Some((n.var, false))));
        }
        Ok(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check that a cover partitions `{0,1}^n` and agrees with
    /// the diagram on every input.
    fn assert_cover_partitions(bdd: &Bdd, root: NodeRef, n: usize) {
        let cover = bdd.cube_cover(root).expect("within budget");
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
            let matching: Vec<&BddCube> = cover
                .iter()
                .filter(|c| c.lits.iter().all(|&(v, p)| assignment[v as usize] == p))
                .collect();
            assert_eq!(matching.len(), 1, "input {assignment:?}");
            assert_eq!(matching[0].value, bdd.eval(root, &assignment));
        }
    }

    /// Asserts the reduced/hash-consed invariants over the live nodes:
    /// no redundant tests, no duplicated contents, children strictly below
    /// their parent in the current order, and a consistent unique table.
    fn assert_reduced(bdd: &Bdd) {
        let mut seen = std::collections::HashSet::new();
        for (i, n) in bdd.nodes.iter().enumerate() {
            if *n == Node::FREE {
                continue;
            }
            assert_ne!(n.lo, n.hi, "redundant test survived at slot {i}");
            assert!(seen.insert(*n), "duplicate content {n:?} at slot {i}");
            let parent_level = bdd.level_of[n.var as usize];
            for child in [n.lo, n.hi] {
                assert!(
                    bdd.level_of_ref(child) > parent_level,
                    "child above parent at slot {i}"
                );
            }
            assert_eq!(
                bdd.unique.get(n),
                Some(&NodeRef(i as u32 + 2)),
                "unique table out of sync at slot {i}"
            );
        }
    }

    /// The classic order-sensitive function: `(x0∧x3) ∨ (x1∧x4) ∨ (x2∧x5)`.
    /// Under the identity (interleaved) order its diagram is exponential in
    /// the number of pairs; with the pairs adjacent it is linear.
    fn disjoint_pairs(bdd: &mut Bdd, pairs: u32) -> NodeRef {
        let mut f = bdd.constant(false);
        for i in 0..pairs {
            let a = bdd.literal(i, true).unwrap();
            let b = bdd.literal(i + pairs, true).unwrap();
            let both = bdd.and(a, b).unwrap();
            f = bdd.or(f, both).unwrap();
        }
        f
    }

    #[test]
    fn literal_and_constants_evaluate() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.constant(true), Bdd::TRUE);
        assert_eq!(bdd.constant(false), Bdd::FALSE);
        let x = bdd.literal(2, true).unwrap();
        assert!(bdd.eval(x, &[false, false, true]));
        assert!(!bdd.eval(x, &[true, true, false]));
        let nx = bdd.literal(2, false).unwrap();
        assert!(bdd.eval(nx, &[false, false, false]));
    }

    #[test]
    fn ite_implements_the_connectives() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let and = bdd.and(x, y).unwrap();
        let or = bdd.or(x, y).unwrap();
        let not = bdd.not(x).unwrap();
        for bits in 0u32..4 {
            let a = [bits & 1 == 1, bits & 2 == 2];
            assert_eq!(bdd.eval(and, &a), a[0] && a[1]);
            assert_eq!(bdd.eval(or, &a), a[0] || a[1]);
            assert_eq!(bdd.eval(not, &a), !a[0]);
        }
    }

    #[test]
    fn hash_consing_shares_equal_functions() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let a = bdd.and(x, y).unwrap();
        let b = bdd.and(y, x).unwrap();
        assert_eq!(a, b, "∧ is commutative and nodes are hash-consed");
        // De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y, again a single shared node.
        let na = bdd.not(a).unwrap();
        let nx = bdd.not(x).unwrap();
        let ny = bdd.not(y).unwrap();
        let de_morgan = bdd.or(nx, ny).unwrap();
        assert_eq!(na, de_morgan);
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        // (x ∧ y) ∨ (¬x ∧ y) reduces to y: no test on x survives.
        let y = bdd.literal(1, true).unwrap();
        let f = bdd.ite(x, y, y).unwrap();
        assert_eq!(f, y);
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut bdd = Bdd::with_node_budget(2);
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let err = bdd.and(x, y).expect_err("third node exceeds the bound");
        assert!(
            matches!(err, BddError::TooManyNodes { nodes: 3, bound: 2 }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn cube_cover_partitions_the_space() {
        let mut bdd = Bdd::new();
        let x0 = bdd.literal(0, true).unwrap();
        let x1 = bdd.literal(1, true).unwrap();
        let x2 = bdd.literal(2, true).unwrap();
        let n1 = bdd.not(x1).unwrap();
        let xor = bdd.ite(x0, n1, x1).unwrap();
        let f = bdd.or(xor, x2).unwrap();
        assert_cover_partitions(&bdd, f, 3);
    }

    #[test]
    fn constant_cover_is_one_empty_cube() {
        let bdd = Bdd::new();
        let cover = bdd.cube_cover(Bdd::TRUE).unwrap();
        assert_eq!(
            cover,
            vec![BddCube {
                lits: Vec::new(),
                value: true
            }]
        );
    }

    #[test]
    fn cube_budget_is_enforced() {
        // A parity function over k variables has 2^k paths but only k nodes
        // per level; with a budget below the path count, extraction fails
        // while construction succeeds.
        let mut bdd = Bdd::with_node_budget(64);
        let mut f = bdd.constant(false);
        for v in 0..5 {
            let x = bdd.literal(v, true).unwrap();
            let nf = bdd.not(f).unwrap();
            f = bdd.ite(x, nf, f).unwrap();
        }
        let mut small = bdd.clone();
        small.bound = 8;
        let err = small.cube_cover(f).expect_err("parity has 32 paths");
        assert!(matches!(err, BddError::TooManyCubes { cubes: 9, bound: 8 }));
        assert_eq!(bdd.cube_cover(f).unwrap().len(), 32);
    }

    #[test]
    fn errors_display() {
        let n = BddError::TooManyNodes {
            nodes: 10,
            bound: 5,
        };
        let c = BddError::TooManyCubes {
            cubes: 10,
            bound: 5,
        };
        assert!(n.to_string().contains("node budget"));
        assert!(c.to_string().contains("cube cover"));
    }

    #[test]
    fn adjacent_swap_preserves_semantics_and_reduction() {
        let mut bdd = Bdd::new();
        let f = disjoint_pairs(&mut bdd, 3);
        let expected: Vec<bool> = (0u32..64)
            .map(|bits| {
                let a: Vec<bool> = (0..6).map(|k| bits >> k & 1 == 1).collect();
                (a[0] && a[3]) || (a[1] && a[4]) || (a[2] && a[5])
            })
            .collect();
        // Walk a few swaps up and down the order, checking after each that
        // the handle still denotes the same function and the diagram stays
        // reduced and hash-consed.
        for level in [0usize, 2, 4, 1, 3, 0, 0, 4] {
            bdd.swap_adjacent_levels(level);
            assert_reduced(&bdd);
            for (bits, want) in expected.iter().enumerate() {
                let a: Vec<bool> = (0..6).map(|k| bits >> k & 1 == 1).collect();
                assert_eq!(bdd.eval(f, &a), *want, "input {a:?} after swap {level}");
            }
        }
        let mut order = bdd.variable_order().to_vec();
        order.sort_unstable();
        assert_eq!(
            order,
            (0..6).collect::<Vec<u32>>(),
            "order is a permutation"
        );
    }

    #[test]
    fn garbage_collection_reclaims_unreachable_nodes() {
        let mut bdd = Bdd::new();
        let f = disjoint_pairs(&mut bdd, 3);
        let live_before = bdd.reachable_count(&[f]);
        assert!(bdd.node_count() > live_before, "construction left garbage");
        bdd.collect_garbage(&[f]);
        assert_eq!(bdd.node_count(), live_before);
        assert_reduced(&bdd);
        // Collected slots are reused by later allocations.
        let before = bdd.nodes.len();
        let x = bdd.literal(1, true).unwrap();
        let y = bdd.literal(4, true).unwrap();
        bdd.and(x, y).unwrap();
        assert_eq!(bdd.nodes.len(), before, "allocation must reuse free slots");
    }

    #[test]
    fn sifting_preserves_cube_cover_semantics() {
        let mut bdd = Bdd::new();
        let f = disjoint_pairs(&mut bdd, 3);
        let before: Vec<bool> = (0u32..64)
            .map(|bits| {
                let a: Vec<bool> = (0..6).map(|k| bits >> k & 1 == 1).collect();
                bdd.eval(f, &a)
            })
            .collect();
        bdd.sift(&[f]);
        assert_reduced(&bdd);
        // Same satisfying set, and the reordered cover still partitions.
        for (bits, want) in before.iter().enumerate() {
            let a: Vec<bool> = (0..6).map(|k| bits >> k & 1 == 1).collect();
            assert_eq!(bdd.eval(f, &a), *want, "input {a:?}");
        }
        assert_cover_partitions(&bdd, f, 6);
    }

    /// Regression pin for the sifting win on a fixed vote circuit: the
    /// interleaved disjoint-pairs majority-style vote (`decide` fires when
    /// any pair voted) must shrink measurably under sifting. The pinned
    /// sizes fail loudly if the sweep heuristic regresses.
    #[test]
    fn sifting_shrinks_the_interleaved_pairs_vote_circuit() {
        let pairs = 4u32;
        let mut bdd = Bdd::new();
        let voters: Vec<NodeRef> = (0..pairs)
            .map(|i| {
                let a = bdd.literal(i, true).unwrap();
                let b = bdd.literal(i + pairs, true).unwrap();
                bdd.and(a, b).unwrap()
            })
            .collect();
        let root = bdd
            .vote_fold(
                &voters,
                0,
                &|_, tally, fired| tally + u64::from(fired),
                &|tally| tally >= 1,
                1 << 16,
            )
            .unwrap();
        let before = bdd.reachable_count(&[root]);
        bdd.sift(&[root]);
        let after = bdd.reachable_count(&[root]);
        assert!(
            after < before,
            "sifting must shrink {before} nodes, got {after}"
        );
        // Interleaved order: 2·(2^pairs - 1) nodes (the top half remembers
        // every subset of first elements); pairs-adjacent order: 2 per pair.
        assert_eq!(before, 30, "interleaved size drifted — update the pin");
        assert_eq!(after, 8, "sifted size drifted — update the pin");
        assert_reduced(&bdd);
        for bits in 0u32..(1 << (2 * pairs)) {
            let a: Vec<bool> = (0..2 * pairs).map(|k| bits >> k & 1 == 1).collect();
            let want = (0..pairs).any(|i| a[i as usize] && a[(i + pairs) as usize]);
            assert_eq!(bdd.eval(root, &a), want);
        }
    }

    #[test]
    fn on_pressure_fold_succeeds_where_off_fails() {
        // Six interleaved pairs: the identity order needs 2^6 + … nodes,
        // the pairs-adjacent order only 12. A budget between the two makes
        // the static fold fail and the sifting fold succeed.
        let pairs = 6u32;
        let build = |policy: ReorderPolicy, bound: usize| {
            let mut bdd = Bdd::with_node_budget(bound).with_reorder_policy(policy);
            let voters: Vec<NodeRef> = (0..pairs)
                .map(|i| {
                    let a = bdd.literal(i, true).unwrap();
                    let b = bdd.literal(i + pairs, true).unwrap();
                    bdd.and(a, b).unwrap()
                })
                .collect();
            let root = bdd.vote_fold(
                &voters,
                0,
                &|_, tally, fired| tally + u64::from(fired),
                &|tally| tally >= 1,
                bound,
            )?;
            Ok((bdd, root))
        };
        let bound = 48;
        let err = build(ReorderPolicy::Off, bound).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, BddError::TooManyNodes { bound: 48, .. }),
            "unexpected error {err:?}"
        );
        let (bdd, root) = build(ReorderPolicy::OnPressure, bound).expect("sifting must fit");
        assert!(bdd.node_count() <= bound);
        for bits in [0u32, 1, 65, 4095, 2080, 33] {
            let a: Vec<bool> = (0..2 * pairs).map(|k| bits >> k & 1 == 1).collect();
            let want = (0..pairs).any(|i| a[i as usize] && a[(i + pairs) as usize]);
            assert_eq!(bdd.eval(root, &a), want, "input bits {bits}");
        }
    }

    #[test]
    fn staged_fold_matches_direct_evaluation() {
        // Two three-way stages mimicking depth-1 regression trees: stage 0
        // splits on (x0, x1), stage 1 on (x2, x3); each alternative adds a
        // distinct weight and the decision thresholds the total.
        let mut bdd = Bdd::new();
        let x0 = bdd.literal(0, true).unwrap();
        let x1 = bdd.literal(1, true).unwrap();
        let nx1 = bdd.literal(1, false).unwrap();
        let x2 = bdd.literal(2, true).unwrap();
        let x3 = bdd.literal(3, true).unwrap();
        let nx3 = bdd.literal(3, false).unwrap();
        // Guards per stage are disjoint and, with the otherwise branch,
        // exhaustive: {x0∧x1, x0∧¬x1, otherwise ¬x0}.
        let s0a = bdd.and(x0, x1).unwrap();
        let s0b = bdd.and(x0, nx1).unwrap();
        let s1a = bdd.and(x2, x3).unwrap();
        let s1b = bdd.and(x2, nx3).unwrap();
        let stages = vec![vec![s0a, s0b], vec![s1a, s1b]];
        let weights = [[5i64, 2, -3], [1, -4, 2]];
        let root = bdd
            .staged_vote_fold(
                &stages,
                0u64,
                &|stage, alt, state| (state as i64 + weights[stage][alt]) as u64,
                &|state| (state as i64) >= 2,
                1 << 12,
            )
            .unwrap();
        for bits in 0u32..16 {
            let a: Vec<bool> = (0..4).map(|k| bits >> k & 1 == 1).collect();
            let pick = |stage: usize| {
                let (hi, lo) = (a[2 * stage], a[2 * stage + 1]);
                if hi && lo {
                    0
                } else if hi {
                    1
                } else {
                    2
                }
            };
            let total = weights[0][pick(0)] + weights[1][pick(1)];
            assert_eq!(bdd.eval(root, &a), total >= 2, "input {a:?}");
        }
        assert_cover_partitions(&bdd, root, 4);
    }

    #[test]
    fn vote_fold_state_cap_is_not_retried_by_reordering() {
        // Pairwise-distinct vote states under a constant decide(): every
        // ITE collapses to a terminal, so the reduced diagram never grows —
        // the memo cap must trip instead of letting the fold enumerate all
        // 2^50 states, even under OnPressure (reordering cannot merge
        // abstract vote states).
        for policy in [ReorderPolicy::Off, ReorderPolicy::OnPressure] {
            let mut bdd = Bdd::with_node_budget(64).with_reorder_policy(policy);
            let voters: Vec<NodeRef> = (0..50u32)
                .map(|v| bdd.literal(v, true).expect("within budget"))
                .collect();
            let err = bdd
                .vote_fold(
                    &voters,
                    0u64,
                    &|_, state, fired| (state << 1) | u64::from(fired),
                    &|_| true,
                    64,
                )
                .expect_err("the state space is 2^50");
            assert!(
                matches!(err, BddError::TooManyNodes { bound: 64, .. }),
                "unexpected error {err:?} under {policy:?}"
            );
        }
    }
}
