//! Reduced ordered binary decision diagrams (ROBDDs) with hash-consing.
//!
//! The module exists for one job in the reproduction: compiling the
//! *vote circuits* of ensemble models (random-forest majority votes,
//! AdaBoost weighted votes) into functions of the **feature variables**, and
//! then extracting a [`cube_cover`](Bdd::cube_cover) from the diagram — a
//! disjoint, exhaustive list of cubes labelling every input with the
//! ensemble's decision. Those cubes are exactly the *decision regions* the
//! compiled AccMC/DiffMC query plans consume (`Σ mc(φ | region-cube)`), so
//! with this module the ensembles ride the same compile-once/query-many
//! counting path as single decision trees.
//!
//! Design notes:
//!
//! * Nodes are hash-consed into a unique table, so the diagram is *reduced*:
//!   no duplicate `(var, lo, hi)` triples and no redundant tests
//!   (`lo == hi` collapses). Equal functions therefore share one node.
//! * Variables are ordered by their `u32` index; [`Bdd::ite`] is the classic
//!   recursive if-then-else apply with a memo cache.
//! * The manager carries a **node budget**: a vote diagram over learners
//!   with pairwise-distinct float weights can reach `2^rounds` nodes, so
//!   [`Bdd::ite`] (and the other constructors) report
//!   [`BddError::TooManyNodes`] instead of exhausting memory. Cube
//!   extraction counts root-to-sink paths first and reports
//!   [`BddError::TooManyCubes`] before materializing an oversized cover.
//!
//! # Example
//!
//! ```
//! use satkit::bdd::{Bdd, NodeRef};
//!
//! let mut bdd = Bdd::new();
//! let x0 = bdd.literal(0, true).unwrap();
//! let x1 = bdd.literal(1, true).unwrap();
//! let f = bdd.or(x0, x1).unwrap(); // x0 ∨ x1
//! assert!(bdd.eval(f, &[true, false]));
//! assert!(!bdd.eval(f, &[false, false]));
//! let cubes = bdd.cube_cover(f).unwrap();
//! // Every input satisfies exactly one cube of the cover.
//! assert_eq!(cubes.iter().map(|c| 1u128 << (2 - c.lits.len())).sum::<u128>(), 4);
//! ```

use crate::fxhash::FxHashMap;
use std::fmt;

/// A handle to a node of a [`Bdd`] manager. The two sinks are
/// [`Bdd::FALSE`] and [`Bdd::TRUE`]; every other handle points at a decision
/// node owned by the manager that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

/// An interned decision node: branch on `var`, follow `lo` when it is
/// false, `hi` when it is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// Errors reported by the size-guarded [`Bdd`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// An operation would have materialized more decision nodes than the
    /// manager's budget allows.
    TooManyNodes {
        /// Nodes alive when the bound was hit.
        nodes: usize,
        /// The configured node budget.
        bound: usize,
    },
    /// A [`cube_cover`](Bdd::cube_cover) would contain more cubes than the
    /// manager's budget allows.
    TooManyCubes {
        /// Lower bound on the cubes of the cover when extraction gave up.
        cubes: usize,
        /// The configured budget.
        bound: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::TooManyNodes { nodes, bound } => {
                write!(
                    f,
                    "BDD exceeded its node budget ({nodes} nodes, bound {bound})"
                )
            }
            BddError::TooManyCubes { cubes, bound } => {
                write!(
                    f,
                    "BDD cube cover exceeded its budget ({cubes}+ cubes, bound {bound})"
                )
            }
        }
    }
}

impl std::error::Error for BddError {}

/// One cube of a [`Bdd::cube_cover`]: the literals fixed along a
/// root-to-sink path (as `(variable, polarity)` pairs, in variable order)
/// and the sink value the path reaches. Variables absent from `lits` are
/// free — the cube covers both values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddCube {
    /// The `(variable, polarity)` literals of the cube.
    pub lits: Vec<(u32, bool)>,
    /// The function value on every input of the cube.
    pub value: bool,
}

/// A reduced ordered BDD manager: a shared node store plus the operation
/// caches. All nodes of one computation must come from one manager.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: FxHashMap<Node, NodeRef>,
    ite_cache: FxHashMap<(NodeRef, NodeRef, NodeRef), NodeRef>,
    /// Memo table of [`vote_fold`](Bdd::vote_fold), keyed on
    /// `(voter index, vote state)`. Owned by the manager so repeated folds
    /// on one manager reuse the allocation instead of building a fresh map
    /// per fold.
    vote_memo: FxHashMap<(u32, u64), NodeRef>,
    bound: usize,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// The false sink.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The true sink.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Sentinel variable index of the sinks, ordered after every real
    /// variable.
    const SINK_VAR: u32 = u32::MAX;

    /// A manager with an effectively unlimited node budget.
    pub fn new() -> Self {
        Bdd::with_node_budget(usize::MAX)
    }

    /// A manager that fails any operation pushing the number of live
    /// decision nodes (sinks excluded) past `bound`.
    pub fn with_node_budget(bound: usize) -> Self {
        Bdd {
            nodes: Vec::new(),
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            vote_memo: FxHashMap::default(),
            bound,
        }
    }

    /// Number of decision nodes materialized so far (sinks excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The sink for a boolean constant.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// The function of a single literal: `var` when `positive`, `¬var`
    /// otherwise.
    pub fn literal(&mut self, var: u32, positive: bool) -> Result<NodeRef, BddError> {
        assert!(var != Bdd::SINK_VAR, "variable index reserved for sinks");
        if positive {
            self.mk(var, Bdd::FALSE, Bdd::TRUE)
        } else {
            self.mk(var, Bdd::TRUE, Bdd::FALSE)
        }
    }

    fn node(&self, r: NodeRef) -> Node {
        self.nodes[r.0 as usize - 2]
    }

    fn var_of(&self, r: NodeRef) -> u32 {
        if r == Bdd::FALSE || r == Bdd::TRUE {
            Bdd::SINK_VAR
        } else {
            self.node(r).var
        }
    }

    /// The cofactors of `r` with respect to `var` (identity when `r` does
    /// not branch on `var` at its root).
    fn cofactors(&self, r: NodeRef, var: u32) -> (NodeRef, NodeRef) {
        if self.var_of(r) == var {
            let n = self.node(r);
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// Interns the reduced node `(var, lo, hi)`, enforcing the node budget.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> Result<NodeRef, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.nodes.len() >= self.bound {
            return Err(BddError::TooManyNodes {
                nodes: self.nodes.len() + 1,
                bound: self.bound,
            });
        }
        let r = NodeRef(self.nodes.len() as u32 + 2);
        self.nodes.push(node);
        self.unique.insert(node, r);
        Ok(r)
    }

    /// If-then-else: the function `(f ∧ g) ∨ (¬f ∧ h)`. Every binary (and
    /// the unary) connective reduces to this.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> Result<NodeRef, BddError> {
        if f == Bdd::TRUE {
            return Ok(g);
        }
        if f == Bdd::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let var = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let (h0, h1) = self.cofactors(h, var);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(var, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, b, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, Bdd::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, Bdd::FALSE, Bdd::TRUE)
    }

    /// Evaluates the function rooted at `root` under an assignment indexed
    /// by variable.
    ///
    /// # Panics
    ///
    /// Panics if a variable tested on the path is out of `assignment`'s
    /// bounds.
    pub fn eval(&self, root: NodeRef, assignment: &[bool]) -> bool {
        let mut r = root;
        loop {
            if r == Bdd::TRUE {
                return true;
            }
            if r == Bdd::FALSE {
                return false;
            }
            let n = self.node(r);
            r = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Compiles an ensemble vote `decide(state after every voter)` into the
    /// diagram — the builder behind the random-forest majority vote and the
    /// AdaBoost weighted vote.
    ///
    /// `voters[i]` is the diagram of voter `i`'s positive region; `cast`
    /// folds one vote into the running `u64` state (`true` = the voter
    /// fired; a tally fits directly, an `f64` partial sum travels as its
    /// bit pattern), and `decide` maps a final state to the ensemble's
    /// output. Memoization is keyed on `(voter index, state)`, so votes
    /// whose partial tallies merge (equal counts, repeated float weights)
    /// collapse to a compact diagram.
    ///
    /// The memo table is **owned by the manager** — cleared, allocation
    /// kept — so any further folds on the same manager reuse it instead of
    /// allocating afresh (today's ensemble builders fold once per manager;
    /// the field costs them nothing and keeps multi-fold callers, like a
    /// future GBDT stage compiler, allocation-free). It is also capped at
    /// `vote_node_bound` entries: distinct
    /// `(index, state)` pairs are exactly the nodes of the abstract vote
    /// branching program, and bounding them keeps the fold fail-fast even
    /// when every ITE collapses to a constant (the diagram stays tiny
    /// while the state space — e.g. pairwise-distinct float partial sums —
    /// still grows as `2^rounds`).
    pub fn vote_fold(
        &mut self,
        voters: &[NodeRef],
        initial: u64,
        cast: &impl Fn(usize, u64, bool) -> u64,
        decide: &impl Fn(u64) -> bool,
        vote_node_bound: usize,
    ) -> Result<NodeRef, BddError> {
        let mut memo = std::mem::take(&mut self.vote_memo);
        memo.clear();
        let result =
            self.vote_fold_rec(voters, 0, initial, cast, decide, vote_node_bound, &mut memo);
        // Hand the allocation back to the manager even on failure.
        self.vote_memo = memo;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn vote_fold_rec(
        &mut self,
        voters: &[NodeRef],
        index: usize,
        state: u64,
        cast: &impl Fn(usize, u64, bool) -> u64,
        decide: &impl Fn(u64) -> bool,
        bound: usize,
        memo: &mut FxHashMap<(u32, u64), NodeRef>,
    ) -> Result<NodeRef, BddError> {
        if index == voters.len() {
            return Ok(self.constant(decide(state)));
        }
        if let Some(&r) = memo.get(&(index as u32, state)) {
            return Ok(r);
        }
        if memo.len() >= bound {
            return Err(BddError::TooManyNodes {
                nodes: memo.len() + 1,
                bound,
            });
        }
        let hi = self.vote_fold_rec(
            voters,
            index + 1,
            cast(index, state, true),
            cast,
            decide,
            bound,
            memo,
        )?;
        let lo = self.vote_fold_rec(
            voters,
            index + 1,
            cast(index, state, false),
            cast,
            decide,
            bound,
            memo,
        )?;
        let r = self.ite(voters[index], hi, lo)?;
        memo.insert((index as u32, state), r);
        Ok(r)
    }

    /// Number of root-to-sink paths below each reachable node, saturated at
    /// `cap` (paths, not nodes: a small DAG can have exponentially many).
    fn path_counts(&self, root: NodeRef, cap: usize) -> FxHashMap<NodeRef, usize> {
        let mut counts: FxHashMap<NodeRef, usize> = FxHashMap::default();
        counts.insert(Bdd::FALSE, 1);
        counts.insert(Bdd::TRUE, 1);
        // Post-order without recursion: push children first.
        let mut stack = vec![root];
        while let Some(&r) = stack.last() {
            if counts.contains_key(&r) {
                stack.pop();
                continue;
            }
            let n = self.node(r);
            match (counts.get(&n.lo), counts.get(&n.hi)) {
                (Some(&lo), Some(&hi)) => {
                    counts.insert(r, lo.saturating_add(hi).min(cap));
                    stack.pop();
                }
                _ => {
                    stack.push(n.lo);
                    stack.push(n.hi);
                }
            }
        }
        counts
    }

    /// The root-to-sink path cubes of the function: a **disjoint and
    /// exhaustive** cover of the input space. Every assignment follows
    /// exactly one path (the diagram is deterministic and ordered), so each
    /// input satisfies exactly one cube, whose `value` is the function's
    /// output on that input.
    ///
    /// Fails with [`BddError::TooManyCubes`] when the cover would exceed the
    /// manager's budget — path counts can be exponential in the node count.
    pub fn cube_cover(&self, root: NodeRef) -> Result<Vec<BddCube>, BddError> {
        let total = self.path_counts(root, self.bound.saturating_add(1))[&root];
        if total > self.bound {
            return Err(BddError::TooManyCubes {
                cubes: total,
                bound: self.bound,
            });
        }
        let mut cover = Vec::with_capacity(total);
        // DFS over one shared literal prefix: each entry restores the
        // prefix to its depth and appends its own literal, so only the
        // emitted cubes are materialized — no per-node prefix clones.
        // A frame: the node to visit, the prefix depth to restore, and the
        // literal this edge contributes (None at the root).
        type CoverFrame = (NodeRef, usize, Option<(u32, bool)>);
        let mut lits: Vec<(u32, bool)> = Vec::new();
        let mut stack: Vec<CoverFrame> = vec![(root, 0, None)];
        while let Some((r, depth, lit)) = stack.pop() {
            lits.truncate(depth);
            if let Some(l) = lit {
                lits.push(l);
            }
            if r == Bdd::TRUE || r == Bdd::FALSE {
                cover.push(BddCube {
                    lits: lits.clone(),
                    value: r == Bdd::TRUE,
                });
                continue;
            }
            let n = self.node(r);
            let depth = lits.len();
            stack.push((n.hi, depth, Some((n.var, true))));
            stack.push((n.lo, depth, Some((n.var, false))));
        }
        Ok(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check that a cover partitions `{0,1}^n` and agrees with
    /// the diagram on every input.
    fn assert_cover_partitions(bdd: &Bdd, root: NodeRef, n: usize) {
        let cover = bdd.cube_cover(root).expect("within budget");
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
            let matching: Vec<&BddCube> = cover
                .iter()
                .filter(|c| c.lits.iter().all(|&(v, p)| assignment[v as usize] == p))
                .collect();
            assert_eq!(matching.len(), 1, "input {assignment:?}");
            assert_eq!(matching[0].value, bdd.eval(root, &assignment));
        }
    }

    #[test]
    fn literal_and_constants_evaluate() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.constant(true), Bdd::TRUE);
        assert_eq!(bdd.constant(false), Bdd::FALSE);
        let x = bdd.literal(2, true).unwrap();
        assert!(bdd.eval(x, &[false, false, true]));
        assert!(!bdd.eval(x, &[true, true, false]));
        let nx = bdd.literal(2, false).unwrap();
        assert!(bdd.eval(nx, &[false, false, false]));
    }

    #[test]
    fn ite_implements_the_connectives() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let and = bdd.and(x, y).unwrap();
        let or = bdd.or(x, y).unwrap();
        let not = bdd.not(x).unwrap();
        for bits in 0u32..4 {
            let a = [bits & 1 == 1, bits & 2 == 2];
            assert_eq!(bdd.eval(and, &a), a[0] && a[1]);
            assert_eq!(bdd.eval(or, &a), a[0] || a[1]);
            assert_eq!(bdd.eval(not, &a), !a[0]);
        }
    }

    #[test]
    fn hash_consing_shares_equal_functions() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let a = bdd.and(x, y).unwrap();
        let b = bdd.and(y, x).unwrap();
        assert_eq!(a, b, "∧ is commutative and nodes are hash-consed");
        // De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y, again a single shared node.
        let na = bdd.not(a).unwrap();
        let nx = bdd.not(x).unwrap();
        let ny = bdd.not(y).unwrap();
        let de_morgan = bdd.or(nx, ny).unwrap();
        assert_eq!(na, de_morgan);
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        // (x ∧ y) ∨ (¬x ∧ y) reduces to y: no test on x survives.
        let y = bdd.literal(1, true).unwrap();
        let f = bdd.ite(x, y, y).unwrap();
        assert_eq!(f, y);
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut bdd = Bdd::with_node_budget(2);
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let err = bdd.and(x, y).expect_err("third node exceeds the bound");
        assert!(
            matches!(err, BddError::TooManyNodes { nodes: 3, bound: 2 }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn cube_cover_partitions_the_space() {
        let mut bdd = Bdd::new();
        let x0 = bdd.literal(0, true).unwrap();
        let x1 = bdd.literal(1, true).unwrap();
        let x2 = bdd.literal(2, true).unwrap();
        let n1 = bdd.not(x1).unwrap();
        let xor = bdd.ite(x0, n1, x1).unwrap();
        let f = bdd.or(xor, x2).unwrap();
        assert_cover_partitions(&bdd, f, 3);
    }

    #[test]
    fn constant_cover_is_one_empty_cube() {
        let bdd = Bdd::new();
        let cover = bdd.cube_cover(Bdd::TRUE).unwrap();
        assert_eq!(
            cover,
            vec![BddCube {
                lits: Vec::new(),
                value: true
            }]
        );
    }

    #[test]
    fn cube_budget_is_enforced() {
        // A parity function over k variables has 2^k paths but only k nodes
        // per level; with a budget below the path count, extraction fails
        // while construction succeeds.
        let mut bdd = Bdd::with_node_budget(64);
        let mut f = bdd.constant(false);
        for v in 0..5 {
            let x = bdd.literal(v, true).unwrap();
            let nf = bdd.not(f).unwrap();
            f = bdd.ite(x, nf, f).unwrap();
        }
        let mut small = bdd.clone();
        small.bound = 8;
        let err = small.cube_cover(f).expect_err("parity has 32 paths");
        assert!(matches!(err, BddError::TooManyCubes { cubes: 9, bound: 8 }));
        assert_eq!(bdd.cube_cover(f).unwrap().len(), 32);
    }

    #[test]
    fn errors_display() {
        let n = BddError::TooManyNodes {
            nodes: 10,
            bound: 5,
        };
        let c = BddError::TooManyCubes {
            cubes: 10,
            bound: 5,
        };
        assert!(n.to_string().contains("node budget"));
        assert!(c.to_string().contains("cube cover"));
    }
}
