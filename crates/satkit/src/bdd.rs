//! Reduced ordered binary decision diagrams (ROBDDs) with hash-consing.
//!
//! The module exists for one job in the reproduction: compiling the
//! *vote circuits* of ensemble models (random-forest majority votes,
//! AdaBoost weighted votes) into functions of the **feature variables**, and
//! then extracting a [`cube_cover`](Bdd::cube_cover) from the diagram — a
//! disjoint, exhaustive list of cubes labelling every input with the
//! ensemble's decision. Those cubes are exactly the *decision regions* the
//! compiled AccMC/DiffMC query plans consume (`Σ mc(φ | region-cube)`), so
//! with this module the ensembles ride the same compile-once/query-many
//! counting path as single decision trees.
//!
//! Design notes:
//!
//! * Nodes are hash-consed into a unique table, so the diagram is *reduced*:
//!   no duplicate `(var, lo, hi)` triples and no redundant tests
//!   (`lo == hi` collapses). Equal functions therefore share one node.
//! * Variables are ordered by their `u32` index; [`Bdd::ite`] is the classic
//!   recursive if-then-else apply with a memo cache.
//! * The manager carries a **node budget**: a vote diagram over learners
//!   with pairwise-distinct float weights can reach `2^rounds` nodes, so
//!   [`Bdd::ite`] (and the other constructors) report
//!   [`BddError::TooManyNodes`] instead of exhausting memory. Cube
//!   extraction counts root-to-sink paths first and reports
//!   [`BddError::TooManyCubes`] before materializing an oversized cover.
//!
//! # Example
//!
//! ```
//! use satkit::bdd::{Bdd, NodeRef};
//!
//! let mut bdd = Bdd::new();
//! let x0 = bdd.literal(0, true).unwrap();
//! let x1 = bdd.literal(1, true).unwrap();
//! let f = bdd.or(x0, x1).unwrap(); // x0 ∨ x1
//! assert!(bdd.eval(f, &[true, false]));
//! assert!(!bdd.eval(f, &[false, false]));
//! let cubes = bdd.cube_cover(f).unwrap();
//! // Every input satisfies exactly one cube of the cover.
//! assert_eq!(cubes.iter().map(|c| 1u128 << (2 - c.lits.len())).sum::<u128>(), 4);
//! ```

use std::collections::HashMap;
use std::fmt;

/// A handle to a node of a [`Bdd`] manager. The two sinks are
/// [`Bdd::FALSE`] and [`Bdd::TRUE`]; every other handle points at a decision
/// node owned by the manager that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

/// An interned decision node: branch on `var`, follow `lo` when it is
/// false, `hi` when it is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// Errors reported by the size-guarded [`Bdd`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// An operation would have materialized more decision nodes than the
    /// manager's budget allows.
    TooManyNodes {
        /// Nodes alive when the bound was hit.
        nodes: usize,
        /// The configured node budget.
        bound: usize,
    },
    /// A [`cube_cover`](Bdd::cube_cover) would contain more cubes than the
    /// manager's budget allows.
    TooManyCubes {
        /// Lower bound on the cubes of the cover when extraction gave up.
        cubes: usize,
        /// The configured budget.
        bound: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::TooManyNodes { nodes, bound } => {
                write!(
                    f,
                    "BDD exceeded its node budget ({nodes} nodes, bound {bound})"
                )
            }
            BddError::TooManyCubes { cubes, bound } => {
                write!(
                    f,
                    "BDD cube cover exceeded its budget ({cubes}+ cubes, bound {bound})"
                )
            }
        }
    }
}

impl std::error::Error for BddError {}

/// One cube of a [`Bdd::cube_cover`]: the literals fixed along a
/// root-to-sink path (as `(variable, polarity)` pairs, in variable order)
/// and the sink value the path reaches. Variables absent from `lits` are
/// free — the cube covers both values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddCube {
    /// The `(variable, polarity)` literals of the cube.
    pub lits: Vec<(u32, bool)>,
    /// The function value on every input of the cube.
    pub value: bool,
}

/// A reduced ordered BDD manager: a shared node store plus the operation
/// caches. All nodes of one computation must come from one manager.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeRef>,
    ite_cache: HashMap<(NodeRef, NodeRef, NodeRef), NodeRef>,
    bound: usize,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// The false sink.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The true sink.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Sentinel variable index of the sinks, ordered after every real
    /// variable.
    const SINK_VAR: u32 = u32::MAX;

    /// A manager with an effectively unlimited node budget.
    pub fn new() -> Self {
        Bdd::with_node_budget(usize::MAX)
    }

    /// A manager that fails any operation pushing the number of live
    /// decision nodes (sinks excluded) past `bound`.
    pub fn with_node_budget(bound: usize) -> Self {
        Bdd {
            nodes: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            bound,
        }
    }

    /// Number of decision nodes materialized so far (sinks excluded).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The sink for a boolean constant.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// The function of a single literal: `var` when `positive`, `¬var`
    /// otherwise.
    pub fn literal(&mut self, var: u32, positive: bool) -> Result<NodeRef, BddError> {
        assert!(var != Bdd::SINK_VAR, "variable index reserved for sinks");
        if positive {
            self.mk(var, Bdd::FALSE, Bdd::TRUE)
        } else {
            self.mk(var, Bdd::TRUE, Bdd::FALSE)
        }
    }

    fn node(&self, r: NodeRef) -> Node {
        self.nodes[r.0 as usize - 2]
    }

    fn var_of(&self, r: NodeRef) -> u32 {
        if r == Bdd::FALSE || r == Bdd::TRUE {
            Bdd::SINK_VAR
        } else {
            self.node(r).var
        }
    }

    /// The cofactors of `r` with respect to `var` (identity when `r` does
    /// not branch on `var` at its root).
    fn cofactors(&self, r: NodeRef, var: u32) -> (NodeRef, NodeRef) {
        if self.var_of(r) == var {
            let n = self.node(r);
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// Interns the reduced node `(var, lo, hi)`, enforcing the node budget.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> Result<NodeRef, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.nodes.len() >= self.bound {
            return Err(BddError::TooManyNodes {
                nodes: self.nodes.len() + 1,
                bound: self.bound,
            });
        }
        let r = NodeRef(self.nodes.len() as u32 + 2);
        self.nodes.push(node);
        self.unique.insert(node, r);
        Ok(r)
    }

    /// If-then-else: the function `(f ∧ g) ∨ (¬f ∧ h)`. Every binary (and
    /// the unary) connective reduces to this.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> Result<NodeRef, BddError> {
        if f == Bdd::TRUE {
            return Ok(g);
        }
        if f == Bdd::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let var = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let (h0, h1) = self.cofactors(h, var);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(var, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, b, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, Bdd::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> Result<NodeRef, BddError> {
        self.ite(a, Bdd::FALSE, Bdd::TRUE)
    }

    /// Evaluates the function rooted at `root` under an assignment indexed
    /// by variable.
    ///
    /// # Panics
    ///
    /// Panics if a variable tested on the path is out of `assignment`'s
    /// bounds.
    pub fn eval(&self, root: NodeRef, assignment: &[bool]) -> bool {
        let mut r = root;
        loop {
            if r == Bdd::TRUE {
                return true;
            }
            if r == Bdd::FALSE {
                return false;
            }
            let n = self.node(r);
            r = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Number of root-to-sink paths below each reachable node, saturated at
    /// `cap` (paths, not nodes: a small DAG can have exponentially many).
    fn path_counts(&self, root: NodeRef, cap: usize) -> HashMap<NodeRef, usize> {
        let mut counts: HashMap<NodeRef, usize> = HashMap::new();
        counts.insert(Bdd::FALSE, 1);
        counts.insert(Bdd::TRUE, 1);
        // Post-order without recursion: push children first.
        let mut stack = vec![root];
        while let Some(&r) = stack.last() {
            if counts.contains_key(&r) {
                stack.pop();
                continue;
            }
            let n = self.node(r);
            match (counts.get(&n.lo), counts.get(&n.hi)) {
                (Some(&lo), Some(&hi)) => {
                    counts.insert(r, lo.saturating_add(hi).min(cap));
                    stack.pop();
                }
                _ => {
                    stack.push(n.lo);
                    stack.push(n.hi);
                }
            }
        }
        counts
    }

    /// The root-to-sink path cubes of the function: a **disjoint and
    /// exhaustive** cover of the input space. Every assignment follows
    /// exactly one path (the diagram is deterministic and ordered), so each
    /// input satisfies exactly one cube, whose `value` is the function's
    /// output on that input.
    ///
    /// Fails with [`BddError::TooManyCubes`] when the cover would exceed the
    /// manager's budget — path counts can be exponential in the node count.
    pub fn cube_cover(&self, root: NodeRef) -> Result<Vec<BddCube>, BddError> {
        let total = self.path_counts(root, self.bound.saturating_add(1))[&root];
        if total > self.bound {
            return Err(BddError::TooManyCubes {
                cubes: total,
                bound: self.bound,
            });
        }
        let mut cover = Vec::with_capacity(total);
        let mut stack: Vec<(NodeRef, Vec<(u32, bool)>)> = vec![(root, Vec::new())];
        while let Some((r, lits)) = stack.pop() {
            if r == Bdd::TRUE || r == Bdd::FALSE {
                cover.push(BddCube {
                    lits,
                    value: r == Bdd::TRUE,
                });
                continue;
            }
            let n = self.node(r);
            let mut hi_lits = lits.clone();
            hi_lits.push((n.var, true));
            let mut lo_lits = lits;
            lo_lits.push((n.var, false));
            stack.push((n.hi, hi_lits));
            stack.push((n.lo, lo_lits));
        }
        Ok(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check that a cover partitions `{0,1}^n` and agrees with
    /// the diagram on every input.
    fn assert_cover_partitions(bdd: &Bdd, root: NodeRef, n: usize) {
        let cover = bdd.cube_cover(root).expect("within budget");
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
            let matching: Vec<&BddCube> = cover
                .iter()
                .filter(|c| c.lits.iter().all(|&(v, p)| assignment[v as usize] == p))
                .collect();
            assert_eq!(matching.len(), 1, "input {assignment:?}");
            assert_eq!(matching[0].value, bdd.eval(root, &assignment));
        }
    }

    #[test]
    fn literal_and_constants_evaluate() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.constant(true), Bdd::TRUE);
        assert_eq!(bdd.constant(false), Bdd::FALSE);
        let x = bdd.literal(2, true).unwrap();
        assert!(bdd.eval(x, &[false, false, true]));
        assert!(!bdd.eval(x, &[true, true, false]));
        let nx = bdd.literal(2, false).unwrap();
        assert!(bdd.eval(nx, &[false, false, false]));
    }

    #[test]
    fn ite_implements_the_connectives() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let and = bdd.and(x, y).unwrap();
        let or = bdd.or(x, y).unwrap();
        let not = bdd.not(x).unwrap();
        for bits in 0u32..4 {
            let a = [bits & 1 == 1, bits & 2 == 2];
            assert_eq!(bdd.eval(and, &a), a[0] && a[1]);
            assert_eq!(bdd.eval(or, &a), a[0] || a[1]);
            assert_eq!(bdd.eval(not, &a), !a[0]);
        }
    }

    #[test]
    fn hash_consing_shares_equal_functions() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let a = bdd.and(x, y).unwrap();
        let b = bdd.and(y, x).unwrap();
        assert_eq!(a, b, "∧ is commutative and nodes are hash-consed");
        // De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y, again a single shared node.
        let na = bdd.not(a).unwrap();
        let nx = bdd.not(x).unwrap();
        let ny = bdd.not(y).unwrap();
        let de_morgan = bdd.or(nx, ny).unwrap();
        assert_eq!(na, de_morgan);
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mut bdd = Bdd::new();
        let x = bdd.literal(0, true).unwrap();
        // (x ∧ y) ∨ (¬x ∧ y) reduces to y: no test on x survives.
        let y = bdd.literal(1, true).unwrap();
        let f = bdd.ite(x, y, y).unwrap();
        assert_eq!(f, y);
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut bdd = Bdd::with_node_budget(2);
        let x = bdd.literal(0, true).unwrap();
        let y = bdd.literal(1, true).unwrap();
        let err = bdd.and(x, y).expect_err("third node exceeds the bound");
        assert!(
            matches!(err, BddError::TooManyNodes { nodes: 3, bound: 2 }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn cube_cover_partitions_the_space() {
        let mut bdd = Bdd::new();
        let x0 = bdd.literal(0, true).unwrap();
        let x1 = bdd.literal(1, true).unwrap();
        let x2 = bdd.literal(2, true).unwrap();
        let n1 = bdd.not(x1).unwrap();
        let xor = bdd.ite(x0, n1, x1).unwrap();
        let f = bdd.or(xor, x2).unwrap();
        assert_cover_partitions(&bdd, f, 3);
    }

    #[test]
    fn constant_cover_is_one_empty_cube() {
        let bdd = Bdd::new();
        let cover = bdd.cube_cover(Bdd::TRUE).unwrap();
        assert_eq!(
            cover,
            vec![BddCube {
                lits: Vec::new(),
                value: true
            }]
        );
    }

    #[test]
    fn cube_budget_is_enforced() {
        // A parity function over k variables has 2^k paths but only k nodes
        // per level; with a budget below the path count, extraction fails
        // while construction succeeds.
        let mut bdd = Bdd::with_node_budget(64);
        let mut f = bdd.constant(false);
        for v in 0..5 {
            let x = bdd.literal(v, true).unwrap();
            let nf = bdd.not(f).unwrap();
            f = bdd.ite(x, nf, f).unwrap();
        }
        let mut small = bdd.clone();
        small.bound = 8;
        let err = small.cube_cover(f).expect_err("parity has 32 paths");
        assert!(matches!(err, BddError::TooManyCubes { cubes: 9, bound: 8 }));
        assert_eq!(bdd.cube_cover(f).unwrap().len(), 32);
    }

    #[test]
    fn errors_display() {
        let n = BddError::TooManyNodes {
            nodes: 10,
            bound: 5,
        };
        let c = BddError::TooManyCubes {
            cubes: 10,
            bound: 5,
        };
        assert!(n.to_string().contains("node budget"));
        assert!(c.to_string().contains("cube cover"));
    }
}
