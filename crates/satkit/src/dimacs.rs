//! DIMACS CNF serialization.
//!
//! Supports the standard `p cnf <vars> <clauses>` format plus the `c ind`
//! comment lines used by projected model counters (ApproxMC, ProjMC, GANAK)
//! to declare the projection / independent-support variable set.

use crate::cnf::{Cnf, Lit, Var};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

/// Error produced when parsing a DIMACS document fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number at which the error occurred (0 if not applicable).
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for ParseDimacsError {}

/// Serializes a CNF to DIMACS text, including `c ind` projection lines when a
/// projection set is present.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    if !cnf.projection().is_empty() {
        // Projection variables, at most 10 per `c ind` line, 0-terminated.
        for chunk in cnf.projection().chunks(10) {
            out.push_str("c ind");
            for v in chunk {
                let _ = write!(out, " {}", v.index() + 1);
            }
            out.push_str(" 0\n");
        }
    }
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for c in cnf.clauses() {
        for l in c.iter() {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS text into a [`Cnf`], honoring `c ind` projection lines.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, literals, or clauses
/// that reference variables beyond the declared count.
pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut declared_vars: Option<usize> = None;
    let mut projection: Vec<Var> = Vec::new();
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut max_var_seen: usize = 0;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("c ind") {
            for tok in rest.split_whitespace() {
                let n: i64 = i64::from_str(tok).map_err(|_| ParseDimacsError {
                    line: lineno,
                    message: format!("invalid projection variable {tok:?}"),
                })?;
                if n == 0 {
                    break;
                }
                if n < 0 {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: "projection variables must be positive".to_string(),
                    });
                }
                projection.push(Var((n - 1) as u32));
            }
            continue;
        }
        if line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: format!("malformed problem line {line:?}"),
                });
            }
            let nv = usize::from_str(parts[2]).map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("invalid variable count {:?}", parts[2]),
            })?;
            declared_vars = Some(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = i64::from_str(tok).map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("invalid literal {tok:?}"),
            })?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let lit = Lit::from_dimacs(n);
                max_var_seen = max_var_seen.max(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }

    let num_vars = declared_vars.unwrap_or(max_var_seen).max(max_var_seen);
    let mut cnf = Cnf::new(num_vars);
    for p in &projection {
        if p.index() >= num_vars {
            return Err(ParseDimacsError {
                line: 0,
                message: format!("projection variable {} out of range", p.index() + 1),
            });
        }
    }
    cnf.set_projection(projection);
    for c in clauses {
        cnf.add_clause(c);
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(2)]);
        cnf.add_clause(vec![Lit::neg(1)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        let text = to_dimacs(&cnf);
        let parsed = from_dimacs(&text).unwrap();
        assert_eq!(parsed.num_vars(), 3);
        assert_eq!(parsed.num_clauses(), 2);
        assert_eq!(parsed.projection(), cnf.projection());
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 1\n1 -2 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn clause_spanning_multiple_lines() {
        let text = "p cnf 3 1\n1 2\n3 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_dimacs("p dnf 2 1\n1 0\n").is_err());
        assert!(from_dimacs("p cnf x 1\n1 0\n").is_err());
    }

    #[test]
    fn rejects_bad_literal() {
        assert!(from_dimacs("p cnf 2 1\n1 foo 0\n").is_err());
    }

    #[test]
    fn grows_var_count_beyond_header() {
        let text = "p cnf 1 1\n1 -3 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 3);
    }

    #[test]
    fn ind_lines_chunked_on_write() {
        let mut cnf = Cnf::new(25);
        cnf.set_projection((0..25).map(Var).collect());
        let text = to_dimacs(&cnf);
        let ind_lines = text.lines().filter(|l| l.starts_with("c ind")).count();
        assert_eq!(ind_lines, 3);
        let parsed = from_dimacs(&text).unwrap();
        assert_eq!(parsed.projection().len(), 25);
    }
}
