//! All-solutions enumeration over a projection set.
//!
//! Given a CNF formula and a set of projection variables (for MCML these are
//! the adjacency-matrix bits), the enumerator repeatedly solves the formula
//! and blocks the projection of each model found, yielding every distinct
//! assignment of the projection variables that can be extended to a full
//! model. This mirrors how the Alloy analyzer's incremental SAT backend
//! enumerates all solutions of a command.

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::{SolveResult, Solver};

/// Configuration for solution enumeration.
#[derive(Debug, Clone)]
pub struct EnumerateConfig {
    /// Maximum number of solutions to produce (`usize::MAX` for unlimited).
    pub max_solutions: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        EnumerateConfig {
            max_solutions: usize::MAX,
        }
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Enumeration {
    /// The distinct projection assignments found, each a bit vector indexed
    /// in the order of the projection variable list.
    pub solutions: Vec<Vec<bool>>,
    /// True when enumeration stopped because `max_solutions` was reached, so
    /// more solutions may exist.
    pub truncated: bool,
}

impl Enumeration {
    /// Number of solutions found.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Whether no solution was found.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }
}

/// Enumerates all assignments to `projection` extendable to models of `cnf`.
///
/// If `projection` is empty, the CNF's own projection set is used (or all
/// variables if that is empty too).
pub fn enumerate_projected(cnf: &Cnf, projection: &[Var], config: &EnumerateConfig) -> Enumeration {
    let proj: Vec<Var> = if projection.is_empty() {
        cnf.effective_projection()
    } else {
        projection.to_vec()
    };
    let mut solver = Solver::from_cnf(cnf);
    let mut solutions = Vec::new();
    let mut truncated = false;

    loop {
        if solutions.len() >= config.max_solutions {
            truncated = solver.solve().is_sat();
            break;
        }
        match solver.solve() {
            SolveResult::Unsat => break,
            SolveResult::Sat(model) => {
                let bits: Vec<bool> = proj.iter().map(|v| model.value(v.0)).collect();
                // Block this projection assignment.
                let blocking: Vec<Lit> = proj
                    .iter()
                    .zip(&bits)
                    .map(|(v, &b)| Lit::from_var(*v, !b))
                    .collect();
                solutions.push(bits);
                if !solver.add_clause(blocking) {
                    break; // blocked everything
                }
            }
        }
    }

    Enumeration {
        solutions,
        truncated,
    }
}

/// Convenience wrapper: enumerate with no explicit projection and no limit.
pub fn enumerate_all(cnf: &Cnf) -> Enumeration {
    enumerate_projected(cnf, &[], &EnumerateConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Cnf, Lit};
    use crate::expr::{BoolExpr, TseitinEncoder};

    #[test]
    fn enumerates_all_models_of_small_cnf() {
        // (x0 | x1) over 2 vars has 3 models.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let e = enumerate_all(&cnf);
        assert_eq!(e.len(), 3);
        assert!(!e.truncated);
    }

    #[test]
    fn unconstrained_vars_enumerate_fully() {
        let cnf = Cnf::new(3);
        let e = enumerate_all(&cnf);
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn respects_max_solutions() {
        let cnf = Cnf::new(4);
        let e = enumerate_projected(&cnf, &[], &EnumerateConfig { max_solutions: 5 });
        assert_eq!(e.len(), 5);
        assert!(e.truncated);
    }

    #[test]
    fn projection_collapses_auxiliary_vars() {
        // Encode x0 | x1 via Tseitin (introduces aux vars), then enumerate
        // projected onto the primaries only: still exactly 3 solutions.
        let e = BoolExpr::or2(BoolExpr::var(0), BoolExpr::var(1));
        let mut enc = TseitinEncoder::new(2);
        enc.assert(&e);
        let cnf = enc.into_cnf();
        assert!(cnf.num_vars() > 2);
        let en = enumerate_projected(&cnf, &[], &EnumerateConfig::default());
        assert_eq!(en.len(), 3);
    }

    #[test]
    fn unsat_formula_enumerates_nothing() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        let e = enumerate_all(&cnf);
        assert!(e.is_empty());
        assert!(!e.truncated);
    }

    #[test]
    fn solutions_are_distinct() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1), Lit::pos(2), Lit::pos(3)]);
        let e = enumerate_all(&cnf);
        assert_eq!(e.len(), 15);
        let mut set = std::collections::HashSet::new();
        for s in &e.solutions {
            assert!(set.insert(s.clone()), "duplicate solution {s:?}");
        }
    }
}
