//! Cardinality constraints: a totalizer encoding over arbitrary literals.
//!
//! The totalizer (Bailleux–Boufkhad) builds a balanced binary tree over the
//! input literals; each node carries a unary counter `o_1 ≥ o_2 ≥ … ≥ o_m`
//! where `o_j` is true iff at least `j` of the node's inputs are true. This
//! implementation emits **both** implication directions, so every output is
//! *equivalent* to its threshold — which is what projected model counting
//! needs: after asserting `o_k` (or `¬o_k`) the encoding is satisfiable for
//! exactly the assignments of the original literals meeting (or missing) the
//! threshold, and each such assignment extends to exactly the truthful
//! counter values. Model counts projected onto the original variables are
//! therefore preserved.
//!
//! The encoding introduces `O(n log n)` auxiliary variables and `O(n²)`
//! clauses; at the ensemble sizes used by the MCML whole-space metrics
//! (tens of trees) this is negligible next to the counting itself.
//!
//! Beyond unit-weight cardinality, [`weighted_at_least`] /
//! [`assert_weighted_at_least`] encode **signed pseudo-Boolean**
//! thresholds `Σ wᵢ·ℓᵢ ≥ t` (integer weights of either sign) as a
//! memoized branching program over partial sums — the substrate for the
//! quantized MLP/SVM encoders, whose fixed-point weights do not reduce
//! to counting literals.

use crate::cnf::{Cnf, Lit};
use std::collections::HashMap;

/// A built totalizer: the unary counter outputs of the root node.
#[derive(Debug, Clone)]
pub struct Totalizer {
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Builds the totalizer circuit for `inputs` into `cnf`, allocating
    /// auxiliary variables via [`Cnf::new_var`].
    pub fn build(cnf: &mut Cnf, inputs: &[Lit]) -> Self {
        Totalizer {
            outputs: build_node(cnf, inputs),
        }
    }

    /// Number of inputs counted.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the totalizer counts zero inputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The output literal equivalent to "at least `k` inputs are true"
    /// (`k ≥ 1`). Returns `None` when `k` exceeds the input count (the
    /// threshold is then unsatisfiable).
    pub fn at_least(&self, k: usize) -> Option<Lit> {
        assert!(
            k >= 1,
            "threshold must be at least 1 (k = 0 is trivially true)"
        );
        self.outputs.get(k - 1).copied()
    }

    /// Asserts "at least `k` of the inputs are true" on `cnf`.
    pub fn assert_at_least(&self, cnf: &mut Cnf, k: usize) {
        if k == 0 {
            return;
        }
        match self.at_least(k) {
            Some(lit) => cnf.add_unit(lit),
            None => cnf.add_clause(Vec::new()), // k > n: unsatisfiable
        }
    }

    /// Asserts "at most `k` of the inputs are true" on `cnf`.
    pub fn assert_at_most(&self, cnf: &mut Cnf, k: usize) {
        if let Some(lit) = self.outputs.get(k).copied() {
            cnf.add_unit(!lit);
        }
        // k >= n: trivially true, nothing to assert.
    }
}

/// Recursively builds the counter for a slice of inputs and returns its
/// sorted outputs (`outputs[j-1]` ⟺ at least `j` of the slice are true).
fn build_node(cnf: &mut Cnf, inputs: &[Lit]) -> Vec<Lit> {
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![inputs[0]],
        n => {
            let (left, right) = inputs.split_at(n / 2);
            let a = build_node(cnf, left);
            let b = build_node(cnf, right);
            merge(cnf, &a, &b)
        }
    }
}

/// Merges two sorted unary counters into one, emitting the equivalence
/// clauses of the totalizer.
fn merge(cnf: &mut Cnf, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (p, q) = (a.len(), b.len());
    let outputs: Vec<Lit> = (0..p + q).map(|_| cnf.new_var().pos()).collect();
    // Treat a[0] / b[0] as constant true and a[p+1] / b[q+1] as constant
    // false, per the standard formulation.
    for i in 0..=p {
        for j in 0..=q {
            // sum ≥ i + j  ⇒  r_{i+j}:   (¬a_i ∨ ¬b_j ∨ r_{i+j})
            if i + j >= 1 {
                let mut clause = Vec::with_capacity(3);
                if i >= 1 {
                    clause.push(!a[i - 1]);
                }
                if j >= 1 {
                    clause.push(!b[j - 1]);
                }
                clause.push(outputs[i + j - 1]);
                cnf.add_clause(clause);
            }
            // r_{i+j+1}  ⇒  a_{i+1} ∨ b_{j+1}:   (a_{i+1} ∨ b_{j+1} ∨ ¬r_{i+j+1})
            if i + j < p + q {
                let mut clause = Vec::with_capacity(3);
                if i < p {
                    clause.push(a[i]);
                }
                if j < q {
                    clause.push(b[j]);
                }
                clause.push(!outputs[i + j]);
                cnf.add_clause(clause);
            }
        }
    }
    outputs
}

/// Appends clauses asserting that at least `k` of `lits` are true,
/// allocating auxiliary variables in `cnf`.
pub fn encode_at_least_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    if k == 0 {
        return;
    }
    if k > lits.len() {
        cnf.add_clause(Vec::new());
        return;
    }
    let tot = Totalizer::build(cnf, lits);
    tot.assert_at_least(cnf, k);
}

/// Appends clauses asserting that at most `k` of `lits` are true,
/// allocating auxiliary variables in `cnf`.
pub fn encode_at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    if k >= lits.len() {
        return;
    }
    let tot = Totalizer::build(cnf, lits);
    tot.assert_at_most(cnf, k);
}

/// The result of a pseudo-Boolean threshold encoding: a defined literal
/// equivalent to the threshold, or a constant when the weights decide it
/// outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdLit {
    /// The threshold holds for every (`true`) or no (`false`) assignment.
    Const(bool),
    /// A literal equivalent to "the weighted sum meets the threshold".
    Lit(Lit),
}

/// Defines a literal equivalent to the signed pseudo-Boolean threshold
/// `Σ wᵢ·ℓᵢ ≥ threshold`, where each term `(ℓᵢ, wᵢ)` contributes `wᵢ`
/// exactly when `ℓᵢ` is true. Weights may be negative.
///
/// The encoding is a memoized branching program over `(index, partial
/// sum)` states: at most one auxiliary variable per reachable state,
/// each defined by *equivalence* clauses, so model counts projected onto
/// the original variables are preserved — every input assignment extends
/// to exactly one assignment of the auxiliaries. States whose best- or
/// worst-case suffix already decides the comparison fold to constants,
/// which keeps the program near-linear for the sharply-peaked weight
/// profiles trained models produce.
pub fn weighted_at_least(cnf: &mut Cnf, terms: &[(Lit, i64)], threshold: i64) -> ThresholdLit {
    let n = terms.len();
    // suffix_min[i] / suffix_max[i]: bounds of Σ_{j ≥ i} wⱼ·ℓⱼ.
    let mut suffix_min = vec![0i64; n + 1];
    let mut suffix_max = vec![0i64; n + 1];
    for i in (0..n).rev() {
        let w = terms[i].1;
        suffix_min[i] = suffix_min[i + 1] + w.min(0);
        suffix_max[i] = suffix_max[i + 1] + w.max(0);
    }
    let mut builder = ThresholdBuilder {
        terms,
        threshold,
        suffix_min,
        suffix_max,
        memo: HashMap::new(),
    };
    builder.node(cnf, 0, 0)
}

/// Asserts `Σ wᵢ·ℓᵢ ≥ threshold` on `cnf` (an empty clause when the
/// threshold is unsatisfiable, nothing when it is trivial).
pub fn assert_weighted_at_least(cnf: &mut Cnf, terms: &[(Lit, i64)], threshold: i64) {
    match weighted_at_least(cnf, terms, threshold) {
        ThresholdLit::Const(true) => {}
        ThresholdLit::Const(false) => cnf.add_clause(Vec::new()),
        ThresholdLit::Lit(lit) => cnf.add_unit(lit),
    }
}

struct ThresholdBuilder<'a> {
    terms: &'a [(Lit, i64)],
    threshold: i64,
    suffix_min: Vec<i64>,
    suffix_max: Vec<i64>,
    memo: HashMap<(usize, i64), ThresholdLit>,
}

impl ThresholdBuilder<'_> {
    /// The node for "`sum` + Σ_{j ≥ index} wⱼ·ℓⱼ ≥ threshold" as a
    /// function of the suffix literals.
    fn node(&mut self, cnf: &mut Cnf, index: usize, sum: i64) -> ThresholdLit {
        if sum + self.suffix_min[index] >= self.threshold {
            return ThresholdLit::Const(true);
        }
        if sum + self.suffix_max[index] < self.threshold {
            return ThresholdLit::Const(false);
        }
        // Both bounds are 0 at index == n, so one constant arm fired
        // above; reaching here implies index < n.
        if let Some(&node) = self.memo.get(&(index, sum)) {
            return node;
        }
        let (lit, weight) = self.terms[index];
        let hi = self.node(cnf, index + 1, sum + weight);
        let lo = self.node(cnf, index + 1, sum);
        let node = ite_lit(cnf, lit, hi, lo);
        self.memo.insert((index, sum), node);
        node
    }
}

/// Defines `u ↔ (v ? hi : lo)` with equivalence (Tseitin) clauses,
/// folding constant branches so trivial nodes cost no variables.
fn ite_lit(cnf: &mut Cnf, v: Lit, hi: ThresholdLit, lo: ThresholdLit) -> ThresholdLit {
    use ThresholdLit::{Const, Lit as L};
    match (hi, lo) {
        (a, b) if a == b => a,
        (Const(true), Const(false)) => L(v),
        (Const(false), Const(true)) => L(!v),
        (Const(true), L(l)) => {
            // u ↔ (v ∨ l)
            let u = cnf.new_var().pos();
            cnf.add_clause(vec![!v, u]);
            cnf.add_clause(vec![!l, u]);
            cnf.add_clause(vec![v, l, !u]);
            L(u)
        }
        (Const(false), L(l)) => {
            // u ↔ (¬v ∧ l)
            let u = cnf.new_var().pos();
            cnf.add_clause(vec![!u, !v]);
            cnf.add_clause(vec![!u, l]);
            cnf.add_clause(vec![v, !l, u]);
            L(u)
        }
        (L(h), Const(true)) => {
            // u ↔ (¬v ∨ h)
            let u = cnf.new_var().pos();
            cnf.add_clause(vec![v, u]);
            cnf.add_clause(vec![!h, u]);
            cnf.add_clause(vec![!u, !v, h]);
            L(u)
        }
        (L(h), Const(false)) => {
            // u ↔ (v ∧ h)
            let u = cnf.new_var().pos();
            cnf.add_clause(vec![!u, v]);
            cnf.add_clause(vec![!u, h]);
            cnf.add_clause(vec![!v, !h, u]);
            L(u)
        }
        (L(h), L(l)) => {
            // u ↔ (v ? h : l)
            let u = cnf.new_var().pos();
            cnf.add_clause(vec![!v, !h, u]);
            cnf.add_clause(vec![!v, h, !u]);
            cnf.add_clause(vec![v, !l, u]);
            cnf.add_clause(vec![v, l, !u]);
            L(u)
        }
        (Const(_), Const(_)) => unreachable!("equal constants folded above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    /// Counts assignments of the first `n` variables that can be extended to
    /// a model of `cnf` (brute force over all variables).
    fn projected_count(cnf: &Cnf, n: usize) -> usize {
        let total = cnf.num_vars();
        let mut seen = std::collections::HashSet::new();
        for bits in 0u64..(1 << total) {
            let assignment: Vec<bool> = (0..total).map(|i| bits >> i & 1 == 1).collect();
            if cnf.eval(&assignment) {
                seen.insert(bits & ((1 << n) - 1));
            }
        }
        seen.len()
    }

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut result = 1u64;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }

    #[test]
    fn at_least_k_counts_binomial_tails() {
        for n in 1usize..=5 {
            for k in 0..=n + 1 {
                let mut cnf = Cnf::new(n);
                let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).pos()).collect();
                encode_at_least_k(&mut cnf, &lits, k);
                let expected: u64 = (k..=n).map(|j| binomial(n as u64, j as u64)).sum();
                assert_eq!(
                    projected_count(&cnf, n) as u64,
                    expected,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn at_most_k_counts_binomial_heads() {
        for n in 1usize..=5 {
            for k in 0..=n {
                let mut cnf = Cnf::new(n);
                let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).pos()).collect();
                encode_at_most_k(&mut cnf, &lits, k);
                let expected: u64 = (0..=k).map(|j| binomial(n as u64, j as u64)).sum();
                assert_eq!(
                    projected_count(&cnf, n) as u64,
                    expected,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn works_over_negated_literals() {
        // "at least 2 of {!x0, x1, !x2}": count assignments directly.
        let mut cnf = Cnf::new(3);
        let lits = vec![Var(0).neg(), Var(1).pos(), Var(2).neg()];
        encode_at_least_k(&mut cnf, &lits, 2);
        let mut expected = 0;
        for bits in 0u64..8 {
            let vals = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            let ones = [!vals[0], vals[1], !vals[2]].iter().filter(|&&b| b).count();
            if ones >= 2 {
                expected += 1;
            }
        }
        assert_eq!(projected_count(&cnf, 3), expected);
    }

    #[test]
    fn outputs_are_equivalences_not_mere_implications() {
        // Assert the *negation* of an output: exactly the assignments below
        // the threshold must remain, which requires the reverse implication.
        let n = 4;
        let mut cnf = Cnf::new(n);
        let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).pos()).collect();
        let tot = Totalizer::build(&mut cnf, &lits);
        tot.assert_at_most(&mut cnf, 1);
        // C(4,0) + C(4,1) = 5 assignments with at most one bit set.
        assert_eq!(projected_count(&cnf, n), 5);
    }

    #[test]
    fn degenerate_thresholds() {
        let mut cnf = Cnf::new(2);
        let lits = vec![Var(0).pos(), Var(1).pos()];
        encode_at_least_k(&mut cnf, &lits, 0); // no-op
        assert_eq!(projected_count(&cnf, 2), 4);
        encode_at_most_k(&mut cnf, &lits, 2); // no-op
        assert_eq!(projected_count(&cnf, 2), 4);
        encode_at_least_k(&mut cnf, &lits, 3); // unsatisfiable
        assert_eq!(projected_count(&cnf, 2), 0);
    }

    #[test]
    fn single_input_uses_no_aux_vars() {
        let mut cnf = Cnf::new(1);
        let tot = Totalizer::build(&mut cnf, &[Var(0).pos()]);
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(tot.at_least(1), Some(Var(0).pos()));
        assert_eq!(tot.at_least(2), None);
    }

    /// Assignments of `n` boolean inputs whose weighted sum meets the
    /// threshold, by brute force over the raw weights.
    fn brute_weighted(weights: &[i64], threshold: i64) -> usize {
        let n = weights.len();
        (0u64..1 << n)
            .filter(|bits| {
                let sum: i64 = weights
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bits >> i & 1 == 1)
                    .map(|(_, &w)| w)
                    .sum();
                sum >= threshold
            })
            .count()
    }

    #[test]
    fn weighted_at_least_matches_brute_force_with_signed_weights() {
        let profiles: [&[i64]; 5] = [
            &[3, -2, 1],
            &[-5, 4, 4, -1],
            &[7, 0, -7, 2, -3],
            &[1, 1, 1, 1],
            &[-1, -2, -4],
        ];
        for weights in profiles {
            let lo: i64 = weights.iter().map(|w| w.min(&0)).sum();
            let hi: i64 = weights.iter().map(|w| w.max(&0)).sum();
            for threshold in (lo - 1)..=(hi + 2) {
                let mut cnf = Cnf::new(weights.len());
                let terms: Vec<(Lit, i64)> = weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (Var(i as u32).pos(), w))
                    .collect();
                assert_weighted_at_least(&mut cnf, &terms, threshold);
                assert_eq!(
                    projected_count(&cnf, weights.len()),
                    brute_weighted(weights, threshold),
                    "weights {weights:?}, threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn weighted_indicator_is_an_equivalence() {
        // Asserting the indicator's *negation* must keep exactly the
        // below-threshold assignments — the reverse implication at work.
        let weights: [i64; 4] = [2, -3, 5, -1];
        let threshold = 2;
        let mut cnf = Cnf::new(weights.len());
        let terms: Vec<(Lit, i64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (Var(i as u32).pos(), w))
            .collect();
        match weighted_at_least(&mut cnf, &terms, threshold) {
            ThresholdLit::Lit(lit) => cnf.add_unit(!lit),
            other => panic!("expected a defined literal, got {other:?}"),
        }
        assert_eq!(
            projected_count(&cnf, weights.len()),
            (1 << weights.len()) - brute_weighted(&weights, threshold)
        );
    }

    #[test]
    fn weighted_at_least_over_negated_literals() {
        // 3·¬x0 − 2·x1 ≥ 1 ⇔ ¬x0 (the −2 term can never rescue x0 = 1).
        let mut cnf = Cnf::new(2);
        let terms = vec![(Var(0).neg(), 3i64), (Var(1).pos(), -2i64)];
        assert_weighted_at_least(&mut cnf, &terms, 1);
        assert_eq!(projected_count(&cnf, 2), 2);
    }

    #[test]
    fn weighted_threshold_constants_fold() {
        let mut cnf = Cnf::new(2);
        let terms = vec![(Var(0).pos(), 1i64), (Var(1).pos(), 2i64)];
        // Trivially true: worst case 0 ≥ -1.
        assert_eq!(
            weighted_at_least(&mut cnf, &terms, -1),
            ThresholdLit::Const(true)
        );
        // Unsatisfiable: best case 3 < 4.
        assert_eq!(
            weighted_at_least(&mut cnf, &terms, 4),
            ThresholdLit::Const(false)
        );
        // Empty sum compares 0 against the threshold.
        assert_eq!(weighted_at_least(&mut cnf, &[], 0), ThresholdLit::Const(true));
        assert_eq!(
            weighted_at_least(&mut cnf, &[], 1),
            ThresholdLit::Const(false)
        );
        assert_eq!(cnf.num_vars(), 2, "constant folds must allocate nothing");
        // Unsatisfiable assertion emits the empty clause.
        assert_weighted_at_least(&mut cnf, &terms, 4);
        assert_eq!(projected_count(&cnf, 2), 0);
    }

    #[test]
    fn weighted_states_are_memoized() {
        // Eight unit weights: without memoization the branching program
        // would be exponential; with it, at most O(n·range) states exist.
        let n = 8usize;
        let mut cnf = Cnf::new(n);
        let terms: Vec<(Lit, i64)> = (0..n as u32).map(|v| (Var(v).pos(), 1i64)).collect();
        assert_weighted_at_least(&mut cnf, &terms, 4);
        let aux = cnf.num_vars() - n;
        assert!(aux <= n * n, "expected O(n²) aux vars, got {aux}");
        let expected: u64 = (4..=8).map(|j| binomial(8, j)).sum();
        assert_eq!(projected_count(&cnf, n) as u64, expected);
    }
}
