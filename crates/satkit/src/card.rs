//! Cardinality constraints: a totalizer encoding over arbitrary literals.
//!
//! The totalizer (Bailleux–Boufkhad) builds a balanced binary tree over the
//! input literals; each node carries a unary counter `o_1 ≥ o_2 ≥ … ≥ o_m`
//! where `o_j` is true iff at least `j` of the node's inputs are true. This
//! implementation emits **both** implication directions, so every output is
//! *equivalent* to its threshold — which is what projected model counting
//! needs: after asserting `o_k` (or `¬o_k`) the encoding is satisfiable for
//! exactly the assignments of the original literals meeting (or missing) the
//! threshold, and each such assignment extends to exactly the truthful
//! counter values. Model counts projected onto the original variables are
//! therefore preserved.
//!
//! The encoding introduces `O(n log n)` auxiliary variables and `O(n²)`
//! clauses; at the ensemble sizes used by the MCML whole-space metrics
//! (tens of trees) this is negligible next to the counting itself.

use crate::cnf::{Cnf, Lit};

/// A built totalizer: the unary counter outputs of the root node.
#[derive(Debug, Clone)]
pub struct Totalizer {
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Builds the totalizer circuit for `inputs` into `cnf`, allocating
    /// auxiliary variables via [`Cnf::new_var`].
    pub fn build(cnf: &mut Cnf, inputs: &[Lit]) -> Self {
        Totalizer {
            outputs: build_node(cnf, inputs),
        }
    }

    /// Number of inputs counted.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the totalizer counts zero inputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The output literal equivalent to "at least `k` inputs are true"
    /// (`k ≥ 1`). Returns `None` when `k` exceeds the input count (the
    /// threshold is then unsatisfiable).
    pub fn at_least(&self, k: usize) -> Option<Lit> {
        assert!(
            k >= 1,
            "threshold must be at least 1 (k = 0 is trivially true)"
        );
        self.outputs.get(k - 1).copied()
    }

    /// Asserts "at least `k` of the inputs are true" on `cnf`.
    pub fn assert_at_least(&self, cnf: &mut Cnf, k: usize) {
        if k == 0 {
            return;
        }
        match self.at_least(k) {
            Some(lit) => cnf.add_unit(lit),
            None => cnf.add_clause(Vec::new()), // k > n: unsatisfiable
        }
    }

    /// Asserts "at most `k` of the inputs are true" on `cnf`.
    pub fn assert_at_most(&self, cnf: &mut Cnf, k: usize) {
        if let Some(lit) = self.outputs.get(k).copied() {
            cnf.add_unit(!lit);
        }
        // k >= n: trivially true, nothing to assert.
    }
}

/// Recursively builds the counter for a slice of inputs and returns its
/// sorted outputs (`outputs[j-1]` ⟺ at least `j` of the slice are true).
fn build_node(cnf: &mut Cnf, inputs: &[Lit]) -> Vec<Lit> {
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![inputs[0]],
        n => {
            let (left, right) = inputs.split_at(n / 2);
            let a = build_node(cnf, left);
            let b = build_node(cnf, right);
            merge(cnf, &a, &b)
        }
    }
}

/// Merges two sorted unary counters into one, emitting the equivalence
/// clauses of the totalizer.
fn merge(cnf: &mut Cnf, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (p, q) = (a.len(), b.len());
    let outputs: Vec<Lit> = (0..p + q).map(|_| cnf.new_var().pos()).collect();
    // Treat a[0] / b[0] as constant true and a[p+1] / b[q+1] as constant
    // false, per the standard formulation.
    for i in 0..=p {
        for j in 0..=q {
            // sum ≥ i + j  ⇒  r_{i+j}:   (¬a_i ∨ ¬b_j ∨ r_{i+j})
            if i + j >= 1 {
                let mut clause = Vec::with_capacity(3);
                if i >= 1 {
                    clause.push(!a[i - 1]);
                }
                if j >= 1 {
                    clause.push(!b[j - 1]);
                }
                clause.push(outputs[i + j - 1]);
                cnf.add_clause(clause);
            }
            // r_{i+j+1}  ⇒  a_{i+1} ∨ b_{j+1}:   (a_{i+1} ∨ b_{j+1} ∨ ¬r_{i+j+1})
            if i + j < p + q {
                let mut clause = Vec::with_capacity(3);
                if i < p {
                    clause.push(a[i]);
                }
                if j < q {
                    clause.push(b[j]);
                }
                clause.push(!outputs[i + j]);
                cnf.add_clause(clause);
            }
        }
    }
    outputs
}

/// Appends clauses asserting that at least `k` of `lits` are true,
/// allocating auxiliary variables in `cnf`.
pub fn encode_at_least_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    if k == 0 {
        return;
    }
    if k > lits.len() {
        cnf.add_clause(Vec::new());
        return;
    }
    let tot = Totalizer::build(cnf, lits);
    tot.assert_at_least(cnf, k);
}

/// Appends clauses asserting that at most `k` of `lits` are true,
/// allocating auxiliary variables in `cnf`.
pub fn encode_at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    if k >= lits.len() {
        return;
    }
    let tot = Totalizer::build(cnf, lits);
    tot.assert_at_most(cnf, k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    /// Counts assignments of the first `n` variables that can be extended to
    /// a model of `cnf` (brute force over all variables).
    fn projected_count(cnf: &Cnf, n: usize) -> usize {
        let total = cnf.num_vars();
        let mut seen = std::collections::HashSet::new();
        for bits in 0u64..(1 << total) {
            let assignment: Vec<bool> = (0..total).map(|i| bits >> i & 1 == 1).collect();
            if cnf.eval(&assignment) {
                seen.insert(bits & ((1 << n) - 1));
            }
        }
        seen.len()
    }

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut result = 1u64;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }

    #[test]
    fn at_least_k_counts_binomial_tails() {
        for n in 1usize..=5 {
            for k in 0..=n + 1 {
                let mut cnf = Cnf::new(n);
                let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).pos()).collect();
                encode_at_least_k(&mut cnf, &lits, k);
                let expected: u64 = (k..=n).map(|j| binomial(n as u64, j as u64)).sum();
                assert_eq!(
                    projected_count(&cnf, n) as u64,
                    expected,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn at_most_k_counts_binomial_heads() {
        for n in 1usize..=5 {
            for k in 0..=n {
                let mut cnf = Cnf::new(n);
                let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).pos()).collect();
                encode_at_most_k(&mut cnf, &lits, k);
                let expected: u64 = (0..=k).map(|j| binomial(n as u64, j as u64)).sum();
                assert_eq!(
                    projected_count(&cnf, n) as u64,
                    expected,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn works_over_negated_literals() {
        // "at least 2 of {!x0, x1, !x2}": count assignments directly.
        let mut cnf = Cnf::new(3);
        let lits = vec![Var(0).neg(), Var(1).pos(), Var(2).neg()];
        encode_at_least_k(&mut cnf, &lits, 2);
        let mut expected = 0;
        for bits in 0u64..8 {
            let vals = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            let ones = [!vals[0], vals[1], !vals[2]].iter().filter(|&&b| b).count();
            if ones >= 2 {
                expected += 1;
            }
        }
        assert_eq!(projected_count(&cnf, 3), expected);
    }

    #[test]
    fn outputs_are_equivalences_not_mere_implications() {
        // Assert the *negation* of an output: exactly the assignments below
        // the threshold must remain, which requires the reverse implication.
        let n = 4;
        let mut cnf = Cnf::new(n);
        let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).pos()).collect();
        let tot = Totalizer::build(&mut cnf, &lits);
        tot.assert_at_most(&mut cnf, 1);
        // C(4,0) + C(4,1) = 5 assignments with at most one bit set.
        assert_eq!(projected_count(&cnf, n), 5);
    }

    #[test]
    fn degenerate_thresholds() {
        let mut cnf = Cnf::new(2);
        let lits = vec![Var(0).pos(), Var(1).pos()];
        encode_at_least_k(&mut cnf, &lits, 0); // no-op
        assert_eq!(projected_count(&cnf, 2), 4);
        encode_at_most_k(&mut cnf, &lits, 2); // no-op
        assert_eq!(projected_count(&cnf, 2), 4);
        encode_at_least_k(&mut cnf, &lits, 3); // unsatisfiable
        assert_eq!(projected_count(&cnf, 2), 0);
    }

    #[test]
    fn single_input_uses_no_aux_vars() {
        let mut cnf = Cnf::new(1);
        let tot = Totalizer::build(&mut cnf, &[Var(0).pos()]);
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(tot.at_least(1), Some(Var(0).pos()));
        assert_eq!(tot.at_least(2), None);
    }
}
