//! # mcml-serve
//!
//! A long-running conditioned-count query service over persisted MCML
//! circuit artifacts — the online counterpart of the batch table binaries.
//!
//! The batch harnesses pay d-DNNF compilation and decision-region
//! extraction on every run. `mcml-serve` moves that cost entirely offline:
//! a table run with `--engine compiled --artifact-dir DIR` persists its
//! compiled circuits and region covers (see [`mcml::artifact`]); the server
//! preloads them at startup into a [`store::CircuitStore`], shards the warm
//! units across worker threads, and answers accuracy / diff /
//! conditioned-count queries over a length-prefixed TCP line protocol —
//! each query resolved through batched
//! [`count_cubes`](satkit::ddnnf::Ddnnf::count_cubes) sweeps, with zero
//! compilation on the serving path.
//!
//! * [`protocol`] — `u32`-length-prefixed UTF-8 frames;
//! * [`store`] — artifacts resolved into `(property, scope, family)` units;
//! * [`server`] — the sharded workers, request grammar and query plans;
//! * [`client`] — the one-shot scripting client.

pub mod client;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::query;
pub use server::{start, ServerHandle};
pub use store::{CircuitStore, Unit, UnitKey};
