//! # mcml-serve
//!
//! A long-running conditioned-count query service over persisted MCML
//! circuit artifacts — the online counterpart of the batch table binaries.
//!
//! The batch harnesses pay d-DNNF compilation and decision-region
//! extraction on every run. `mcml-serve` moves that cost entirely offline:
//! a table run with `--engine compiled --artifact-dir DIR` persists its
//! compiled circuits and region covers (see [`mcml::artifact`]); the server
//! preloads them at startup into a [`store::CircuitStore`] (merging any
//! number of artifact directories), shards the warm units across worker
//! threads, and answers accuracy / diff / conditioned-count queries over a
//! length-prefixed TCP line protocol — each query resolved through batched
//! [`count_cubes`](satkit::ddnnf::Ddnnf::count_cubes) sweeps, with zero
//! compilation on the serving path.
//!
//! The connection runtime is bounded and observable: a fixed
//! connection-handler pool with a bounded accept queue (`err server busy`
//! under overload), per-connection idle and mid-frame deadlines, a
//! graceful `shutdown` drain, and hot reload of the artifact store — by
//! `reload` verb or mtime polling — that atomically swaps in a validated
//! new generation while in-flight queries finish on the old one (see
//! [`server::ServeOptions`]).
//!
//! * [`protocol`] — `u32`-length-prefixed UTF-8 frames;
//! * [`store`] — artifacts resolved into `(property, scope, family)` units;
//! * [`server`] — the connection runtime, request grammar and query plans;
//! * [`client`] — persistent and one-shot scripting clients.

pub mod client;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{query, Connection};
pub use server::{start, ServeOptions, ServerHandle};
pub use store::{CircuitStore, Circuits, Unit, UnitKey};
