//! The `mcml-serve` binary: `serve` preloads one or more artifact
//! directories and answers queries until a client sends `shutdown`;
//! `client` sends one request (or, with `--stdin`, a whole session over
//! one persistent connection) and prints the replies.

use mcml_serve::client::Connection;
use mcml_serve::{client, server, store::CircuitStore};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage:
  mcml-serve serve --artifact-dir DIR [--artifact-dir DIR]...
                   [--addr 127.0.0.1:7171] [--workers N] [--connections N]
                   [--backlog N] [--idle-timeout SECS] [--io-timeout SECS]
                   [--poll SECS] [--fallback exact|approx[:EPS,DELTA]]
  mcml-serve client [--addr 127.0.0.1:7171] REQUEST WORDS...
  mcml-serve client [--addr 127.0.0.1:7171] --stdin

requests: ping | accuracy PROP SCOPE FAMILY | diff PROP SCOPE FAM_A FAM_B |
          count PROP SCOPE phi|nphi [LIT...] | stats | reload | shutdown

--artifact-dir is repeatable; the directories' units are merged (duplicate
unit keys are an error). --poll SECS re-checks the artifact files' mtimes
and hot-reloads on change (0 disables polling; the reload verb always
works). --fallback approx serves covers whose circuits were never
persisted as degraded units: approximate counts with deterministic seeds,
every degraded reply labeled 'approx EPS DELTA' (the default, exact,
skips such covers). --stdin reads one request per line over a single
persistent connection and prints one reply per line.";

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("client") => run_client(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_secs(value: &str, flag: &str) -> f64 {
    let secs: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("{flag} must be a number of seconds"));
    assert!(
        secs.is_finite() && secs >= 0.0,
        "{flag} must be a non-negative number of seconds"
    );
    secs
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut artifact_dirs: Vec<PathBuf> = Vec::new();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut options = server::ServeOptions::default();
    let mut poll_secs = 2.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
                .clone()
        };
        match arg.as_str() {
            "--artifact-dir" => artifact_dirs.push(PathBuf::from(value("--artifact-dir"))),
            "--addr" => addr = value("--addr"),
            "--workers" => {
                options.workers = value("--workers")
                    .parse()
                    .expect("--workers must be a number");
            }
            "--connections" => {
                options.connections = value("--connections")
                    .parse()
                    .expect("--connections must be a number");
            }
            "--backlog" => {
                options.backlog = value("--backlog")
                    .parse()
                    .expect("--backlog must be a number");
            }
            "--idle-timeout" => {
                options.idle_timeout =
                    Duration::from_secs_f64(parse_secs(&value("--idle-timeout"), "--idle-timeout"));
            }
            "--io-timeout" => {
                options.io_timeout =
                    Duration::from_secs_f64(parse_secs(&value("--io-timeout"), "--io-timeout"));
            }
            "--poll" => poll_secs = parse_secs(&value("--poll"), "--poll"),
            "--fallback" => {
                options.fallback = match mcml::fallback::FallbackPolicy::parse(&value("--fallback"))
                {
                    Ok(policy) => policy,
                    Err(message) => {
                        eprintln!("{message}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if artifact_dirs.is_empty() {
        eprintln!("serve requires at least one --artifact-dir\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let store = match CircuitStore::load_dirs_with(&artifact_dirs, options.fallback) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("failed to load artifacts: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "(preloaded {} units from {} director{}{}{})",
        store.len(),
        artifact_dirs.len(),
        if artifact_dirs.len() == 1 { "y" } else { "ies" },
        if store.degraded_units() > 0 {
            format!(", {} degraded (approx fallback)", store.degraded_units())
        } else {
            String::new()
        },
        if store.skipped_covers() > 0 {
            format!(", skipped {} unservable covers", store.skipped_covers())
        } else {
            String::new()
        }
    );
    for (property, scope, family) in store.keys() {
        eprintln!("  {property} scope={scope} {family}");
    }
    options.reload_dirs = artifact_dirs;
    options.poll_interval = if poll_secs > 0.0 {
        Some(Duration::from_secs_f64(poll_secs))
    } else {
        None
    };
    match server::start(store, &addr, options) {
        Ok(handle) => {
            // The smoke script and tests wait for this line to connect.
            println!("listening on {}", handle.addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_client(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut stdin_session = false;
    let mut words: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next().expect("--addr requires HOST:PORT").clone(),
            "--stdin" => stdin_session = true,
            _ => words.push(arg.clone()),
        }
    }
    if stdin_session {
        if !words.is_empty() {
            eprintln!("--stdin takes requests from stdin, not the command line\n{USAGE}");
            return ExitCode::FAILURE;
        }
        return run_stdin_session(&addr);
    }
    if words.is_empty() {
        eprintln!("client requires a request\n{USAGE}");
        return ExitCode::FAILURE;
    }
    match client::query(&addr, &words.join(" ")) {
        Ok(reply) => {
            println!("{reply}");
            if reply.starts_with("ok") {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One persistent connection, one request per stdin line, one reply per
/// stdout line. Exits non-zero if any reply was an `err` — so a scripted
/// session (the smoke test) fails loudly on the first protocol surprise.
fn run_stdin_session(addr: &str) -> ExitCode {
    let mut connection = match Connection::connect(addr) {
        Ok(connection) => connection,
        Err(e) => {
            eprintln!("connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut all_ok = true;
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let request = line.trim();
        if request.is_empty() || request.starts_with('#') {
            continue;
        }
        match connection.request(request) {
            Ok(reply) => {
                println!("{reply}");
                all_ok &= reply.starts_with("ok");
            }
            Err(e) => {
                eprintln!("request {request:?} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
