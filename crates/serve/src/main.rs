//! The `mcml-serve` binary: `serve` preloads an artifact directory and
//! answers queries until a client sends `shutdown`; `client` sends one
//! request and prints the reply.

use mcml_serve::{client, server, store::CircuitStore};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  mcml-serve serve --artifact-dir DIR [--addr 127.0.0.1:7171] [--workers N]
  mcml-serve client [--addr 127.0.0.1:7171] REQUEST WORDS...

requests: ping | accuracy PROP SCOPE FAMILY | diff PROP SCOPE FAM_A FAM_B |
          count PROP SCOPE phi|nphi [LIT...] | stats | shutdown";

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("client") => run_client(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut artifact_dir: Option<PathBuf> = None;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--artifact-dir" => {
                artifact_dir = Some(PathBuf::from(
                    iter.next().expect("--artifact-dir requires a path"),
                ));
            }
            "--addr" => addr = iter.next().expect("--addr requires HOST:PORT").clone(),
            "--workers" => {
                workers = iter
                    .next()
                    .expect("--workers requires a value")
                    .parse()
                    .expect("--workers must be a number");
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(dir) = artifact_dir else {
        eprintln!("serve requires --artifact-dir\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let store = match CircuitStore::load_dir(&dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("failed to load artifacts from {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "(preloaded {} units from {}{})",
        store.len(),
        dir.display(),
        if store.skipped_covers() > 0 {
            format!(", skipped {} unservable covers", store.skipped_covers())
        } else {
            String::new()
        }
    );
    for (property, scope, family) in store.keys() {
        eprintln!("  {property} scope={scope} {family}");
    }
    match server::start(store, &addr, workers) {
        Ok(handle) => {
            // The smoke script and tests wait for this line to connect.
            println!("listening on {}", handle.addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_client(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut words: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next().expect("--addr requires HOST:PORT").clone(),
            _ => words.push(arg.clone()),
        }
    }
    if words.is_empty() {
        eprintln!("client requires a request\n{USAGE}");
        return ExitCode::FAILURE;
    }
    match client::query(&addr, &words.join(" ")) {
        Ok(reply) => {
            println!("{reply}");
            if reply.starts_with("ok") {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            ExitCode::FAILURE
        }
    }
}
