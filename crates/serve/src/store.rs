//! The warm circuit store: artifacts resolved into servable units.
//!
//! A [`CircuitStore`] is one or more [`CircuitArtifact`]s
//! with their fingerprint indirection resolved: every region cover is
//! joined to its φ / ¬φ circuits, producing one [`Unit`] per
//! `(property, scope, family)` — exactly the coordinates a query
//! addresses. Circuits are shared via [`Arc`], so the 16-property store
//! holds each property's two circuits once no matter how many model
//! families cover them.
//!
//! [`CircuitStore::load_dirs`] merges several artifact directories (one
//! store per scope, per table, per training run — however the operator
//! shards them) into one store; a unit key appearing in more than one
//! directory is rejected as [`std::io::ErrorKind::InvalidData`] instead
//! of letting load order silently pick a winner.

use mcml::artifact::{self, CircuitArtifact};
use mcml::encode::DecisionRegion;
use relspec::symmetry::SymmetryBreaking;
use satkit::ddnnf::Ddnnf;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Query coordinates: `(property, scope, family)`.
pub type UnitKey = (String, usize, String);

/// One servable model evaluation: the ground truth's circuits and the
/// model's decision-region cover, everything an accuracy / diff /
/// conditioned-count query touches.
#[derive(Clone)]
pub struct Unit {
    /// Compiled circuit of the property's φ.
    pub phi: Arc<Ddnnf>,
    /// Compiled circuit of the property's ¬φ.
    pub not_phi: Arc<Ddnnf>,
    /// The model's decision regions partitioning the input space.
    pub regions: Arc<Vec<DecisionRegion>>,
    /// The symmetry-breaking setting baked into `phi` / `not_phi`. When
    /// enabled, the circuits partition the symmetry-constrained space —
    /// accuracy and conditioned counts are defined over that space by
    /// construction, but a whole-space `diff` must be refused (it would
    /// silently disagree with `DiffMc` over the full feature space).
    pub symmetry: SymmetryBreaking,
}

/// The preloaded units of one or more artifacts, keyed by query
/// coordinates.
pub struct CircuitStore {
    units: HashMap<UnitKey, Unit>,
    skipped_covers: usize,
}

impl CircuitStore {
    /// Loads the compiled-backend artifact under `dir` (the file
    /// `--artifact-dir` runs write) and resolves it into units.
    pub fn load_dir(dir: &Path) -> io::Result<CircuitStore> {
        let path = dir.join(artifact::artifact_file_name("compiled"));
        CircuitStore::from_artifact(artifact::load_artifact(&path, "compiled")?)
    }

    /// Loads and merges the artifacts of several directories into one
    /// store. Every directory must hold a valid artifact, and no two
    /// directories may serve the same `(property, scope, family)` unit —
    /// a duplicate key is `InvalidData`, never a silent overwrite.
    pub fn load_dirs<P: AsRef<Path>>(dirs: &[P]) -> io::Result<CircuitStore> {
        let mut merged = CircuitStore {
            units: HashMap::new(),
            skipped_covers: 0,
        };
        if dirs.is_empty() {
            return Err(invalid("no artifact directory configured".to_string()));
        }
        for dir in dirs {
            let dir = dir.as_ref();
            let store = CircuitStore::load_dir(dir)?;
            merged.skipped_covers += store.skipped_covers;
            for (key, unit) in store.units {
                if merged.units.contains_key(&key) {
                    return Err(invalid(format!(
                        "duplicate unit {} {} {} (also in {})",
                        key.0,
                        key.1,
                        key.2,
                        dir.display()
                    )));
                }
                merged.units.insert(key, unit);
            }
        }
        Ok(merged)
    }

    /// Resolves an in-memory artifact. A cover whose φ or ¬φ circuit is
    /// missing (its compilation blew the budget during the artifact build,
    /// so it was never persisted) is skipped, not fatal — the remaining
    /// units still serve; [`skipped_covers`](Self::skipped_covers) reports
    /// how many were dropped.
    pub fn from_artifact(artifact: CircuitArtifact) -> io::Result<CircuitStore> {
        let circuits: HashMap<u128, Arc<Ddnnf>> = artifact
            .circuits
            .into_iter()
            .map(|(key, circuit)| (key, Arc::new(circuit)))
            .collect();
        let mut units = HashMap::new();
        let mut skipped_covers = 0usize;
        for cover in artifact.covers {
            let (Some(phi), Some(not_phi)) =
                (circuits.get(&cover.phi), circuits.get(&cover.not_phi))
            else {
                skipped_covers += 1;
                continue;
            };
            units.insert(
                (cover.property, cover.scope, cover.family),
                Unit {
                    phi: Arc::clone(phi),
                    not_phi: Arc::clone(not_phi),
                    regions: Arc::new(cover.regions),
                    symmetry: cover.symmetry,
                },
            );
        }
        Ok(CircuitStore {
            units,
            skipped_covers,
        })
    }

    /// Number of servable units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the store has no servable unit.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Covers dropped because their circuits were not persisted.
    pub fn skipped_covers(&self) -> usize {
        self.skipped_covers
    }

    /// The sorted unit keys (for startup logging).
    pub fn keys(&self) -> Vec<UnitKey> {
        let mut keys: Vec<UnitKey> = self.units.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Consumes the store into its unit map (the server shards it).
    pub fn into_units(self) -> HashMap<UnitKey, Unit> {
        self.units
    }
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
