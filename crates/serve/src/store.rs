//! The warm circuit store: artifacts resolved into servable units.
//!
//! A [`CircuitStore`] is one or more [`CircuitArtifact`]s
//! with their fingerprint indirection resolved: every region cover is
//! joined to its φ / ¬φ circuits, producing one [`Unit`] per
//! `(property, scope, family)` — exactly the coordinates a query
//! addresses. Circuits are shared via [`Arc`], so the 16-property store
//! holds each property's two circuits once no matter how many model
//! families cover them.
//!
//! [`CircuitStore::load_dirs`] merges several artifact directories (one
//! store per scope, per table, per training run — however the operator
//! shards them) into one store; a unit key appearing in more than one
//! directory is rejected as [`std::io::ErrorKind::InvalidData`] instead
//! of letting load order silently pick a winner.
//!
//! # Degraded units
//!
//! A cover whose φ / ¬φ circuits are missing from the artifact (their
//! compilation blew the decision budget during the batch run, so they
//! were never persisted) is unservable by the compiled plan. Under the
//! default [`FallbackPolicy::Fail`] such covers are skipped, exactly as
//! before. Under `--fallback approx[:eps,delta]`
//! ([`FallbackPolicy::SymmetryThenApprox`]) the store instead
//! re-translates the cover's property at its recorded scope and symmetry
//! setting into raw CNF and builds a **degraded** unit
//! ([`Circuits::Degraded`]): queries against it are answered by the
//! XOR-hash (ε, δ)-approximate counter with seeds derived from the
//! `(CNF, cube)` fingerprint — deterministic across restarts and worker
//! counts — and every degraded reply is labeled `approx <ε> <δ>` so a
//! client can tell a rescued answer from an exact one.

use mcml::artifact::{self, CircuitArtifact};
use mcml::encode::DecisionRegion;
use mcml::fallback::FallbackPolicy;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use satkit::cnf::Cnf;
use satkit::ddnnf::Ddnnf;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Query coordinates: `(property, scope, family)`.
pub type UnitKey = (String, usize, String);

/// How a unit's ground-truth counts are answered: the exact compiled
/// plan when the circuits were persisted, the approximate degraded plan
/// when they were not.
#[derive(Clone)]
pub enum Circuits {
    /// The persisted d-DNNF circuits — conditioned counts are exact and
    /// served by batched [`Ddnnf::count_cubes`] sweeps.
    Compiled {
        /// Compiled circuit of the property's φ.
        phi: Arc<Ddnnf>,
        /// Compiled circuit of the property's ¬φ.
        not_phi: Arc<Ddnnf>,
    },
    /// The fallback rung: raw CNF re-translated server-side, counted by
    /// the (ε, δ)-approximate XOR-hash counter with deterministic
    /// per-`(CNF, cube)` seeds. Replies carry an `approx <ε> <δ>` label.
    Degraded {
        /// The property's φ as CNF (projection set to the feature vars).
        phi: Arc<Cnf>,
        /// The property's ¬φ as CNF.
        not_phi: Arc<Cnf>,
        /// Multiplicative tolerance of the approximate counts.
        epsilon: f64,
        /// Failure probability of each approximate count.
        delta: f64,
    },
}

/// One servable model evaluation: the ground truth's circuits (or their
/// degraded CNF stand-ins) and the model's decision-region cover,
/// everything an accuracy / diff / conditioned-count query touches.
#[derive(Clone)]
pub struct Unit {
    /// The ground truth φ / ¬φ, compiled or degraded.
    pub circuits: Circuits,
    /// The model's decision regions partitioning the input space.
    pub regions: Arc<Vec<DecisionRegion>>,
    /// The symmetry-breaking setting baked into the ground truth. When
    /// enabled, the circuits partition the symmetry-constrained space —
    /// accuracy and conditioned counts are defined over that space by
    /// construction, while `diff` switches to the full-space
    /// region-intersection plan (see `server`).
    pub symmetry: SymmetryBreaking,
}

/// The preloaded units of one or more artifacts, keyed by query
/// coordinates.
pub struct CircuitStore {
    units: HashMap<UnitKey, Unit>,
    skipped_covers: usize,
    degraded_units: usize,
}

impl CircuitStore {
    /// Loads the compiled-backend artifact under `dir` (the file
    /// `--artifact-dir` runs write) and resolves it into units.
    pub fn load_dir(dir: &Path) -> io::Result<CircuitStore> {
        CircuitStore::load_dir_with(dir, FallbackPolicy::Fail)
    }

    /// [`CircuitStore::load_dir`] with an explicit fallback policy for
    /// covers whose circuits were never persisted.
    pub fn load_dir_with(dir: &Path, fallback: FallbackPolicy) -> io::Result<CircuitStore> {
        let path = dir.join(artifact::artifact_file_name("compiled"));
        CircuitStore::from_artifact_with(artifact::load_artifact(&path, "compiled")?, fallback)
    }

    /// Loads and merges the artifacts of several directories into one
    /// store. Every directory must hold a valid artifact, and no two
    /// directories may serve the same `(property, scope, family)` unit —
    /// a duplicate key is `InvalidData`, never a silent overwrite.
    pub fn load_dirs<P: AsRef<Path>>(dirs: &[P]) -> io::Result<CircuitStore> {
        CircuitStore::load_dirs_with(dirs, FallbackPolicy::Fail)
    }

    /// [`CircuitStore::load_dirs`] with an explicit fallback policy.
    pub fn load_dirs_with<P: AsRef<Path>>(
        dirs: &[P],
        fallback: FallbackPolicy,
    ) -> io::Result<CircuitStore> {
        let mut merged = CircuitStore {
            units: HashMap::new(),
            skipped_covers: 0,
            degraded_units: 0,
        };
        if dirs.is_empty() {
            return Err(invalid("no artifact directory configured".to_string()));
        }
        for dir in dirs {
            let dir = dir.as_ref();
            let store = CircuitStore::load_dir_with(dir, fallback)?;
            merged.skipped_covers += store.skipped_covers;
            merged.degraded_units += store.degraded_units;
            for (key, unit) in store.units {
                if merged.units.contains_key(&key) {
                    return Err(invalid(format!(
                        "duplicate unit {} {} {} (also in {})",
                        key.0,
                        key.1,
                        key.2,
                        dir.display()
                    )));
                }
                merged.units.insert(key, unit);
            }
        }
        Ok(merged)
    }

    /// Resolves an in-memory artifact under the default
    /// [`FallbackPolicy::Fail`]: a cover whose φ or ¬φ circuit is missing
    /// (its compilation blew the budget during the artifact build, so it
    /// was never persisted) is skipped, not fatal — the remaining units
    /// still serve; [`skipped_covers`](Self::skipped_covers) reports how
    /// many were dropped.
    pub fn from_artifact(artifact: CircuitArtifact) -> io::Result<CircuitStore> {
        CircuitStore::from_artifact_with(artifact, FallbackPolicy::Fail)
    }

    /// [`CircuitStore::from_artifact`] with an explicit fallback policy:
    /// under [`FallbackPolicy::SymmetryThenApprox`] a circuit-less cover
    /// becomes a degraded unit (re-translated CNF, approximate counts)
    /// instead of being skipped. A cover naming a property the server
    /// does not know is still skipped — there is nothing to re-translate.
    pub fn from_artifact_with(
        artifact: CircuitArtifact,
        fallback: FallbackPolicy,
    ) -> io::Result<CircuitStore> {
        let circuits: HashMap<u128, Arc<Ddnnf>> = artifact
            .circuits
            .into_iter()
            .map(|(key, circuit)| (key, Arc::new(circuit)))
            .collect();
        let mut units = HashMap::new();
        let mut skipped_covers = 0usize;
        let mut degraded_units = 0usize;
        // Re-translations are shared across families: every cover of one
        // `(property, scope, symmetry)` degrades onto the same CNF pair.
        type TranslationKey = (String, usize, SymmetryBreaking);
        let mut translations: HashMap<TranslationKey, (Arc<Cnf>, Arc<Cnf>)> = HashMap::new();
        for cover in artifact.covers {
            let resolved = match (circuits.get(&cover.phi), circuits.get(&cover.not_phi)) {
                (Some(phi), Some(not_phi)) => Circuits::Compiled {
                    phi: Arc::clone(phi),
                    not_phi: Arc::clone(not_phi),
                },
                _ => {
                    let (FallbackPolicy::SymmetryThenApprox { epsilon, delta }, Some(property)) =
                        (fallback, Property::from_name(&cover.property))
                    else {
                        skipped_covers += 1;
                        continue;
                    };
                    let (phi, not_phi) = translations
                        .entry((cover.property.clone(), cover.scope, cover.symmetry))
                        .or_insert_with(|| {
                            let gt = translate_to_cnf(
                                &property.spec(),
                                TranslateOptions::new(cover.scope).with_symmetry(cover.symmetry),
                            );
                            (Arc::new(gt.cnf_positive()), Arc::new(gt.cnf_negative()))
                        });
                    degraded_units += 1;
                    Circuits::Degraded {
                        phi: Arc::clone(phi),
                        not_phi: Arc::clone(not_phi),
                        epsilon,
                        delta,
                    }
                }
            };
            units.insert(
                (cover.property, cover.scope, cover.family),
                Unit {
                    circuits: resolved,
                    regions: Arc::new(cover.regions),
                    symmetry: cover.symmetry,
                },
            );
        }
        Ok(CircuitStore {
            units,
            skipped_covers,
            degraded_units,
        })
    }

    /// Number of servable units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the store has no servable unit.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Covers dropped because their circuits were not persisted (and the
    /// fallback policy did not rescue them).
    pub fn skipped_covers(&self) -> usize {
        self.skipped_covers
    }

    /// Units serving degraded (approximate, labeled) answers because
    /// their circuits were not persisted.
    pub fn degraded_units(&self) -> usize {
        self.degraded_units
    }

    /// The sorted unit keys (for startup logging).
    pub fn keys(&self) -> Vec<UnitKey> {
        let mut keys: Vec<UnitKey> = self.units.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Consumes the store into its unit map (the server shards it).
    pub fn into_units(self) -> HashMap<UnitKey, Unit> {
        self.units
    }
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
