//! The query server: sharded workers over a warm circuit store.
//!
//! [`start`] shards the store's units across worker threads by
//! `(property, scope)` — so a diff query's two families always live on one
//! shard — and accepts TCP connections, each handled by its own thread
//! that parses frames, routes queries to the owning shard over an mpsc
//! channel, and writes the reply frame back.
//!
//! # Request grammar
//!
//! One request per frame (see [`crate::protocol`]), space-separated words:
//!
//! ```text
//! ping
//! accuracy <property> <scope> <family>
//! diff     <property> <scope> <familyA> <familyB>
//! count    <property> <scope> phi|nphi [lit ...]
//! stats
//! shutdown
//! ```
//!
//! Cube literals are signed 1-indexed DIMACS over the feature variables
//! (`3` = feature 2 true, `-1` = feature 0 false). Replies are
//! `ok <fields...>` or `err <message>`:
//!
//! ```text
//! accuracy → ok <tp> <fp> <tn> <fn> <accuracy> <precision> <recall> <f1>
//! diff     → ok <tt> <tf> <ft> <ff> <diff> <sim>
//! count    → ok <count>
//! stats    → ok queries <n> sweep_ns <t> units <k>
//!               [<property> <scope> <family> <hits>]...
//! ```
//!
//! `stats` reports cumulative serving statistics: how many queries were
//! answered successfully, the total wall-clock nanoseconds spent inside
//! those answers (the batched count sweeps dominate the serving path), and
//! per-unit hit counts sorted by key. A `diff` touches both of its units;
//! a `count` hits the `(property, scope)` ground-truth pair rather than
//! one family's unit and is recorded under the pseudo-family `truth`.
//!
//! Counts are exact `u128` sums; derived metrics are printed with Rust's
//! shortest-round-trip float formatting, so parsing a reply back yields
//! the bit-identical `f64` the batch `Runner` computed from the same
//! counts.
//!
//! # Query plans
//!
//! Every query resolves through batched [`Ddnnf::count_cubes`] sweeps over
//! preloaded circuits — the serving path performs **zero** compilation.
//! Accuracy is the AccMC region-sum plan (one batch against φ, one against
//! ¬φ). Diff counts each pairwise region intersection `cube_a ∧ cube_b`
//! as `mc(φ | cube) + mc(¬φ | cube)`: φ and ¬φ partition the space the
//! ground truth constrains, so the sum is the intersection's size
//! (contradictory concatenations count 0). With an unconstrained ground
//! truth (no symmetry breaking) this equals `DiffMc` over the full feature
//! space — the conformance tests pin that; under symmetry breaking the
//! served diff is restricted to the symmetry-constrained space.

use crate::protocol::{read_frame, write_frame};
use crate::store::{CircuitStore, Unit, UnitKey};
use mcml::diffmc::DiffCounts;
use mcml::tree2cnf::TreeLabel;
use mlkit::metrics::BinaryMetrics;
use satkit::cnf::Lit;
use satkit::ddnnf::Ddnnf;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Cumulative serving statistics, shared by every shard and reported by
/// the `stats` verb. Only successfully answered queries are recorded, so
/// the per-unit table never grows entries for units that do not exist.
#[derive(Default)]
struct ServerStats {
    /// Queries answered with `ok` by the sharded sweep path
    /// (accuracy / diff / count).
    queries: AtomicU64,
    /// Cumulative wall-clock nanoseconds spent answering them — on the
    /// serving path that time is the batched count sweeps.
    sweep_nanos: AtomicU64,
    /// Per-unit hit counts. `count` queries hit the `(property, scope)`
    /// ground-truth pair rather than one family's unit and are recorded
    /// under the pseudo-family `truth`.
    unit_hits: Mutex<HashMap<(String, usize, String), u64>>,
}

impl ServerStats {
    fn record(&self, query: &Query, nanos: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.sweep_nanos.fetch_add(nanos, Ordering::Relaxed);
        let mut hits = self.unit_hits.lock().expect("stats table poisoned");
        let mut bump = |property: &str, scope: usize, family: &str| {
            *hits
                .entry((property.to_string(), scope, family.to_string()))
                .or_insert(0) += 1;
        };
        match query {
            Query::Accuracy { key } => bump(&key.0, key.1, &key.2),
            Query::Diff {
                property,
                scope,
                family_a,
                family_b,
            } => {
                bump(property, *scope, family_a);
                bump(property, *scope, family_b);
            }
            Query::Count {
                property, scope, ..
            } => bump(property, *scope, "truth"),
        }
    }

    fn reply(&self) -> String {
        let mut entries: Vec<((String, usize, String), u64)> = self
            .unit_hits
            .lock()
            .expect("stats table poisoned")
            .iter()
            .map(|(key, hits)| (key.clone(), *hits))
            .collect();
        entries.sort();
        let mut reply = format!(
            "ok queries {} sweep_ns {} units {}",
            self.queries.load(Ordering::Relaxed),
            self.sweep_nanos.load(Ordering::Relaxed),
            entries.len()
        );
        for ((property, scope, family), hits) in entries {
            reply.push_str(&format!(" {property} {scope} {family} {hits}"));
        }
        reply
    }
}

/// A running server: the bound address and the acceptor to join.
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down (a client sent `shutdown`).
    pub fn join(self) {
        self.acceptor.join().expect("acceptor thread panicked");
    }
}

/// Binds `addr`, shards `store` across `workers` worker threads (at least
/// one), and starts accepting connections in the background.
pub fn start(store: CircuitStore, addr: &str, workers: usize) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let workers = workers.max(1);

    let stats = Arc::new(ServerStats::default());
    let mut shards: Vec<Shard> = (0..workers)
        .map(|_| Shard {
            units: HashMap::new(),
            truths: HashMap::new(),
            stats: Arc::clone(&stats),
        })
        .collect();
    for (key, unit) in store.into_units() {
        let shard = &mut shards[shard_of(&key.0, key.1, workers)];
        shard
            .truths
            .entry((key.0.clone(), key.1))
            .or_insert_with(|| (Arc::clone(&unit.phi), Arc::clone(&unit.not_phi)));
        shard.units.insert(key, unit);
    }

    let mut senders = Vec::with_capacity(workers);
    let mut worker_handles = Vec::with_capacity(workers);
    for shard in shards {
        let (sender, receiver) = mpsc::channel::<Job>();
        senders.push(sender);
        worker_handles.push(std::thread::spawn(move || {
            while let Ok(job) = receiver.recv() {
                let _ = job.reply.send(shard.answer(&job.query));
            }
        }));
    }

    let shutdown = Arc::new(AtomicBool::new(false));
    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let senders = senders.clone();
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                // A torn frame or reset connection only ends that
                // connection; the server keeps serving.
                let _ = handle_connection(stream, &senders, &shutdown, &stats, local);
            });
        }
        drop(senders);
        for handle in worker_handles {
            let _ = handle.join();
        }
    });
    Ok(ServerHandle {
        addr: local,
        acceptor,
    })
}

/// One worker's slice of the store: its units plus a `(property, scope)`
/// index of the ground-truth circuit pairs for `count` queries, and a
/// handle on the server-wide statistics it reports into.
struct Shard {
    units: HashMap<UnitKey, Unit>,
    truths: HashMap<(String, usize), (Arc<Ddnnf>, Arc<Ddnnf>)>,
    stats: Arc<ServerStats>,
}

impl Shard {
    fn answer(&self, query: &Query) -> String {
        let start = Instant::now();
        let reply = self.answer_inner(query);
        if reply.starts_with("ok") {
            self.stats.record(query, start.elapsed().as_nanos() as u64);
        }
        reply
    }

    fn answer_inner(&self, query: &Query) -> String {
        match query {
            Query::Accuracy { key } => match self.units.get(key) {
                Some(unit) => accuracy_reply(unit),
                None => format!("err unknown unit {} {} {}", key.0, key.1, key.2),
            },
            Query::Diff {
                property,
                scope,
                family_a,
                family_b,
            } => {
                let a = self
                    .units
                    .get(&(property.clone(), *scope, family_a.clone()));
                let b = self
                    .units
                    .get(&(property.clone(), *scope, family_b.clone()));
                match (a, b) {
                    (Some(a), Some(b)) => diff_reply(a, b),
                    (None, _) => format!("err unknown unit {property} {scope} {family_a}"),
                    (_, None) => format!("err unknown unit {property} {scope} {family_b}"),
                }
            }
            Query::Count {
                property,
                scope,
                negated,
                cube,
            } => match self.truths.get(&(property.clone(), *scope)) {
                Some((phi, not_phi)) => {
                    conditioned_reply(if *negated { not_phi } else { phi }, cube)
                }
                None => format!("err unknown property/scope {property} {scope}"),
            },
        }
    }
}

/// The AccMC region-sum plan over preloaded circuits: one batched sweep
/// against φ, one against ¬φ, summed by region label.
fn accuracy_reply(unit: &Unit) -> String {
    let cubes: Vec<&[Lit]> = unit.regions.iter().map(|r| r.cube.as_slice()).collect();
    let in_phi = unit.phi.count_cubes(&cubes);
    let in_not_phi = unit.not_phi.count_cubes(&cubes);
    let (mut tp, mut fp, mut tn, mut fn_) = (0u128, 0u128, 0u128, 0u128);
    for (region, (p, n)) in unit.regions.iter().zip(in_phi.into_iter().zip(in_not_phi)) {
        match region.label {
            TreeLabel::True => {
                tp += p;
                fp += n;
            }
            TreeLabel::False => {
                fn_ += p;
                tn += n;
            }
        }
    }
    let m = BinaryMetrics::from_counts(tp, fp, tn, fn_);
    format!(
        "ok {tp} {fp} {tn} {fn_} {} {} {} {}",
        m.accuracy, m.precision, m.recall, m.f1
    )
}

/// Pairwise region intersections, each sized as
/// `mc(φ | cube_a ∧ cube_b) + mc(¬φ | cube_a ∧ cube_b)` in two batched
/// sweeps (φ / ¬φ partition the constrained space; a contradictory
/// concatenation counts 0 on both sides).
fn diff_reply(a: &Unit, b: &Unit) -> String {
    let mut cubes = Vec::with_capacity(a.regions.len() * b.regions.len());
    let mut labels = Vec::with_capacity(cubes.capacity());
    for ra in a.regions.iter() {
        for rb in b.regions.iter() {
            let mut cube = ra.cube.clone();
            cube.extend_from_slice(&rb.cube);
            cubes.push(cube);
            labels.push((ra.label, rb.label));
        }
    }
    let in_phi = a.phi.count_cubes(&cubes);
    let in_not_phi = a.not_phi.count_cubes(&cubes);
    let mut counts = DiffCounts::default();
    for ((la, lb), (p, n)) in labels.iter().zip(in_phi.into_iter().zip(in_not_phi)) {
        let size = p + n;
        match (la, lb) {
            (TreeLabel::True, TreeLabel::True) => counts.tt += size,
            (TreeLabel::True, TreeLabel::False) => counts.tf += size,
            (TreeLabel::False, TreeLabel::True) => counts.ft += size,
            (TreeLabel::False, TreeLabel::False) => counts.ff += size,
        }
    }
    format!(
        "ok {} {} {} {} {} {}",
        counts.tt,
        counts.tf,
        counts.ft,
        counts.ff,
        counts.diff(),
        counts.sim()
    )
}

/// One conditioned count. The cube is validated against the circuit's
/// projection first — [`Ddnnf::count_conditioned`] panics on foreign
/// variables, and a malformed query must never take the server down.
fn conditioned_reply(circuit: &Ddnnf, cube: &[Lit]) -> String {
    let projection: HashSet<usize> = circuit.projection().iter().map(|v| v.index()).collect();
    for lit in cube {
        if !projection.contains(&lit.var().index()) {
            return format!(
                "err literal {} is outside the circuit's projection",
                lit.var().index() + 1
            );
        }
    }
    format!("ok {}", circuit.count_conditioned(cube))
}

/// A parsed query with its reply channel, sent to the owning shard.
struct Job {
    query: Query,
    reply: mpsc::Sender<String>,
}

enum Query {
    Accuracy {
        key: UnitKey,
    },
    Diff {
        property: String,
        scope: usize,
        family_a: String,
        family_b: String,
    },
    Count {
        property: String,
        scope: usize,
        negated: bool,
        cube: Vec<Lit>,
    },
}

impl Query {
    fn parse(words: &[&str]) -> Result<Query, String> {
        let scope = |word: &str| {
            word.parse::<usize>()
                .map_err(|_| format!("bad scope {word:?}"))
        };
        match words {
            ["accuracy", property, s, family] => Ok(Query::Accuracy {
                key: (property.to_string(), scope(s)?, family.to_string()),
            }),
            ["diff", property, s, family_a, family_b] => Ok(Query::Diff {
                property: property.to_string(),
                scope: scope(s)?,
                family_a: family_a.to_string(),
                family_b: family_b.to_string(),
            }),
            ["count", property, s, side, lits @ ..] => {
                let negated = match *side {
                    "phi" => false,
                    "nphi" => true,
                    other => return Err(format!("bad side {other:?} (expected phi or nphi)")),
                };
                let cube = lits
                    .iter()
                    .map(|w| parse_dimacs_lit(w))
                    .collect::<Result<Vec<Lit>, String>>()?;
                Ok(Query::Count {
                    property: property.to_string(),
                    scope: scope(s)?,
                    negated,
                    cube,
                })
            }
            [verb, ..] => Err(format!(
                "unknown request {verb:?} \
                 (expected ping, accuracy, diff, count, stats or shutdown)"
            )),
            [] => Err("empty request".to_string()),
        }
    }

    fn route(&self) -> (&str, usize) {
        match self {
            Query::Accuracy { key } => (&key.0, key.1),
            Query::Diff {
                property, scope, ..
            }
            | Query::Count {
                property, scope, ..
            } => (property, *scope),
        }
    }
}

/// A signed 1-indexed DIMACS literal (`3` / `-1`) as a [`Lit`].
fn parse_dimacs_lit(word: &str) -> Result<Lit, String> {
    let value: i64 = word.parse().map_err(|_| format!("bad literal {word:?}"))?;
    let var = u32::try_from(value.unsigned_abs().wrapping_sub(1))
        .map_err(|_| format!("literal {word} out of range"))?;
    match value {
        0 => Err("literal 0 is not valid DIMACS".to_string()),
        v if v > 0 => Ok(Lit::pos(var)),
        _ => Ok(Lit::neg(var)),
    }
}

/// The shard owning a `(property, scope)` — both sides of a diff share it.
fn shard_of(property: &str, scope: usize, workers: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    (property, scope).hash(&mut hasher);
    (hasher.finish() % workers as u64) as usize
}

fn handle_connection(
    mut stream: TcpStream,
    senders: &[mpsc::Sender<Job>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
    local: SocketAddr,
) -> io::Result<()> {
    while let Some(request) = read_frame(&mut stream)? {
        let words: Vec<&str> = request.split_ascii_whitespace().collect();
        if words.first() == Some(&"ping") {
            write_frame(&mut stream, "ok pong")?;
            continue;
        }
        if words.first() == Some(&"stats") {
            write_frame(&mut stream, &stats.reply())?;
            continue;
        }
        if words.first() == Some(&"shutdown") {
            shutdown.store(true, Ordering::SeqCst);
            // The acceptor is blocked in accept(); a self-connection wakes
            // it so it observes the flag and drains.
            let _ = TcpStream::connect(local);
            write_frame(&mut stream, "ok bye")?;
            return Ok(());
        }
        let reply = match Query::parse(&words) {
            Err(message) => format!("err {message}"),
            Ok(query) => {
                let (property, scope) = query.route();
                let index = shard_of(property, scope, senders.len());
                let (reply_sender, reply_receiver) = mpsc::channel();
                if senders[index]
                    .send(Job {
                        query,
                        reply: reply_sender,
                    })
                    .is_err()
                {
                    "err server is shutting down".to_string()
                } else {
                    reply_receiver
                        .recv()
                        .unwrap_or_else(|_| "err worker unavailable".to_string())
                }
            }
        };
        write_frame(&mut stream, &reply)?;
    }
    Ok(())
}
