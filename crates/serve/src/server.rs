//! The query server: a bounded connection runtime over sharded workers
//! and hot-swappable store generations.
//!
//! # Connection runtime
//!
//! [`start`] binds the address and spins up three kinds of threads, all
//! bounded up front by [`ServeOptions`]:
//!
//! * one **acceptor**, which accepts TCP connections into a bounded
//!   hand-off queue ([`ServeOptions::backlog`]); when the queue is full
//!   every further connection is answered `err server busy` and closed
//!   instead of piling up unboundedly;
//! * a fixed pool of [`ServeOptions::connections`] **connection
//!   handlers**, each claiming one queued connection at a time and
//!   serving its frames until the peer closes, idles past
//!   [`ServeOptions::idle_timeout`] (the handler replies
//!   `err idle timeout` and disconnects — an idle client can never pin a
//!   handler forever), stalls mid-frame past
//!   [`ServeOptions::io_timeout`], or the server shuts down;
//! * [`ServeOptions::workers`] **count workers**, each owning one shard
//!   of the store (units sharded by `(property, scope)` hash, so a diff
//!   query's two families always live on one shard) and answering the
//!   queries routed to it over an mpsc channel.
//!
//! Shutdown is a drain, not a race: the `shutdown` verb stops the
//! acceptor, refuses whatever was queued but never claimed, lets every
//! handler finish the request it is serving (workers stay alive until
//! all handlers have exited, so an in-flight query racing `shutdown`
//! still completes with `ok`), then joins every thread before
//! [`ServerHandle::join`] returns.
//!
//! # Store generations and hot reload
//!
//! The store is immutable and swapped whole: every request snapshots the
//! current [`Arc`] store *generation* and is answered entirely from that
//! snapshot, so a query can never observe a half-reloaded (torn) store.
//! The `reload` verb — and, when [`ServeOptions::poll_interval`] is set,
//! a background mtime poller watching the artifact files — loads a fresh
//! [`CircuitStore`] from [`ServeOptions::reload_dirs`], validates it
//! completely, and atomically publishes it as the next generation;
//! in-flight queries finish on the generation they started with. A
//! reload that fails to load or validate leaves the serving generation
//! untouched.
//!
//! # Request grammar
//!
//! One request per frame (see [`crate::protocol`]), space-separated words:
//!
//! ```text
//! ping
//! accuracy <property> <scope> <family>
//! diff     <property> <scope> <familyA> <familyB>
//! count    <property> <scope> phi|nphi [lit ...]
//! stats
//! reload
//! shutdown
//! ```
//!
//! Connections are persistent: any number of requests may be issued over
//! one connection, interleaving verbs freely. Cube literals are signed
//! 1-indexed DIMACS over the feature variables (`3` = feature 2 true,
//! `-1` = feature 0 false). Replies are `ok <fields...>` or
//! `err <message>`:
//!
//! ```text
//! accuracy → ok <tp> <fp> <tn> <fn> <accuracy> <precision> <recall> <f1>
//!               [approx <epsilon> <delta>]
//! diff     → ok <tt> <tf> <ft> <ff> <diff> <sim>
//! count    → ok <count> [approx <epsilon> <delta>]
//! stats    → ok queries <n> degraded <d> units <k> p50_ns <p> p99_ns <q>
//!               [<property> <scope> <family> <hits> <bucket>:<count>...]...
//! reload   → ok reloaded generation <id> units <n>
//! ```
//!
//! `stats` reports cumulative serving statistics: how many queries were
//! answered successfully, how many of those answers were degraded
//! (approximate, labeled), and per-unit hit counts sorted by key. A
//! `diff` touches both of its units; a `count` hits the
//! `(property, scope)` ground-truth pair rather than one family's unit
//! and is recorded under the pseudo-family `truth`.
//!
//! Each unit carries its query latency histogram over fixed log-scale
//! buckets: `<bucket>:<count>` says `count` answers landed in the
//! half-open nanosecond range `[2^bucket, 2^(bucket+1))` (bucket 0 also
//! absorbs sub-nanosecond readings; the last bucket, 31, is unbounded
//! above). Only non-empty buckets print, and their counts sum to the
//! unit's `<hits>`. The `p50_ns`/`p99_ns` pair summarizes the same
//! histogram aggregated over all queries — each quantile is the upper
//! bound of the bucket where the cumulative count crosses the rank, so
//! it is a deterministic over-estimate, never an interpolation.
//!
//! Counts are exact `u128` sums; derived metrics are printed with Rust's
//! shortest-round-trip float formatting, so parsing a reply back yields
//! the bit-identical `f64` the batch `Runner` computed from the same
//! counts.
//!
//! # Query plans
//!
//! Queries against compiled units resolve through batched
//! [`satkit::ddnnf::Ddnnf::count_cubes`] sweeps over preloaded circuits — that serving
//! path performs **zero** compilation. Accuracy is the AccMC region-sum
//! plan (one batch against φ, one against ¬φ).
//!
//! Diff has two exact plans. When neither unit carries symmetry breaking
//! (and both are compiled), each pairwise region intersection
//! `cube_a ∧ cube_b` is counted as `mc(φ | cube) + mc(¬φ | cube)` in two
//! batched sweeps: φ and ¬φ partition the full feature space, so the sum
//! is the intersection's size (contradictory concatenations count 0).
//! When either ground truth bakes in symmetry breaking — where that sweep
//! would count the *constrained* space and silently disagree with the
//! batch `DiffMc` — the server instead recounts both models over the full
//! feature space combinatorially: an intersection of two region cubes
//! fixes some set of distinct feature variables (or is contradictory and
//! counts 0), so its size is exactly `2^(features − fixed)`. Region
//! covers partition the space by construction, so both plans reproduce
//! the unconstrained `DiffMc` counts bit for bit; the combinatorial plan
//! touches no circuits at all and therefore also serves degraded units.
//!
//! Queries against **degraded** units (covers whose circuits were never
//! persisted, rescued by `--fallback approx[:eps,delta]` — see
//! [`crate::store`]) are answered by the (ε, δ)-approximate XOR-hash
//! counter over the re-translated CNF, with seeds derived from the
//! `(CNF, cube)` fingerprint so replies are deterministic across
//! restarts, workers and thread counts. Every degraded `ok` reply is
//! suffixed `approx <ε> <δ>` and counted in `stats` under `degraded`.
//! Accuracy and conditioned counts are defined over whatever space the
//! ground truth constrains by construction (they match the batch `AccMc`
//! either way) and are always available.

use crate::protocol::{write_frame, MAX_FRAME};
use crate::store::{CircuitStore, Circuits, Unit, UnitKey};
use mcml::diffmc::DiffCounts;
use mcml::fallback::{approx_conditioned, FallbackPolicy};
use mcml::tree2cnf::TreeLabel;
use mlkit::metrics::BinaryMetrics;
use satkit::cnf::{Cnf, Lit};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Granularity at which blocked reads, idle handlers and the mtime
/// poller re-check deadlines and the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

/// Bounds and behaviors of the connection runtime. Every field has a
/// serving-oriented default; the zero values are sanitized up to their
/// minimum (1 thread / 1 queue slot / 1 ms) rather than rejected.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Count-worker threads the store is sharded across (at least one).
    pub workers: usize,
    /// Connection-handler threads — the hard bound on concurrently
    /// served connections.
    pub connections: usize,
    /// Accepted-but-unclaimed connections queued for a free handler;
    /// when the queue is full further connections get `err server busy`.
    pub backlog: usize,
    /// How long a connection may sit between requests before the server
    /// replies `err idle timeout` and disconnects it.
    pub idle_timeout: Duration,
    /// Per-frame read deadline (measured from a frame's first byte) and
    /// the write timeout for replies — a stalled peer costs at most this
    /// long before its handler is reclaimed.
    pub io_timeout: Duration,
    /// Artifact directories `reload` (and the mtime poller) re-load the
    /// store from; empty makes `reload` answer a typed error.
    pub reload_dirs: Vec<PathBuf>,
    /// Interval at which the artifact files' mtimes are polled for
    /// automatic reload; `None` disables polling (the `reload` verb
    /// still works when `reload_dirs` is set).
    pub poll_interval: Option<Duration>,
    /// Artificial latency added to every worker answer — a testing aid
    /// for pinning drain/atomicity races; leave zero in production.
    pub answer_latency: Duration,
    /// Degradation policy for covers whose circuits were never persisted:
    /// [`FallbackPolicy::Fail`] (the default) skips them at load time,
    /// [`FallbackPolicy::SymmetryThenApprox`] serves them as degraded
    /// units with `approx <ε> <δ>`-labeled replies. Reloads resolve the
    /// fresh store under the same policy.
    pub fallback: FallbackPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            connections: 64,
            backlog: 64,
            idle_timeout: Duration::from_secs(60),
            io_timeout: Duration::from_secs(10),
            reload_dirs: Vec::new(),
            poll_interval: None,
            answer_latency: Duration::ZERO,
            fallback: FallbackPolicy::Fail,
        }
    }
}

impl ServeOptions {
    fn sanitized(mut self) -> ServeOptions {
        self.workers = self.workers.max(1);
        self.connections = self.connections.max(1);
        self.backlog = self.backlog.max(1);
        self.idle_timeout = self.idle_timeout.max(Duration::from_millis(1));
        self.io_timeout = self.io_timeout.max(Duration::from_millis(1));
        self
    }
}

/// Locks a mutex, recovering from poisoning: the protected state is
/// either a swap-only `Arc` or monotone statistics, both valid after a
/// panicking holder, so inheriting the lock beats killing every later
/// request with a poisoning panic.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of log-scale latency buckets: bucket `i` covers the half-open
/// nanosecond range `[2^i, 2^(i+1))`, bucket 0 also absorbs 0 ns, and
/// the last bucket is unbounded above (2^31 ns ≈ 2.1 s — far past the
/// bounded connection runtime, so real sweeps never saturate it).
const LATENCY_BUCKETS: usize = 32;

/// A fixed log-scale latency histogram. Copy-cheap (one cache line of
/// counters) so per-unit histograms live inside the stats map and the
/// reply path can snapshot them under the same lock as the hit counts.
#[derive(Clone, Copy, Default)]
struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// The bucket a reading falls in: `floor(log2(nanos))`, clamped into
    /// the fixed range.
    fn bucket(nanos: u64) -> usize {
        match nanos.checked_ilog2() {
            Some(log) => (log as usize).min(LATENCY_BUCKETS - 1),
            None => 0,
        }
    }

    fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket(nanos)] += 1;
    }

    /// The upper bound (in ns) of the bucket where the cumulative count
    /// reaches `percent` of the samples — a deterministic over-estimate
    /// of the quantile, 0 when nothing was recorded.
    fn quantile_ns(&self, percent: u64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (total * percent).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// The non-empty buckets as ` <bucket>:<count>` reply words.
    fn reply_words(&self) -> String {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(i, count)| format!(" {i}:{count}"))
            .collect()
    }
}

/// One unit's row in the stats table: how often it was hit and how long
/// those answers took.
#[derive(Clone, Copy, Default)]
struct UnitStats {
    hits: u64,
    latency: LatencyHistogram,
}

/// Cumulative serving statistics, shared by every shard and reported by
/// the `stats` verb. Only successfully answered queries are recorded, so
/// the per-unit table never grows entries for units that do not exist.
#[derive(Default)]
struct ServerStats {
    /// Queries answered with `ok` by the sharded sweep path
    /// (accuracy / diff / count).
    queries: AtomicU64,
    /// The subset of `queries` answered degraded: approximate counts with
    /// an `approx <ε> <δ>` label in the reply frame.
    degraded: AtomicU64,
    /// Per-unit hit counts and latency histograms. `count` queries hit
    /// the `(property, scope)` ground-truth pair rather than one family's
    /// unit and are recorded under the pseudo-family `truth`. A `diff`
    /// records its latency under both units it touched; the aggregate
    /// `p50_ns`/`p99_ns` pair is instead computed per query, so it never
    /// double-weights diffs.
    unit_hits: Mutex<HashMap<(String, usize, String), UnitStats>>,
    /// One latency sample per answered query, for the aggregate
    /// `p50_ns`/`p99_ns` summary.
    latency: Mutex<LatencyHistogram>,
}

impl ServerStats {
    fn record(&self, query: &Query, nanos: u64, degraded: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        lock(&self.latency).record(nanos);
        let mut hits = lock(&self.unit_hits);
        let mut bump = |property: &str, scope: usize, family: &str| {
            let unit = hits
                .entry((property.to_string(), scope, family.to_string()))
                .or_default();
            unit.hits += 1;
            unit.latency.record(nanos);
        };
        match query {
            Query::Accuracy { key } => bump(&key.0, key.1, &key.2),
            Query::Diff {
                property,
                scope,
                family_a,
                family_b,
            } => {
                bump(property, *scope, family_a);
                bump(property, *scope, family_b);
            }
            Query::Count {
                property, scope, ..
            } => bump(property, *scope, "truth"),
        }
    }

    fn reply(&self) -> String {
        let mut entries: Vec<((String, usize, String), UnitStats)> = lock(&self.unit_hits)
            .iter()
            .map(|(key, unit)| (key.clone(), *unit))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        let aggregate = *lock(&self.latency);
        let mut reply = format!(
            "ok queries {} degraded {} units {} p50_ns {} p99_ns {}",
            self.queries.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            entries.len(),
            aggregate.quantile_ns(50),
            aggregate.quantile_ns(99),
        );
        for ((property, scope, family), unit) in entries {
            reply.push_str(&format!(" {property} {scope} {family} {}", unit.hits));
            reply.push_str(&unit.latency.reply_words());
        }
        reply
    }
}

/// A running server: the bound address and the acceptor to join.
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server has fully drained and shut down (a client
    /// sent `shutdown`): every connection handler and count worker is
    /// joined before this returns.
    pub fn join(self) {
        self.acceptor.join().expect("acceptor thread panicked");
    }
}

/// One immutable snapshot of the servable store, sharded for the worker
/// pool. Requests answer entirely from the generation they snapshot, so
/// a reload can never tear a query.
struct Generation {
    id: u64,
    units: usize,
    shards: Vec<ShardData>,
}

/// One worker's slice of a generation: its units plus a
/// `(property, scope)` index of the ground-truth circuit pairs for
/// `count` queries.
#[derive(Default)]
struct ShardData {
    units: HashMap<UnitKey, Unit>,
    truths: HashMap<(String, usize), Circuits>,
}

/// Shards a store across `workers` slices by `(property, scope)` hash —
/// a diff query's two families always land on one shard.
fn shard_store(store: CircuitStore, workers: usize, id: u64) -> Generation {
    let units = store.len();
    let mut shards: Vec<ShardData> = (0..workers).map(|_| ShardData::default()).collect();
    for (key, unit) in store.into_units() {
        let shard = &mut shards[shard_of(&key.0, key.1, workers)];
        // A compiled truth always wins over a degraded stand-in for the
        // same `(property, scope)` — `count` answers exactly when any
        // family's cover kept its circuits.
        match shard.truths.entry((key.0.clone(), key.1)) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(unit.circuits.clone());
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if matches!(slot.get(), Circuits::Degraded { .. })
                    && matches!(unit.circuits, Circuits::Compiled { .. })
                {
                    slot.insert(unit.circuits.clone());
                }
            }
        }
        shard.units.insert(key, unit);
    }
    Generation { id, units, shards }
}

/// State shared by the acceptor, handler pool, workers and poller.
struct Shared {
    options: ServeOptions,
    local: SocketAddr,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Accepted connections awaiting a free handler, bounded by
    /// `options.backlog`.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_signal: Condvar,
    /// The serving store generation; swapped whole by reloads.
    generation: Mutex<Arc<Generation>>,
    next_generation: AtomicU64,
    /// Serializes reloads (verb vs. poller) so generation ids publish in
    /// order.
    reload_serial: Mutex<()>,
}

impl Shared {
    fn current_generation(&self) -> Arc<Generation> {
        Arc::clone(&lock(&self.generation))
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Binds `addr`, shards `store` across the worker pool, and starts the
/// bounded connection runtime in the background. The returned handle
/// resolves the bound address immediately; the server runs until a
/// client sends `shutdown`.
pub fn start(store: CircuitStore, addr: &str, options: ServeOptions) -> io::Result<ServerHandle> {
    let options = options.sanitized();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;

    let shared = Arc::new(Shared {
        local,
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_signal: Condvar::new(),
        generation: Mutex::new(Arc::new(shard_store(store, options.workers, 0))),
        next_generation: AtomicU64::new(1),
        reload_serial: Mutex::new(()),
        options,
    });

    // Count workers: one shard index each, alive until every handler has
    // exited (their job senders are only dropped after the handler join
    // below), so an in-flight query can always collect its reply.
    let mut senders = Vec::with_capacity(shared.options.workers);
    let mut worker_handles = Vec::with_capacity(shared.options.workers);
    for index in 0..shared.options.workers {
        let (sender, receiver) = mpsc::channel::<Job>();
        senders.push(sender);
        let shared = Arc::clone(&shared);
        worker_handles.push(std::thread::spawn(move || {
            while let Ok(job) = receiver.recv() {
                if !shared.options.answer_latency.is_zero() {
                    std::thread::sleep(shared.options.answer_latency);
                }
                // A panicking query (a bug, not a protocol error) costs
                // one `err` reply, never the shard: the worker keeps
                // serving and the stats lock recovers from poisoning.
                let reply = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    job.generation.shards[index].answer(&job.query, &shared.stats)
                }))
                .unwrap_or_else(|_| "err internal error (query panicked)".to_string());
                let _ = job.reply.send(reply);
            }
        }));
    }

    // The fixed connection-handler pool.
    let mut handler_handles = Vec::with_capacity(shared.options.connections);
    for _ in 0..shared.options.connections {
        let shared = Arc::clone(&shared);
        let senders = senders.clone();
        handler_handles.push(std::thread::spawn(move || {
            while let Some(stream) = next_connection(&shared) {
                // A torn frame or reset connection only ends that
                // connection; the handler returns to the pool.
                let _ = handle_connection(stream, &shared, &senders);
            }
        }));
    }

    let poller_handle = spawn_poller(Arc::clone(&shared));

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.is_shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let mut queue = lock(&shared.queue);
                if queue.len() >= shared.options.backlog {
                    // Overload: reply instead of queueing unboundedly.
                    drop(queue);
                    refuse(stream, "err server busy", &shared.options);
                } else {
                    queue.push_back(stream);
                    shared.queue_signal.notify_one();
                }
            }
            // Drain: refuse whatever was queued but never claimed, wake
            // every idle handler, and join the pools in dependency order
            // (handlers first — workers must outlive their last job).
            for stream in lock(&shared.queue).drain(..) {
                refuse(stream, "err server is shutting down", &shared.options);
            }
            shared.queue_signal.notify_all();
            for handle in handler_handles {
                let _ = handle.join();
            }
            drop(senders);
            for handle in worker_handles {
                let _ = handle.join();
            }
            if let Some(handle) = poller_handle {
                let _ = handle.join();
            }
        })
    };
    Ok(ServerHandle {
        addr: local,
        acceptor,
    })
}

/// Best-effort one-frame refusal of a connection the pool cannot serve.
fn refuse(mut stream: TcpStream, message: &str, options: &ServeOptions) {
    let _ = stream.set_write_timeout(Some(options.io_timeout));
    let _ = write_frame(&mut stream, message);
}

/// Claims the next queued connection, or `None` once the server is
/// shutting down and the queue has been drained.
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = lock(&shared.queue);
    loop {
        // The shutdown check comes first: a draining server leaves queued
        // connections for the acceptor's refusal pass instead of starting
        // to serve them.
        if shared.is_shutting_down() {
            return None;
        }
        if let Some(stream) = queue.pop_front() {
            return Some(stream);
        }
        queue = shared
            .queue_signal
            .wait_timeout(queue, TICK)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

/// Performs one validated reload: load + resolve the artifact
/// directories, and only then atomically publish the new generation.
/// Failure leaves the serving generation untouched.
fn reload_now(shared: &Shared) -> Result<(u64, usize), String> {
    if shared.options.reload_dirs.is_empty() {
        return Err("reload unavailable (no artifact directories configured)".to_string());
    }
    let _serial = lock(&shared.reload_serial);
    let store = CircuitStore::load_dirs_with(&shared.options.reload_dirs, shared.options.fallback)
        .map_err(|e| format!("reload failed: {e}"))?;
    let skipped = store.skipped_covers();
    let id = shared.next_generation.fetch_add(1, Ordering::Relaxed);
    let generation = Arc::new(shard_store(store, shared.options.workers, id));
    let (id, units) = (generation.id, generation.units);
    *lock(&shared.generation) = generation;
    if skipped > 0 {
        eprintln!("(reload: generation {id} skipped {skipped} unservable covers)");
    }
    Ok((id, units))
}

/// What the poller remembers per artifact file: modification time and
/// length, `None` while the file is absent.
type PollState = Vec<Option<(std::time::SystemTime, u64)>>;

fn poll_state(dirs: &[PathBuf]) -> PollState {
    dirs.iter()
        .map(|dir| {
            let path = dir.join(mcml::artifact::artifact_file_name("compiled"));
            std::fs::metadata(&path)
                .ok()
                .and_then(|m| m.modified().ok().map(|t| (t, m.len())))
        })
        .collect()
}

/// Watches the artifact files' (mtime, length) and reloads on change. A
/// failed reload (e.g. a mid-write torn file) is logged and retried when
/// the file changes again — the completed write bumps the mtime.
fn spawn_poller(shared: Arc<Shared>) -> Option<JoinHandle<()>> {
    let interval = shared.options.poll_interval?;
    if shared.options.reload_dirs.is_empty() {
        return None;
    }
    Some(std::thread::spawn(move || {
        let mut seen = poll_state(&shared.options.reload_dirs);
        loop {
            let wake = Instant::now() + interval;
            while Instant::now() < wake {
                if shared.is_shutting_down() {
                    return;
                }
                std::thread::sleep(TICK.min(interval));
            }
            let state = poll_state(&shared.options.reload_dirs);
            if state != seen {
                seen = state;
                match reload_now(&shared) {
                    Ok((id, units)) => {
                        eprintln!("(artifact change: now serving generation {id}, {units} units)");
                    }
                    Err(e) => eprintln!("warning: artifact change detected but {e}"),
                }
            }
        }
    }))
}

/// A formatted reply plus whether the answer plan degraded — the flag
/// comes from the plan that produced the text, never from re-parsing it,
/// so the `stats` accounting cannot drift from the reply format.
struct Reply {
    text: String,
    degraded: bool,
}

impl Reply {
    fn exact(text: String) -> Reply {
        Reply {
            text,
            degraded: false,
        }
    }
}

impl ShardData {
    fn answer(&self, query: &Query, stats: &ServerStats) -> String {
        let start = Instant::now();
        let reply = self.answer_inner(query);
        if reply.text.starts_with("ok") {
            stats.record(query, start.elapsed().as_nanos() as u64, reply.degraded);
        }
        reply.text
    }

    fn answer_inner(&self, query: &Query) -> Reply {
        match query {
            Query::Accuracy { key } => match self.units.get(key) {
                Some(unit) => accuracy_reply(unit),
                None => Reply::exact(format!("err unknown unit {} {} {}", key.0, key.1, key.2)),
            },
            Query::Diff {
                property,
                scope,
                family_a,
                family_b,
            } => {
                let a = self
                    .units
                    .get(&(property.clone(), *scope, family_a.clone()));
                let b = self
                    .units
                    .get(&(property.clone(), *scope, family_b.clone()));
                Reply::exact(match (a, b) {
                    (Some(a), Some(b)) => diff_reply(a, b, *scope),
                    (None, _) => format!("err unknown unit {property} {scope} {family_a}"),
                    (_, None) => format!("err unknown unit {property} {scope} {family_b}"),
                })
            }
            Query::Count {
                property,
                scope,
                negated,
                cube,
            } => match self.truths.get(&(property.clone(), *scope)) {
                Some(circuits) => conditioned_reply(circuits, *negated, cube),
                None => Reply::exact(format!("err unknown property/scope {property} {scope}")),
            },
        }
    }
}

/// The AccMC region-sum plan: one batched circuit sweep against φ, one
/// against ¬φ, summed by region label — or, for a degraded unit, one
/// deterministic approximate count per `(region, side)` with the reply
/// labeled `approx <ε> <δ>`.
fn accuracy_reply(unit: &Unit) -> Reply {
    let (in_phi, in_not_phi, label) = match &unit.circuits {
        Circuits::Compiled { phi, not_phi } => {
            let cubes: Vec<&[Lit]> = unit.regions.iter().map(|r| r.cube.as_slice()).collect();
            (phi.count_cubes(&cubes), not_phi.count_cubes(&cubes), None)
        }
        Circuits::Degraded {
            phi,
            not_phi,
            epsilon,
            delta,
        } => {
            let sweep = |cnf: &Cnf| {
                unit.regions
                    .iter()
                    .map(|r| degraded_count(cnf, &r.cube, *epsilon, *delta))
                    .collect::<Vec<u128>>()
            };
            (sweep(phi), sweep(not_phi), Some((*epsilon, *delta)))
        }
    };
    let (mut tp, mut fp, mut tn, mut fn_) = (0u128, 0u128, 0u128, 0u128);
    for (region, (p, n)) in unit.regions.iter().zip(in_phi.into_iter().zip(in_not_phi)) {
        match region.label {
            TreeLabel::True => {
                tp += p;
                fp += n;
            }
            TreeLabel::False => {
                fn_ += p;
                tn += n;
            }
        }
    }
    let m = BinaryMetrics::from_counts(tp, fp, tn, fn_);
    let mut text = format!(
        "ok {tp} {fp} {tn} {fn_} {} {} {} {}",
        m.accuracy, m.precision, m.recall, m.f1
    );
    if let Some((epsilon, delta)) = label {
        text.push_str(&format!(" approx {epsilon} {delta}"));
    }
    Reply {
        text,
        degraded: label.is_some(),
    }
}

/// One (ε, δ)-approximate conditioned count over a degraded unit's CNF.
/// The seed derives from the `(CNF, cube)` fingerprint inside
/// [`approx_conditioned`], so the estimate is a pure function of the
/// query — identical across restarts, workers and thread counts.
fn degraded_count(cnf: &Cnf, cube: &[Lit], epsilon: f64, delta: f64) -> u128 {
    approx_conditioned(cnf, cube, epsilon, delta)
        .value()
        .unwrap_or(0)
}

/// The served diff: both models recounted over the **full feature
/// space**, exactly, by one of two plans that agree bit for bit with the
/// unconstrained batch `DiffMc`.
///
/// With compiled circuits and no symmetry breaking, each pairwise region
/// intersection `cube_a ∧ cube_b` is sized as
/// `mc(φ | cube) + mc(¬φ | cube)` in two batched sweeps — φ / ¬φ
/// partition the full space, so the sum is the intersection's size (a
/// contradictory concatenation counts 0 on both sides).
///
/// When either ground truth bakes in symmetry breaking, the circuits
/// partition the *constrained* space and that sweep would silently
/// disagree with `DiffMc` — so the intersections are counted
/// combinatorially instead: a non-contradictory intersection fixes some
/// distinct feature variables and has exactly `2^(features − fixed)`
/// models. The combinatorial plan needs no circuits, so it also serves
/// degraded units.
fn diff_reply(a: &Unit, b: &Unit, scope: usize) -> String {
    let sweeps = match (&a.circuits, &b.circuits) {
        (Circuits::Compiled { phi, not_phi }, Circuits::Compiled { .. })
            if !a.symmetry.is_enabled() && !b.symmetry.is_enabled() =>
        {
            Some((phi, not_phi))
        }
        _ => None,
    };
    let mut counts = DiffCounts::default();
    if let Some((phi, not_phi)) = sweeps {
        let mut cubes = Vec::with_capacity(a.regions.len() * b.regions.len());
        let mut labels = Vec::with_capacity(cubes.capacity());
        for ra in a.regions.iter() {
            for rb in b.regions.iter() {
                let mut cube = ra.cube.clone();
                cube.extend_from_slice(&rb.cube);
                cubes.push(cube);
                labels.push((ra.label, rb.label));
            }
        }
        let in_phi = phi.count_cubes(&cubes);
        let in_not_phi = not_phi.count_cubes(&cubes);
        for ((la, lb), (p, n)) in labels.iter().zip(in_phi.into_iter().zip(in_not_phi)) {
            tally_diff(&mut counts, *la, *lb, p + n);
        }
    } else {
        let num_features = scope * scope;
        if num_features >= 128 {
            return format!("err scope {scope} overflows the full-space diff count");
        }
        for ra in a.regions.iter() {
            for rb in b.regions.iter() {
                match cube_intersection_size(&ra.cube, &rb.cube, num_features) {
                    Ok(size) => tally_diff(&mut counts, ra.label, rb.label, size),
                    Err(e) => return format!("err {e}"),
                }
            }
        }
    }
    format!(
        "ok {} {} {} {} {} {}",
        counts.tt,
        counts.tf,
        counts.ft,
        counts.ff,
        counts.diff(),
        counts.sim()
    )
}

/// Adds one region-pair intersection to the diff's label-pair counter.
fn tally_diff(counts: &mut DiffCounts, la: TreeLabel, lb: TreeLabel, size: u128) {
    match (la, lb) {
        (TreeLabel::True, TreeLabel::True) => counts.tt += size,
        (TreeLabel::True, TreeLabel::False) => counts.tf += size,
        (TreeLabel::False, TreeLabel::True) => counts.ft += size,
        (TreeLabel::False, TreeLabel::False) => counts.ff += size,
    }
}

/// The exact full-space size of `cube_a ∧ cube_b` over `num_features`
/// boolean variables: `0` when the cubes fix some variable to both
/// polarities (empty intersection), otherwise `2^(features − fixed)`.
/// A cube variable outside the feature space is an error — every fixed
/// variable must be a feature, or the `features − fixed` exponent would
/// underflow and the count would be meaningless.
fn cube_intersection_size(
    cube_a: &[Lit],
    cube_b: &[Lit],
    num_features: usize,
) -> Result<u128, String> {
    let mut fixed: HashMap<u32, bool> = HashMap::with_capacity(cube_a.len() + cube_b.len());
    for lit in cube_a.iter().chain(cube_b) {
        if lit.var().index() >= num_features {
            return Err(format!(
                "region cube variable {} is outside the {num_features}-feature space",
                lit.var().index() + 1
            ));
        }
        if let Some(previous) = fixed.insert(lit.var().0, lit.is_positive()) {
            if previous != lit.is_positive() {
                return Ok(0);
            }
        }
    }
    Ok(1u128 << (num_features - fixed.len()))
}

/// One conditioned count. Compiled truths answer exactly from the
/// circuit; degraded truths answer approximately from the re-translated
/// CNF with the `approx <ε> <δ>` label. Either way the cube is validated
/// against the projection first — [`satkit::ddnnf::Ddnnf::count_conditioned`] panics on
/// foreign variables, and a malformed query must never take the server
/// down.
fn conditioned_reply(circuits: &Circuits, negated: bool, cube: &[Lit]) -> Reply {
    let projection: HashSet<usize> = match circuits {
        Circuits::Compiled { phi, not_phi } => {
            let circuit = if negated { not_phi } else { phi };
            circuit.projection().iter().map(|v| v.index()).collect()
        }
        Circuits::Degraded { phi, not_phi, .. } => {
            let cnf = if negated { not_phi } else { phi };
            cnf.effective_projection()
                .iter()
                .map(|v| v.index())
                .collect()
        }
    };
    for lit in cube {
        if !projection.contains(&lit.var().index()) {
            return Reply::exact(format!(
                "err literal {} is outside the circuit's projection",
                lit.var().index() + 1
            ));
        }
    }
    match circuits {
        Circuits::Compiled { phi, not_phi } => {
            let circuit = if negated { not_phi } else { phi };
            Reply::exact(format!("ok {}", circuit.count_conditioned(cube)))
        }
        Circuits::Degraded {
            phi,
            not_phi,
            epsilon,
            delta,
        } => {
            let cnf = if negated { not_phi } else { phi };
            Reply {
                text: format!(
                    "ok {} approx {epsilon} {delta}",
                    degraded_count(cnf, cube, *epsilon, *delta)
                ),
                degraded: true,
            }
        }
    }
}

/// A parsed query with its reply channel and the store generation it
/// must be answered from, sent to the owning shard.
struct Job {
    query: Query,
    generation: Arc<Generation>,
    reply: mpsc::Sender<String>,
}

enum Query {
    Accuracy {
        key: UnitKey,
    },
    Diff {
        property: String,
        scope: usize,
        family_a: String,
        family_b: String,
    },
    Count {
        property: String,
        scope: usize,
        negated: bool,
        cube: Vec<Lit>,
    },
}

impl Query {
    fn parse(words: &[&str]) -> Result<Query, String> {
        let scope = |word: &str| {
            word.parse::<usize>()
                .map_err(|_| format!("bad scope {word:?}"))
        };
        match words {
            ["accuracy", property, s, family] => Ok(Query::Accuracy {
                key: (property.to_string(), scope(s)?, family.to_string()),
            }),
            ["diff", property, s, family_a, family_b] => Ok(Query::Diff {
                property: property.to_string(),
                scope: scope(s)?,
                family_a: family_a.to_string(),
                family_b: family_b.to_string(),
            }),
            ["count", property, s, side, lits @ ..] => {
                let negated = match *side {
                    "phi" => false,
                    "nphi" => true,
                    other => return Err(format!("bad side {other:?} (expected phi or nphi)")),
                };
                let cube = lits
                    .iter()
                    .map(|w| parse_dimacs_lit(w))
                    .collect::<Result<Vec<Lit>, String>>()?;
                Ok(Query::Count {
                    property: property.to_string(),
                    scope: scope(s)?,
                    negated,
                    cube,
                })
            }
            [verb, ..] => Err(format!(
                "unknown request {verb:?} \
                 (expected ping, accuracy, diff, count, stats, reload or shutdown)"
            )),
            [] => Err("empty request".to_string()),
        }
    }

    fn route(&self) -> (&str, usize) {
        match self {
            Query::Accuracy { key } => (&key.0, key.1),
            Query::Diff {
                property, scope, ..
            }
            | Query::Count {
                property, scope, ..
            } => (property, *scope),
        }
    }
}

/// A signed 1-indexed DIMACS literal (`3` / `-1`) as a [`Lit`]. The zero
/// check runs before the 1-index conversion — `0u64.wrapping_sub(1)`
/// would otherwise overflow the `u32` conversion first and misreport
/// `0` as out of range.
fn parse_dimacs_lit(word: &str) -> Result<Lit, String> {
    let value: i64 = word.parse().map_err(|_| format!("bad literal {word:?}"))?;
    if value == 0 {
        return Err("literal 0 is not valid DIMACS".to_string());
    }
    let var = u32::try_from(value.unsigned_abs() - 1)
        .map_err(|_| format!("literal {word} out of range"))?;
    Ok(if value > 0 {
        Lit::pos(var)
    } else {
        Lit::neg(var)
    })
}

/// The shard owning a `(property, scope)` — both sides of a diff share it.
fn shard_of(property: &str, scope: usize, workers: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    (property, scope).hash(&mut hasher);
    (hasher.finish() % workers as u64) as usize
}

/// How one attempt to read the next request frame ended.
enum RequestRead {
    /// A complete frame arrived.
    Request(String),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// No request arrived within the idle deadline.
    IdleTimeout,
    /// The server is draining for shutdown and no frame had started.
    ShuttingDown,
}

fn retriable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one length-prefixed request frame under the connection
/// deadlines. The stream's read timeout is [`TICK`], so the loop can
/// re-check the idle deadline and shutdown flag while no frame has
/// started, and the per-frame deadline (from the frame's first byte)
/// once one has — a client stalling mid-frame is disconnected instead of
/// pinning the handler.
fn read_request(stream: &mut TcpStream, shared: &Shared) -> io::Result<RequestRead> {
    let idle_deadline = Instant::now() + shared.options.idle_timeout;
    let mut frame_deadline: Option<Instant> = None;
    let stalled = || {
        io::Error::new(
            io::ErrorKind::TimedOut,
            "client stalled mid-frame past the io timeout",
        )
    };

    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(RequestRead::Closed),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(n) => {
                if frame_deadline.is_none() {
                    frame_deadline = Some(Instant::now() + shared.options.io_timeout);
                }
                filled += n;
            }
            Err(e) if retriable(&e) => match frame_deadline {
                None => {
                    if shared.is_shutting_down() {
                        return Ok(RequestRead::ShuttingDown);
                    }
                    if Instant::now() >= idle_deadline {
                        return Ok(RequestRead::IdleTimeout);
                    }
                }
                Some(deadline) if Instant::now() >= deadline => return Err(stalled()),
                Some(_) => {}
            },
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    let frame_deadline =
        frame_deadline.unwrap_or_else(|| Instant::now() + shared.options.io_timeout);
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame payload",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if retriable(&e) => {
                if Instant::now() >= frame_deadline {
                    return Err(stalled());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(payload)
        .map(RequestRead::Request)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 frame payload"))
}

/// Serves one connection until the peer closes, a deadline fires, the
/// server drains, or the peer sends `shutdown`.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    senders: &[mpsc::Sender<Job>],
) -> io::Result<()> {
    stream.set_read_timeout(Some(TICK))?;
    stream.set_write_timeout(Some(shared.options.io_timeout))?;
    loop {
        match read_request(&mut stream, shared)? {
            RequestRead::Closed | RequestRead::ShuttingDown => return Ok(()),
            RequestRead::IdleTimeout => {
                let _ = write_frame(&mut stream, "err idle timeout");
                return Ok(());
            }
            RequestRead::Request(request) => {
                let words: Vec<&str> = request.split_ascii_whitespace().collect();
                match words.first().copied() {
                    Some("ping") => write_frame(&mut stream, "ok pong")?,
                    Some("stats") => write_frame(&mut stream, &shared.stats.reply())?,
                    Some("reload") => {
                        let reply = match reload_now(shared) {
                            Ok((id, units)) => {
                                format!("ok reloaded generation {id} units {units}")
                            }
                            Err(message) => format!("err {message}"),
                        };
                        write_frame(&mut stream, &reply)?;
                    }
                    Some("shutdown") => {
                        shared.shutdown.store(true, Ordering::SeqCst);
                        shared.queue_signal.notify_all();
                        // The acceptor is blocked in accept(); a
                        // self-connection wakes it so it observes the
                        // flag and starts the drain.
                        let _ = TcpStream::connect(shared.local);
                        write_frame(&mut stream, "ok bye")?;
                        return Ok(());
                    }
                    _ => {
                        let reply = match Query::parse(&words) {
                            Err(message) => format!("err {message}"),
                            Ok(query) => dispatch_query(query, shared, senders),
                        };
                        write_frame(&mut stream, &reply)?;
                    }
                }
            }
        }
    }
}

/// Routes a parsed query to its owning shard under a generation
/// snapshot and waits for the reply. Workers outlive every handler, so
/// the error arms are anomaly paths (a worker died on a panic storm),
/// not shutdown races.
fn dispatch_query(query: Query, shared: &Shared, senders: &[mpsc::Sender<Job>]) -> String {
    let generation = shared.current_generation();
    let (property, scope) = query.route();
    let index = shard_of(property, scope, senders.len());
    let (reply_sender, reply_receiver) = mpsc::channel();
    if senders[index]
        .send(Job {
            query,
            generation,
            reply: reply_sender,
        })
        .is_err()
    {
        return "err worker unavailable".to_string();
    }
    reply_receiver
        .recv()
        .unwrap_or_else(|_| "err worker unavailable".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_literal_parsing_covers_the_edges() {
        assert_eq!(parse_dimacs_lit("3"), Ok(Lit::pos(2)));
        assert_eq!(parse_dimacs_lit("-1"), Ok(Lit::neg(0)));
        // The zero check must win over the range check.
        assert_eq!(
            parse_dimacs_lit("0"),
            Err("literal 0 is not valid DIMACS".to_string())
        );
        // i64::MIN survives `unsigned_abs` and fails the range check.
        let min = i64::MIN.to_string();
        assert_eq!(
            parse_dimacs_lit(&min),
            Err(format!("literal {min} out of range"))
        );
        // An out-of-range positive literal is a range error, not a parse
        // error.
        let big = (u64::from(u32::MAX) + 2).to_string();
        assert_eq!(
            parse_dimacs_lit(&big),
            Err(format!("literal {big} out of range"))
        );
        assert_eq!(
            parse_dimacs_lit("x7"),
            Err("bad literal \"x7\"".to_string())
        );
    }

    #[test]
    fn stats_recover_from_a_poisoned_hit_table() {
        let stats = Arc::new(ServerStats::default());
        let query = Query::Accuracy {
            key: ("Function".to_string(), 3, "DT".to_string()),
        };
        stats.record(&query, 17, false);

        // Poison the lock: a thread panics while holding `unit_hits`.
        let poisoner = Arc::clone(&stats);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.unit_hits.lock().unwrap();
            panic!("poison the stats table");
        })
        .join();
        assert!(stats.unit_hits.lock().is_err(), "lock must be poisoned");

        // Recording and reporting must keep working — one bad query can
        // never disable stats server-wide.
        stats.record(&query, 25, true);
        let reply = stats.reply();
        // 17 ns and 25 ns both land in bucket 4 ([16, 32)), so both
        // quantiles report its 32 ns upper bound.
        assert!(
            reply.starts_with("ok queries 2 degraded 1 units 1 p50_ns 32 p99_ns 32"),
            "unexpected stats reply {reply:?}"
        );
        assert!(reply.ends_with("Function 3 DT 2 4:2"), "reply {reply:?}");
    }

    #[test]
    fn latency_buckets_are_log_scale_and_quantiles_over_estimate() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 1);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(1023), 9);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), LATENCY_BUCKETS - 1);

        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_ns(50), 0);
        assert_eq!(empty.quantile_ns(99), 0);
        assert_eq!(empty.reply_words(), "");

        // 99 fast samples and one slow straggler: the median stays in the
        // fast bucket, the p99 rank (ceil(100 · 0.99) = 99) is still the
        // last fast sample, and only a p100 read reaches the straggler.
        let mut skewed = LatencyHistogram::default();
        for _ in 0..99 {
            skewed.record(100); // bucket 6: [64, 128)
        }
        skewed.record(1 << 20); // bucket 20
        assert_eq!(skewed.quantile_ns(50), 128);
        assert_eq!(skewed.quantile_ns(99), 128);
        assert_eq!(skewed.quantile_ns(100), 1 << 21);
        assert_eq!(skewed.reply_words(), " 6:99 20:1");

        // The unbounded top bucket still reports a finite bound: its
        // nominal 2^32 ns upper edge.
        let mut top = LatencyHistogram::default();
        top.record(u64::MAX);
        assert_eq!(top.quantile_ns(50), 1u64 << LATENCY_BUCKETS);
    }

    #[test]
    fn sanitized_options_never_zero_out_the_runtime() {
        let opts = ServeOptions {
            workers: 0,
            connections: 0,
            backlog: 0,
            idle_timeout: Duration::ZERO,
            io_timeout: Duration::ZERO,
            ..ServeOptions::default()
        }
        .sanitized();
        assert_eq!(opts.workers, 1);
        assert_eq!(opts.connections, 1);
        assert_eq!(opts.backlog, 1);
        assert!(opts.idle_timeout >= Duration::from_millis(1));
        assert!(opts.io_timeout >= Duration::from_millis(1));
    }
}
