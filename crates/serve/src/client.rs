//! A one-shot scripting client: connect, send one request frame, return
//! the reply text. The `mcml-serve client` subcommand wraps [`query`].

use crate::protocol::{read_frame, write_frame};
use std::io;
use std::net::TcpStream;

/// Sends `request` to the server at `addr` and returns the reply text
/// (`ok ...` or `err ...`).
pub fn query(addr: &str, request: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, request)?;
    read_frame(&mut stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without replying",
        )
    })
}
