//! Scripting clients over the frame protocol: a persistent
//! [`Connection`] issuing any number of requests over one TCP stream
//! (the server keeps connections open between requests), and the
//! one-shot [`query`] helper the `mcml-serve client` subcommand wraps.

use crate::protocol::{read_frame, write_frame};
use std::io;
use std::net::TcpStream;

/// A persistent client connection: one TCP stream, any number of
/// request/reply round trips. Dropping it closes the connection (a
/// frame-boundary close the server treats as a normal goodbye).
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connects to the server at `addr`.
    pub fn connect(addr: &str) -> io::Result<Connection> {
        Ok(Connection {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request and returns the reply text (`ok ...` or
    /// `err ...`). An `UnexpectedEof` means the server closed the
    /// connection instead of replying — after `shutdown`, an idle
    /// disconnect, or a refused overload connection that already spent
    /// its one reply frame.
    pub fn request(&mut self, request: &str) -> io::Result<String> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without replying",
            )
        })
    }

    /// Reads one reply frame without sending anything — for replies the
    /// server pushes unprompted (`err server busy` on an overloaded
    /// accept queue, `err idle timeout` before an idle disconnect).
    /// Returns `None` if the server closed the connection instead.
    pub fn read_reply(&mut self) -> io::Result<Option<String>> {
        read_frame(&mut self.stream)
    }
}

/// Sends `request` to the server at `addr` over a fresh connection and
/// returns the reply text (`ok ...` or `err ...`).
pub fn query(addr: &str, request: &str) -> io::Result<String> {
    Connection::connect(addr)?.request(request)
}
