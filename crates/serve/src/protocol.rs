//! The wire protocol: length-prefixed UTF-8 text frames.
//!
//! Each frame is a big-endian `u32` byte length followed by that many bytes
//! of UTF-8 text. Requests and replies are single frames; the text itself
//! is a line of space-separated words (see [`crate::server`] for the
//! request grammar). Length-prefixing keeps framing trivial for scripting
//! clients in any language — no escaping, no delimiter ambiguity — while
//! the payload stays human-readable.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload, protecting the server from a
/// garbage length prefix (a paper-scope query is a few hundred bytes).
pub const MAX_FRAME: usize = 1 << 20;

/// Writes `text` as one frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, text: &str) -> io::Result<()> {
    let len = u32::try_from(text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    if len as usize > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean end-of-stream at a frame
/// boundary (the peer closed the connection), an error on a torn frame,
/// an oversized length or non-UTF-8 payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 frame payload"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "accuracy function 3 DT").expect("write");
        write_frame(&mut buf, "").expect("write empty");
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).expect("read").as_deref(),
            Some("accuracy function 3 DT")
        );
        assert_eq!(read_frame(&mut cursor).expect("read").as_deref(), Some(""));
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
    }

    #[test]
    fn torn_and_oversized_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "ping").expect("write");
        buf.truncate(buf.len() - 1);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err(), "torn frame must error");

        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        let mut cursor = io::Cursor::new(huge);
        assert!(
            read_frame(&mut cursor).is_err(),
            "oversized length must error"
        );
    }
}
