//! Connection-runtime behavior: the bounded handler pool, overload and
//! idle-timeout replies, persistent connections interleaving verbs, and
//! the shutdown drain. These tests serve an empty store — the runtime
//! under test is the connection machinery, not the query plans.

use mcml::artifact::CircuitArtifact;
use mcml_serve::{client, server, CircuitStore, Connection, ServeOptions};
use std::time::{Duration, Instant};

fn empty_store() -> CircuitStore {
    CircuitStore::from_artifact(CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: Vec::new(),
        covers: Vec::new(),
    })
    .expect("empty artifact resolves")
}

#[test]
fn a_persistent_connection_interleaves_every_verb() {
    let handle = server::start(
        empty_store(),
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut conn = Connection::connect(&addr).expect("connect");
    assert_eq!(conn.request("ping").expect("ping"), "ok pong");
    assert_eq!(
        conn.request("stats").expect("stats"),
        "ok queries 0 degraded 0 units 0 p50_ns 0 p99_ns 0"
    );
    // Errors never drop the connection.
    assert!(conn
        .request("frobnicate")
        .expect("reply")
        .starts_with("err unknown request"));
    assert!(conn
        .request("accuracy Nowhere 3 DT")
        .expect("reply")
        .starts_with("err unknown unit"));
    assert_eq!(conn.request("ping").expect("ping again"), "ok pong");
    // Without configured artifact directories, reload is a typed error.
    assert_eq!(
        conn.request("reload").expect("reload"),
        "err reload unavailable (no artifact directories configured)"
    );
    assert_eq!(conn.request("shutdown").expect("shutdown"), "ok bye");
    handle.join();
}

#[test]
fn a_saturated_pool_replies_server_busy() {
    let handle = server::start(
        empty_store(),
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            connections: 1,
            backlog: 1,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    // conn1 occupies the single handler (the reply proves it was claimed);
    // conn2 fills the one-slot accept queue; conn3 must be refused.
    let mut conn1 = Connection::connect(&addr).expect("connect 1");
    assert_eq!(conn1.request("ping").expect("ping"), "ok pong");
    let mut conn2 = Connection::connect(&addr).expect("connect 2");
    std::thread::sleep(Duration::from_millis(300));
    let mut conn3 = Connection::connect(&addr).expect("connect 3");
    assert_eq!(
        conn3.read_reply().expect("read refusal"),
        Some("err server busy".to_string()),
        "the connection past the backlog must be refused, not queued"
    );

    // Shutdown drains: the queued-but-never-claimed conn2 is refused with
    // the shutdown message instead of being silently dropped.
    assert_eq!(conn1.request("shutdown").expect("shutdown"), "ok bye");
    assert_eq!(
        conn2.read_reply().expect("read drain refusal"),
        Some("err server is shutting down".to_string())
    );
    handle.join();
}

#[test]
fn idle_connections_are_reaped_with_a_timeout_reply() {
    let handle = server::start(
        empty_store(),
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            idle_timeout: Duration::from_millis(200),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut idle = Connection::connect(&addr).expect("connect");
    assert_eq!(idle.request("ping").expect("ping"), "ok pong");
    let waited = Instant::now();
    assert_eq!(
        idle.read_reply().expect("read timeout reply"),
        Some("err idle timeout".to_string())
    );
    assert!(
        waited.elapsed() >= Duration::from_millis(150),
        "the idle reply must come from the deadline, not immediately"
    );
    assert_eq!(idle.read_reply().expect("read EOF"), None);

    // The handler is back in the pool and keeps serving.
    assert_eq!(client::query(&addr, "ping").expect("ping"), "ok pong");
    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

#[test]
fn shutdown_drains_in_flight_queries() {
    let handle = server::start(
        empty_store(),
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            // Every counting answer sleeps long enough for shutdown to
            // land while the query is in flight.
            answer_latency: Duration::from_millis(400),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || client::query(&addr, "accuracy Nowhere 3 DT").expect("reply"))
    };
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );

    // The racing query still gets its real answer — the workers outlive
    // every handler, so `err worker unavailable` can never be the reply
    // for a query accepted before shutdown.
    assert_eq!(
        in_flight.join().expect("in-flight thread"),
        "err unknown unit Nowhere 3 DT"
    );
    handle.join();
}
