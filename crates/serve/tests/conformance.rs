//! Serving-vs-batch conformance: a query answered by `mcml-serve` from a
//! preloaded artifact must reproduce the batch evaluation **bit for bit**
//! — same `u128` counts, same `f64` metrics (compared via `to_bits`) —
//! under whichever engine `MCML_ENGINE` selects for the batch side. The
//! serving side always runs the compiled region-sum plan, so these tests
//! double as engine-conformance coverage for the serve crate.

use mcml::accmc::CountingEngine;
use mcml::artifact::{CircuitArtifact, RegionCover};
use mcml::backend::CounterBackend;
use mcml::counter::{cnf_fingerprint, CompiledCounter, ModelCounter};
use mcml::diffmc::DiffMc;
use mcml::encode::CnfEncodable;
use mcml::framework::{ExperimentConfig, ModelFamily, Runner};
use mcml_serve::{client, server, CircuitStore};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn labeled_dataset(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

fn ok_fields(reply: &str) -> Vec<String> {
    let fields: Vec<String> = reply.split_ascii_whitespace().map(String::from).collect();
    assert_eq!(
        fields.first().map(String::as_str),
        Some("ok"),
        "reply {reply:?}"
    );
    fields[1..].to_vec()
}

/// Batch rows via the `Runner`, artifact via `Runner::build_artifact`
/// (identical training paths), then every row queried back over TCP: the
/// served counts and metrics must equal the batch's exactly.
#[test]
fn served_accuracy_is_bit_identical_to_the_batch_runner() {
    let configs = vec![ExperimentConfig::table5(Property::Function, 3)];
    let families = [ModelFamily::Dt, ModelFamily::Rft];
    let runner = Runner::new()
        .families(&families)
        .engine(CountingEngine::from_env());
    let rows = runner
        .run(&configs, &CounterBackend::compiled())
        .expect("well-formed batch");

    let counter = CompiledCounter::new();
    let artifact = runner
        .build_artifact(&configs, &counter)
        .expect("well-formed batch");
    let store = CircuitStore::from_artifact(artifact).expect("resolvable covers");
    assert_eq!(store.skipped_covers(), 0);
    assert_eq!(store.len(), 2);
    let handle = server::start(store, "127.0.0.1:0", 2).expect("bind");
    let addr = handle.addr().to_string();

    for row in &rows {
        let ws = row.whole_space.as_ref().expect("no budget configured");
        let reply = client::query(
            &addr,
            &format!(
                "accuracy {} {} {}",
                row.config.property.name(),
                row.config.scope,
                row.family.name()
            ),
        )
        .expect("query");
        let fields = ok_fields(&reply);
        let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
        assert_eq!(
            counts,
            vec![ws.counts.tp, ws.counts.fp, ws.counts.tn, ws.counts.fn_],
            "count drift in {reply:?}"
        );
        let served: Vec<f64> = fields[4..8].iter().map(|f| f.parse().unwrap()).collect();
        let batch = [
            ws.metrics.accuracy,
            ws.metrics.precision,
            ws.metrics.recall,
            ws.metrics.f1,
        ];
        for (s, b) in served.iter().zip(batch) {
            assert_eq!(s.to_bits(), b.to_bits(), "metric drift in {reply:?}");
        }
    }

    assert_eq!(client::query(&addr, "ping").expect("ping"), "ok pong");

    // Two accuracy queries landed (one per row); ping is not a counting
    // query and must not inflate the stats.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    assert_eq!(stats[..2], ["queries", "2"].map(String::from));
    assert_eq!(stats[2], "sweep_ns");
    assert!(stats[3].parse::<u64>().expect("sweep_ns is a number") > 0);
    assert_eq!(stats[4..6], ["units", "2"].map(String::from));

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// Hand-built artifact for two models, served diff vs `DiffMc::compare` on
/// the very same trained models. The ground truth carries no symmetry
/// breaking, so φ ∨ ¬φ covers the full feature space and the served
/// pairwise-intersection plan must agree exactly — plus conditioned-count
/// and error-path coverage over the same connection.
#[test]
fn served_diff_and_counts_match_the_batch_analyses() {
    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let forest = RandomForest::fit(
        &dataset,
        ForestConfig {
            num_trees: 3,
            seed: 11,
            ..ForestConfig::default()
        },
    );
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let expected = DiffMc::with_engine(&CounterBackend::compiled(), CountingEngine::from_env())
        .compare(&tree, &forest)
        .expect("feature counts match")
        .expect("no budget configured");

    let phi = gt.cnf_positive();
    let not_phi = gt.cnf_negative();
    let counter = CompiledCounter::new();
    assert!(counter.count(&phi).is_exact());
    assert!(counter.count(&not_phi).is_exact());
    let cover = |family: &str, regions| RegionCover {
        property: property.name().to_string(),
        scope,
        family: family.to_string(),
        phi: cnf_fingerprint(&phi),
        not_phi: cnf_fingerprint(&not_phi),
        regions,
    };
    let artifact = CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: counter.snapshot_circuits(),
        covers: vec![
            cover("DT", tree.decision_regions().expect("tree regions")),
            cover("RFT", forest.decision_regions().expect("forest regions")),
        ],
    };
    let store = CircuitStore::from_artifact(artifact).expect("resolvable covers");
    let handle = server::start(store, "127.0.0.1:0", 3).expect("bind");
    let addr = handle.addr().to_string();

    let reply = client::query(&addr, &format!("diff {} {scope} DT RFT", property.name()))
        .expect("diff query");
    let fields = ok_fields(&reply);
    let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
    assert_eq!(
        counts,
        vec![
            expected.counts.tt,
            expected.counts.tf,
            expected.counts.ft,
            expected.counts.ff
        ],
        "count drift in {reply:?}"
    );
    let diff: f64 = fields[4].parse().unwrap();
    let sim: f64 = fields[5].parse().unwrap();
    assert_eq!(diff.to_bits(), expected.counts.diff().to_bits());
    assert_eq!(sim.to_bits(), expected.counts.sim().to_bits());

    // Conditioned counts against the preloaded φ: unconditioned equals the
    // circuit count, a one-literal cube splits it, and the two sides of
    // feature 1 sum back to the whole.
    let total: u128 = ok_fields(
        &client::query(&addr, &format!("count {} {scope} phi", property.name())).unwrap(),
    )[0]
    .parse()
    .unwrap();
    let pos: u128 = ok_fields(
        &client::query(&addr, &format!("count {} {scope} phi 1", property.name())).unwrap(),
    )[0]
    .parse()
    .unwrap();
    let neg: u128 = ok_fields(
        &client::query(&addr, &format!("count {} {scope} phi -1", property.name())).unwrap(),
    )[0]
    .parse()
    .unwrap();
    assert_eq!(pos + neg, total);

    // Error paths: unknown unit, foreign literal, malformed requests — all
    // `err` replies, never a dropped connection.
    for bad in [
        format!("accuracy {} {scope} GBDT", property.name()),
        format!("count {} {scope} phi 999", property.name()),
        format!("count {} {scope} phi 0", property.name()),
        format!("count {} {scope} psi", property.name()),
        "accuracy onlytwo 3".to_string(),
        "frobnicate".to_string(),
    ] {
        let reply = client::query(&addr, &bad).expect("connection survives");
        assert!(
            reply.starts_with("err "),
            "expected err for {bad:?}, got {reply:?}"
        );
    }

    // The stats verb tallies exactly the queries that were answered `ok`:
    // one diff (hitting both units), three conditioned counts (recorded
    // under the `truth` pseudo-family) — the error-path probes above must
    // not appear, so no phantom GBDT unit shows up.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    assert_eq!(stats[..2], ["queries", "4"].map(String::from));
    assert_eq!(stats[2], "sweep_ns");
    assert!(stats[3].parse::<u64>().expect("sweep_ns is a number") > 0);
    assert_eq!(stats[4..6], ["units", "3"].map(String::from));
    assert_eq!(
        stats[6..],
        [
            "Reflexive",
            "3",
            "DT",
            "1", //
            "Reflexive",
            "3",
            "RFT",
            "1", //
            "Reflexive",
            "3",
            "truth",
            "3",
        ]
        .map(String::from)
    );

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}
