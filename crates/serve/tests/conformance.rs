//! Serving-vs-batch conformance: a query answered by `mcml-serve` from a
//! preloaded artifact must reproduce the batch evaluation **bit for bit**
//! — same `u128` counts, same `f64` metrics (compared via `to_bits`) —
//! under whichever engine `MCML_ENGINE` selects for the batch side. The
//! serving side always runs the compiled region-sum plan, so these tests
//! double as engine-conformance coverage for the serve crate.

use mcml::accmc::CountingEngine;
use mcml::artifact::{CircuitArtifact, RegionCover};
use mcml::backend::CounterBackend;
use mcml::counter::{cnf_fingerprint, CompiledCounter, ModelCounter};
use mcml::diffmc::DiffMc;
use mcml::encode::CnfEncodable;
use mcml::framework::{ExperimentConfig, ModelFamily, Runner};
use mcml_serve::{client, server, CircuitStore, ServeOptions};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn two_workers() -> ServeOptions {
    ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    }
}

fn labeled_dataset(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mcml-serve-conf-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&p).expect("create temp dir");
    p
}

/// A hand-built compiled artifact for `Reflexive` scope 3 covering the
/// named families (`"DT"` / `"RFT"`), no symmetry breaking — the
/// building block for the reload and multi-directory tests.
fn reflexive_artifact(families: &[&str]) -> CircuitArtifact {
    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let phi = gt.cnf_positive();
    let not_phi = gt.cnf_negative();
    let counter = CompiledCounter::new();
    assert!(counter.count(&phi).is_exact());
    assert!(counter.count(&not_phi).is_exact());
    let cover = |family: &str, regions| RegionCover {
        property: property.name().to_string(),
        scope,
        family: family.to_string(),
        phi: cnf_fingerprint(&phi),
        not_phi: cnf_fingerprint(&not_phi),
        symmetry: SymmetryBreaking::None,
        regions,
    };
    let covers = families
        .iter()
        .map(|family| match *family {
            "DT" => {
                let tree = DecisionTree::fit(&dataset, TreeConfig::default());
                cover("DT", tree.decision_regions().expect("tree regions"))
            }
            "RFT" => {
                let forest = RandomForest::fit(
                    &dataset,
                    ForestConfig {
                        num_trees: 3,
                        seed: 11,
                        ..ForestConfig::default()
                    },
                );
                cover("RFT", forest.decision_regions().expect("forest regions"))
            }
            other => panic!("unknown family {other}"),
        })
        .collect();
    CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: counter.snapshot_circuits(),
        covers,
    }
}

fn ok_fields(reply: &str) -> Vec<String> {
    let fields: Vec<String> = reply.split_ascii_whitespace().map(String::from).collect();
    assert_eq!(
        fields.first().map(String::as_str),
        Some("ok"),
        "reply {reply:?}"
    );
    fields[1..].to_vec()
}

/// Asserts the fixed `stats` summary header — `queries <n> degraded <d>
/// units <k> p50_ns <p> p99_ns <q>` — and returns the per-unit tail.
/// With at least one query recorded, both quantiles must be positive and
/// ordered.
fn check_stats_header<'a>(stats: &'a [String], queries: u64, degraded: u64, units: u64) -> &'a [String] {
    assert_eq!(stats[..2], ["queries".to_string(), queries.to_string()]);
    assert_eq!(stats[2..4], ["degraded".to_string(), degraded.to_string()]);
    assert_eq!(stats[4..6], ["units".to_string(), units.to_string()]);
    assert_eq!(stats[6], "p50_ns");
    let p50: u64 = stats[7].parse().expect("p50_ns is a number");
    assert_eq!(stats[8], "p99_ns");
    let p99: u64 = stats[9].parse().expect("p99_ns is a number");
    if queries > 0 {
        assert!(0 < p50 && p50 <= p99, "quantiles out of order in {stats:?}");
    } else {
        assert_eq!((p50, p99), (0, 0), "no queries, no latency: {stats:?}");
    }
    &stats[10..]
}

/// One parsed per-unit stats entry: the unit key, its hit count, and the
/// sparse `<bucket>:<count>` histogram words that follow it.
struct UnitEntry {
    key: String,
    hits: u64,
    buckets: Vec<(usize, u64)>,
}

/// Splits the stats tail into per-unit entries — four plain words
/// (`<property> <scope> <family> <hits>`), then any number of
/// `<bucket>:<count>` words — and checks the per-unit histogram
/// invariants: bucket indices in range and counts summing to the hits.
fn parse_unit_entries(tail: &[String]) -> Vec<UnitEntry> {
    let mut entries: Vec<UnitEntry> = Vec::new();
    let mut i = 0;
    while i < tail.len() {
        assert!(i + 4 <= tail.len(), "truncated unit entry in {tail:?}");
        let mut entry = UnitEntry {
            key: format!("{} {} {}", tail[i], tail[i + 1], tail[i + 2]),
            hits: tail[i + 3].parse().expect("hits is a number"),
            buckets: Vec::new(),
        };
        i += 4;
        while i < tail.len() && tail[i].contains(':') {
            let (bucket, count) = tail[i].split_once(':').expect("bucket word");
            entry.buckets.push((
                bucket.parse().expect("bucket index"),
                count.parse().expect("bucket count"),
            ));
            i += 1;
        }
        assert!(
            entry.buckets.iter().all(|(bucket, _)| *bucket < 32),
            "bucket index out of range in {tail:?}"
        );
        assert_eq!(
            entry.buckets.iter().map(|(_, count)| count).sum::<u64>(),
            entry.hits,
            "histogram of {} must sum to its hits",
            entry.key
        );
        entries.push(entry);
    }
    entries
}

/// Batch rows via the `Runner`, artifact via `Runner::build_artifact`
/// (identical training paths), then every row queried back over TCP: the
/// served counts and metrics must equal the batch's exactly.
#[test]
fn served_accuracy_is_bit_identical_to_the_batch_runner() {
    let configs = vec![ExperimentConfig::table5(Property::Function, 3)];
    let families = [ModelFamily::Dt, ModelFamily::Rft];
    let runner = Runner::new()
        .families(&families)
        .engine(CountingEngine::from_env());
    let rows = runner
        .run(&configs, &CounterBackend::compiled())
        .expect("well-formed batch");

    let counter = CompiledCounter::new();
    let artifact = runner
        .build_artifact(&configs, &counter)
        .expect("well-formed batch");
    let store = CircuitStore::from_artifact(artifact).expect("resolvable covers");
    assert_eq!(store.skipped_covers(), 0);
    assert_eq!(store.len(), 2);
    let handle = server::start(store, "127.0.0.1:0", two_workers()).expect("bind");
    let addr = handle.addr().to_string();

    for row in &rows {
        let ws = row.whole_space.as_ref().expect("no budget configured");
        let reply = client::query(
            &addr,
            &format!(
                "accuracy {} {} {}",
                row.config.property.name(),
                row.config.scope,
                row.family.name()
            ),
        )
        .expect("query");
        let fields = ok_fields(&reply);
        let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
        assert_eq!(
            counts,
            vec![ws.counts.tp, ws.counts.fp, ws.counts.tn, ws.counts.fn_],
            "count drift in {reply:?}"
        );
        let served: Vec<f64> = fields[4..8].iter().map(|f| f.parse().unwrap()).collect();
        let batch = [
            ws.metrics.accuracy,
            ws.metrics.precision,
            ws.metrics.recall,
            ws.metrics.f1,
        ];
        for (s, b) in served.iter().zip(batch) {
            assert_eq!(s.to_bits(), b.to_bits(), "metric drift in {reply:?}");
        }
    }

    assert_eq!(client::query(&addr, "ping").expect("ping"), "ok pong");

    // Two accuracy queries landed (one per row); ping is not a counting
    // query and must not inflate the stats.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    let tail = check_stats_header(&stats, 2, 0, 2);
    assert_eq!(parse_unit_entries(tail).len(), 2);

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// The conformance pin for the per-unit latency histograms: the `stats`
/// reply format is `ok queries <n> degraded <d> units <k> p50_ns <p>
/// p99_ns <q>` followed by per-unit entries, each carrying its
/// `<bucket>:<count>` log-scale histogram whose counts sum to the unit's
/// hits. Before any query both quantiles read 0; after queries they are
/// positive, ordered, and every recorded sample is accounted for.
#[test]
fn stats_report_per_unit_latency_histograms() {
    let store =
        CircuitStore::from_artifact(reflexive_artifact(&["DT"])).expect("resolvable covers");
    let handle = server::start(store, "127.0.0.1:0", two_workers()).expect("bind");
    let addr = handle.addr().to_string();

    // A fresh server has recorded nothing: empty histogram, zero
    // quantiles, no unit entries.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    assert!(check_stats_header(&stats, 0, 0, 0).is_empty());

    for _ in 0..5 {
        let reply = client::query(&addr, "accuracy Reflexive 3 DT").expect("accuracy");
        assert!(reply.starts_with("ok "), "got {reply:?}");
    }

    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    let entries = parse_unit_entries(check_stats_header(&stats, 5, 0, 1));
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].key, "Reflexive 3 DT");
    assert_eq!(entries[0].hits, 5);
    // parse_unit_entries already checked the histogram sums to the hits
    // and stays within the 32 fixed buckets; the buckets must also be
    // sorted and non-empty, so the sparse encoding is canonical.
    let indices: Vec<usize> = entries[0].buckets.iter().map(|(bucket, _)| *bucket).collect();
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(indices, sorted, "bucket words must be sorted and unique");
    assert!(entries[0].buckets.iter().all(|(_, count)| *count > 0));

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// Hand-built artifact for two models, served diff vs `DiffMc::compare` on
/// the very same trained models. The ground truth carries no symmetry
/// breaking, so φ ∨ ¬φ covers the full feature space and the served
/// pairwise-intersection plan must agree exactly — plus conditioned-count
/// and error-path coverage over the same connection.
#[test]
fn served_diff_and_counts_match_the_batch_analyses() {
    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let forest = RandomForest::fit(
        &dataset,
        ForestConfig {
            num_trees: 3,
            seed: 11,
            ..ForestConfig::default()
        },
    );
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let expected = DiffMc::with_engine(&CounterBackend::compiled(), CountingEngine::from_env())
        .compare(&tree, &forest)
        .expect("feature counts match")
        .expect("no budget configured");

    let phi = gt.cnf_positive();
    let not_phi = gt.cnf_negative();
    let counter = CompiledCounter::new();
    assert!(counter.count(&phi).is_exact());
    assert!(counter.count(&not_phi).is_exact());
    let cover = |family: &str, regions| RegionCover {
        property: property.name().to_string(),
        scope,
        family: family.to_string(),
        phi: cnf_fingerprint(&phi),
        not_phi: cnf_fingerprint(&not_phi),
        symmetry: SymmetryBreaking::None,
        regions,
    };
    let artifact = CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: counter.snapshot_circuits(),
        covers: vec![
            cover("DT", tree.decision_regions().expect("tree regions")),
            cover("RFT", forest.decision_regions().expect("forest regions")),
        ],
    };
    let store = CircuitStore::from_artifact(artifact).expect("resolvable covers");
    let handle = server::start(
        store,
        "127.0.0.1:0",
        ServeOptions {
            workers: 3,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    let reply = client::query(&addr, &format!("diff {} {scope} DT RFT", property.name()))
        .expect("diff query");
    let fields = ok_fields(&reply);
    let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
    assert_eq!(
        counts,
        vec![
            expected.counts.tt,
            expected.counts.tf,
            expected.counts.ft,
            expected.counts.ff
        ],
        "count drift in {reply:?}"
    );
    let diff: f64 = fields[4].parse().unwrap();
    let sim: f64 = fields[5].parse().unwrap();
    assert_eq!(diff.to_bits(), expected.counts.diff().to_bits());
    assert_eq!(sim.to_bits(), expected.counts.sim().to_bits());

    // Conditioned counts against the preloaded φ: unconditioned equals the
    // circuit count, a one-literal cube splits it, and the two sides of
    // feature 1 sum back to the whole.
    let total: u128 = ok_fields(
        &client::query(&addr, &format!("count {} {scope} phi", property.name())).unwrap(),
    )[0]
    .parse()
    .unwrap();
    let pos: u128 = ok_fields(
        &client::query(&addr, &format!("count {} {scope} phi 1", property.name())).unwrap(),
    )[0]
    .parse()
    .unwrap();
    let neg: u128 = ok_fields(
        &client::query(&addr, &format!("count {} {scope} phi -1", property.name())).unwrap(),
    )[0]
    .parse()
    .unwrap();
    assert_eq!(pos + neg, total);

    // Error paths: unknown unit, foreign literal, malformed requests — all
    // `err` replies, never a dropped connection.
    for bad in [
        format!("accuracy {} {scope} GBDT", property.name()),
        format!("count {} {scope} phi 999", property.name()),
        format!("count {} {scope} phi 0", property.name()),
        format!("count {} {scope} psi", property.name()),
        "accuracy onlytwo 3".to_string(),
        "frobnicate".to_string(),
    ] {
        let reply = client::query(&addr, &bad).expect("connection survives");
        assert!(
            reply.starts_with("err "),
            "expected err for {bad:?}, got {reply:?}"
        );
    }

    // The stats verb tallies exactly the queries that were answered `ok`:
    // one diff (hitting both units), three conditioned counts (recorded
    // under the `truth` pseudo-family) — the error-path probes above must
    // not appear, so no phantom GBDT unit shows up.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    let tail = check_stats_header(&stats, 4, 0, 3);
    let entries = parse_unit_entries(tail);
    let summary: Vec<(&str, u64)> = entries
        .iter()
        .map(|entry| (entry.key.as_str(), entry.hits))
        .collect();
    assert_eq!(
        summary,
        vec![
            ("Reflexive 3 DT", 1),
            ("Reflexive 3 RFT", 1),
            ("Reflexive 3 truth", 3),
        ]
    );

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// Table 3's ground truth bakes lex-leader symmetry breaking into φ/¬φ,
/// so the artifact's covers record it, served accuracy stays bit-identical
/// to the batch runner (both are defined over the constrained space), and
/// `diff` — whose batch counterpart `DiffMc` counts the full feature
/// space — switches to the full-space combinatorial region-intersection
/// plan instead of refusing (or silently serving constrained-space
/// numbers).
#[test]
fn symmetry_broken_artifacts_serve_accuracy_and_full_space_diff() {
    let configs = vec![ExperimentConfig::table3(Property::Function, 3)];
    let families = [ModelFamily::Dt, ModelFamily::Rft];
    let runner = Runner::new()
        .families(&families)
        .engine(CountingEngine::from_env());
    let rows = runner
        .run(&configs, &CounterBackend::compiled())
        .expect("well-formed batch");

    let counter = CompiledCounter::new();
    let artifact = runner
        .build_artifact(&configs, &counter)
        .expect("well-formed batch");
    for cover in &artifact.covers {
        assert_eq!(
            cover.symmetry,
            SymmetryBreaking::Transpositions,
            "table3 covers must record the eval symmetry"
        );
    }
    let store = CircuitStore::from_artifact(artifact).expect("resolvable covers");
    let handle = server::start(store, "127.0.0.1:0", two_workers()).expect("bind");
    let addr = handle.addr().to_string();

    // Accuracy is still served, bit-identical to the batch rows.
    for row in &rows {
        let ws = row.whole_space.as_ref().expect("no budget configured");
        let reply = client::query(
            &addr,
            &format!(
                "accuracy {} {} {}",
                row.config.property.name(),
                row.config.scope,
                row.family.name()
            ),
        )
        .expect("query");
        let fields = ok_fields(&reply);
        let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
        assert_eq!(
            counts,
            vec![ws.counts.tp, ws.counts.fp, ws.counts.tn, ws.counts.fn_],
            "count drift in {reply:?}"
        );
        let served_acc: f64 = fields[4].parse().unwrap();
        assert_eq!(served_acc.to_bits(), ws.metrics.accuracy.to_bits());
    }

    // The whole-space diff is served over the full feature space (2^9
    // inputs at scope 3): the four label-pair counts must sum to the
    // whole space, and the answer is exact — no approx label.
    let reply = client::query(&addr, "diff Function 3 DT RFT").expect("diff query");
    let fields = ok_fields(&reply);
    let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
    assert_eq!(
        counts.iter().sum::<u128>(),
        1u128 << 9,
        "full-space diff counts must partition the whole feature space: {reply:?}"
    );
    assert_eq!(fields.len(), 6, "exact diff carries no approx label");
    // The diff is a counting answer now and hits both units in the stats.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    check_stats_header(&stats, 3, 0, 2);

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// The satellite conformance pin for the symmetry-breaking diff: a
/// hand-built artifact whose ground truth bakes in `Transpositions`, with
/// both families trained exactly as the batch side — the served diff
/// must reproduce the **unconstrained** batch `DiffMc::compare` counts
/// bit for bit, because the server recounts both models over the full
/// feature space instead of sweeping the constrained circuits.
#[test]
fn symmetry_broken_diff_is_bit_identical_to_unconstrained_diffmc() {
    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let forest = RandomForest::fit(
        &dataset,
        ForestConfig {
            num_trees: 3,
            seed: 11,
            ..ForestConfig::default()
        },
    );
    // The batch side: DiffMc over the full feature space — it never sees
    // the ground truth, so the symmetry setting below cannot leak in.
    let expected = DiffMc::with_engine(&CounterBackend::compiled(), CountingEngine::from_env())
        .compare(&tree, &forest)
        .expect("feature counts match")
        .expect("no budget configured");

    // The served side: the artifact's circuits bake in transposition
    // symmetry breaking, which the covers record.
    let gt = translate_to_cnf(
        &property.spec(),
        TranslateOptions::new(scope).with_symmetry(SymmetryBreaking::Transpositions),
    );
    let phi = gt.cnf_positive();
    let not_phi = gt.cnf_negative();
    let counter = CompiledCounter::new();
    assert!(counter.count(&phi).is_exact());
    assert!(counter.count(&not_phi).is_exact());
    let cover = |family: &str, regions| RegionCover {
        property: property.name().to_string(),
        scope,
        family: family.to_string(),
        phi: cnf_fingerprint(&phi),
        not_phi: cnf_fingerprint(&not_phi),
        symmetry: SymmetryBreaking::Transpositions,
        regions,
    };
    let artifact = CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: counter.snapshot_circuits(),
        covers: vec![
            cover("DT", tree.decision_regions().expect("tree regions")),
            cover("RFT", forest.decision_regions().expect("forest regions")),
        ],
    };
    let store = CircuitStore::from_artifact(artifact).expect("resolvable covers");
    let handle = server::start(store, "127.0.0.1:0", two_workers()).expect("bind");
    let addr = handle.addr().to_string();

    let reply = client::query(&addr, &format!("diff {} {scope} DT RFT", property.name()))
        .expect("diff query");
    let fields = ok_fields(&reply);
    let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
    assert_eq!(
        counts,
        vec![
            expected.counts.tt,
            expected.counts.tf,
            expected.counts.ft,
            expected.counts.ff
        ],
        "count drift in {reply:?}"
    );
    let diff: f64 = fields[4].parse().unwrap();
    let sim: f64 = fields[5].parse().unwrap();
    assert_eq!(diff.to_bits(), expected.counts.diff().to_bits());
    assert_eq!(sim.to_bits(), expected.counts.sim().to_bits());

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// The per-unit fallback ladder on the serving path: an artifact whose
/// circuits were never persisted (every compilation blew its budget
/// during the batch run) yields only degraded units under
/// `--fallback approx`. Accuracy and conditioned counts answer with the
/// `approx <ε> <δ>` label, deterministically; the diff between two
/// degraded units is still exact (the combinatorial full-space plan needs
/// no circuits) and matches the batch `DiffMc` bit for bit; `stats`
/// counts the degraded answers.
#[test]
fn circuitless_artifacts_serve_degraded_labeled_answers_under_approx_fallback() {
    use mcml::fallback::FallbackPolicy;

    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let forest = RandomForest::fit(
        &dataset,
        ForestConfig {
            num_trees: 3,
            seed: 11,
            ..ForestConfig::default()
        },
    );
    let expected_diff =
        DiffMc::with_engine(&CounterBackend::compiled(), CountingEngine::from_env())
            .compare(&tree, &forest)
            .expect("feature counts match")
            .expect("no budget configured");
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let phi = gt.cnf_positive();
    let cover = |family: &str, regions| RegionCover {
        property: property.name().to_string(),
        scope,
        family: family.to_string(),
        phi: cnf_fingerprint(&phi),
        not_phi: cnf_fingerprint(&gt.cnf_negative()),
        symmetry: SymmetryBreaking::None,
        regions,
    };
    // No circuits at all: every cover's fingerprints dangle, exactly as
    // after a batch run whose compilations all exhausted their budgets.
    let artifact = CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: Vec::new(),
        covers: vec![
            cover("DT", tree.decision_regions().expect("tree regions")),
            cover("RFT", forest.decision_regions().expect("forest regions")),
        ],
    };

    // The default policy skips the covers; the approx policy rescues them.
    let strict = CircuitStore::from_artifact(CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: Vec::new(),
        covers: vec![cover("DT", tree.decision_regions().expect("tree regions"))],
    })
    .expect("resolves");
    assert_eq!(strict.len(), 0);
    assert_eq!(strict.skipped_covers(), 1);

    let policy = FallbackPolicy::SymmetryThenApprox {
        epsilon: 0.4,
        delta: 0.2,
    };
    let store = CircuitStore::from_artifact_with(artifact, policy).expect("resolves");
    assert_eq!(store.len(), 2);
    assert_eq!(store.skipped_covers(), 0);
    assert_eq!(store.degraded_units(), 2);
    let handle = server::start(store, "127.0.0.1:0", two_workers()).expect("bind");
    let addr = handle.addr().to_string();

    // Degraded accuracy: an ok reply, labeled, and deterministic (the
    // seeds derive from the (CNF, cube) fingerprints, not from any
    // run-time state).
    let request = format!("accuracy {} {scope} DT", property.name());
    let first = client::query(&addr, &request).expect("degraded accuracy");
    assert!(first.starts_with("ok "), "got {first:?}");
    assert!(
        first.ends_with("approx 0.4 0.2"),
        "degraded replies must be labeled: {first:?}"
    );
    let second = client::query(&addr, &request).expect("degraded accuracy again");
    assert_eq!(first, second, "degraded answers must be deterministic");
    // The four cell estimates are (ε, δ)-approximations of a partition of
    // the 2^9 full space; with the fingerprint-derived seeds they are
    // fixed, and a wildly wrong sum would mean the ladder miscounted.
    let fields = ok_fields(&first);
    let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
    let sum = counts.iter().sum::<u128>();
    assert!(
        (256..=1024).contains(&sum),
        "cell estimates should roughly partition the 512-input space: {first:?}"
    );

    // Degraded conditioned count, also labeled and deterministic.
    let count_req = format!("count {} {scope} phi 1", property.name());
    let count_reply = client::query(&addr, &count_req).expect("degraded count");
    assert!(count_reply.starts_with("ok "), "got {count_reply:?}");
    assert!(
        count_reply.ends_with("approx 0.4 0.2"),
        "got {count_reply:?}"
    );
    assert_eq!(
        count_reply,
        client::query(&addr, &count_req).expect("degraded count again")
    );

    // The diff between two degraded units is exact — the combinatorial
    // full-space plan never touches circuits — and reproduces the batch
    // DiffMc bit for bit, unlabeled.
    let reply = client::query(&addr, &format!("diff {} {scope} DT RFT", property.name()))
        .expect("diff query");
    let fields = ok_fields(&reply);
    assert_eq!(fields.len(), 6, "exact diff carries no approx label");
    let counts: Vec<u128> = fields[..4].iter().map(|f| f.parse().unwrap()).collect();
    assert_eq!(
        counts,
        vec![
            expected_diff.counts.tt,
            expected_diff.counts.tf,
            expected_diff.counts.ft,
            expected_diff.counts.ff
        ],
        "count drift in {reply:?}"
    );

    // stats: 5 ok queries, of which 4 were degraded (2 accuracy + 2
    // count); the exact diff is not degraded. Units: DT, RFT, truth.
    let stats = ok_fields(&client::query(&addr, "stats").expect("stats"));
    check_stats_header(&stats, 5, 4, 3);

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
}

/// The `reload` verb swaps in a validated new store generation atomically:
/// a query in flight across the swap answers from the generation it
/// started on, later queries see the new units, and a reload that fails
/// to load leaves the serving generation untouched.
#[test]
fn reload_swaps_generations_atomically_and_survives_bad_artifacts() {
    use std::time::Duration;

    let dir = temp_dir("reload");
    let path = dir.join(mcml::artifact::artifact_file_name("compiled"));
    mcml::artifact::save_artifact(&path, &reflexive_artifact(&["DT"])).expect("save v1");

    let store = CircuitStore::load_dirs(&[&dir]).expect("load");
    let options = ServeOptions {
        workers: 2,
        reload_dirs: vec![dir.clone()],
        // Slow every counting answer down so a query provably spans the
        // reload below. Verb replies (reload itself) are not delayed.
        answer_latency: Duration::from_millis(500),
        ..ServeOptions::default()
    };
    let handle = server::start(store, "127.0.0.1:0", options).expect("bind");
    let addr = handle.addr().to_string();

    // Generation 0 serves DT only; reloading the unchanged file works.
    assert_eq!(
        client::query(&addr, "reload").expect("reload"),
        "ok reloaded generation 1 units 1"
    );

    // Grow the on-disk artifact, then race a query against the reload:
    // the query parses (and snapshots its generation) before the reload
    // lands, so it must answer from the old store even though the worker
    // finishes well after the swap.
    mcml::artifact::save_artifact(&path, &reflexive_artifact(&["DT", "RFT"])).expect("save v2");
    let (dispatched, wait_dispatched) = std::sync::mpsc::channel();
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut conn = mcml_serve::Connection::connect(&addr).expect("connect");
            // The write returns once the request is on the wire; the
            // handler parses and dispatches it within one read tick.
            dispatched.send(()).expect("signal");
            conn.request("accuracy Reflexive 3 RFT").expect("reply")
        })
    };
    wait_dispatched.recv().expect("in-flight query started");
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        client::query(&addr, "reload").expect("reload"),
        "ok reloaded generation 2 units 2"
    );
    assert_eq!(
        in_flight.join().expect("in-flight query"),
        "err unknown unit Reflexive 3 RFT",
        "a query in flight across a reload must answer from its own generation"
    );

    // After the swap, the new unit serves.
    let reply = client::query(&addr, "accuracy Reflexive 3 RFT").expect("query");
    assert!(reply.starts_with("ok "), "got {reply:?}");

    // A corrupt artifact fails the reload and leaves the store serving.
    std::fs::write(&path, b"not an artifact").expect("corrupt");
    let reply = client::query(&addr, "reload").expect("reload");
    assert!(
        reply.starts_with("err reload failed:"),
        "expected a typed reload failure, got {reply:?}"
    );
    let reply = client::query(&addr, "accuracy Reflexive 3 RFT").expect("query");
    assert!(
        reply.starts_with("ok "),
        "a failed reload must not disturb the serving generation, got {reply:?}"
    );

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The mtime poller notices an artifact overwrite and hot-reloads without
/// any client asking.
#[test]
fn mtime_polling_hot_reloads_on_artifact_change() {
    use std::time::{Duration, Instant};

    let dir = temp_dir("poll");
    let path = dir.join(mcml::artifact::artifact_file_name("compiled"));
    mcml::artifact::save_artifact(&path, &reflexive_artifact(&["DT"])).expect("save v1");

    let store = CircuitStore::load_dirs(&[&dir]).expect("load");
    let options = ServeOptions {
        workers: 2,
        reload_dirs: vec![dir.clone()],
        poll_interval: Some(Duration::from_millis(100)),
        ..ServeOptions::default()
    };
    let handle = server::start(store, "127.0.0.1:0", options).expect("bind");
    let addr = handle.addr().to_string();

    let probe = "accuracy Reflexive 3 RFT";
    assert!(client::query(&addr, probe)
        .expect("query")
        .starts_with("err unknown unit"));

    mcml::artifact::save_artifact(&path, &reflexive_artifact(&["DT", "RFT"])).expect("save v2");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client::query(&addr, probe).expect("query");
        if reply.starts_with("ok ") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "poller never picked up the artifact change; last reply {reply:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// `--artifact-dir` is repeatable: several directories merge into one
/// store, duplicate unit keys are rejected loudly, and the merged store
/// serves every directory's units.
#[test]
fn multi_directory_stores_merge_and_reject_duplicates() {
    let dir_a = temp_dir("multi-a");
    let dir_b = temp_dir("multi-b");
    let file = mcml::artifact::artifact_file_name("compiled");
    mcml::artifact::save_artifact(&dir_a.join(&file), &reflexive_artifact(&["DT"]))
        .expect("save A");
    mcml::artifact::save_artifact(&dir_b.join(&file), &reflexive_artifact(&["RFT"]))
        .expect("save B");

    // The same directory twice is a duplicate-unit error, not a silent
    // overwrite; no directories at all is an error too.
    let err = match CircuitStore::load_dirs(&[&dir_a, &dir_a]) {
        Err(err) => err,
        Ok(_) => panic!("duplicate units must be rejected"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("duplicate unit Reflexive 3 DT"),
        "got {err}"
    );
    assert!(CircuitStore::load_dirs(&Vec::<std::path::PathBuf>::new()).is_err());

    let store = CircuitStore::load_dirs(&[&dir_a, &dir_b]).expect("merge");
    assert_eq!(store.len(), 2);
    let handle = server::start(store, "127.0.0.1:0", two_workers()).expect("bind");
    let addr = handle.addr().to_string();
    for family in ["DT", "RFT"] {
        let reply = client::query(&addr, &format!("accuracy Reflexive 3 {family}")).expect("query");
        assert!(
            reply.starts_with("ok "),
            "unit {family} not served: {reply:?}"
        );
    }
    assert_eq!(
        client::query(&addr, "shutdown").expect("shutdown"),
        "ok bye"
    );
    handle.join();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
