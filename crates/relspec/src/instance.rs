//! Concrete relational instances: a binary relation over `n` atoms stored as
//! an adjacency matrix.
//!
//! The MCML feature encoding is the row-major linearization of this matrix:
//! the propositional variable (and ML feature) with index `i * n + j` is true
//! iff the pair `(i, j)` is in the relation. Every component of the
//! reproduction (translation, datasets, decision-tree CNF, counters) uses
//! this same indexing.

use std::fmt;

/// A binary relation over atoms `0..n`, stored as a dense boolean matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelInstance {
    n: usize,
    bits: Vec<bool>,
}

impl RelInstance {
    /// The empty relation over `n` atoms.
    pub fn empty(n: usize) -> Self {
        RelInstance {
            n,
            bits: vec![false; n * n],
        }
    }

    /// Builds an instance from a list of pairs.
    ///
    /// # Panics
    ///
    /// Panics if any atom index is `>= n`.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        let mut inst = RelInstance::empty(n);
        for &(i, j) in pairs {
            inst.set(i, j, true);
        }
        inst
    }

    /// Builds an instance from a row-major bit vector of length `n * n`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n * n`.
    pub fn from_bits(n: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), n * n, "expected {} bits", n * n);
        RelInstance { n, bits }
    }

    /// Builds an instance from a row-major `u8` feature vector (0 = absent).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n * n`.
    pub fn from_features(n: usize, features: &[u8]) -> Self {
        assert_eq!(features.len(), n * n, "expected {} features", n * n);
        RelInstance {
            n,
            bits: features.iter().map(|&f| f != 0).collect(),
        }
    }

    /// Number of atoms in the universe.
    pub fn num_atoms(&self) -> usize {
        self.n
    }

    /// Number of propositional variables / ML features (`n * n`).
    pub fn num_bits(&self) -> usize {
        self.n * self.n
    }

    /// The propositional variable index of the pair `(i, j)`.
    pub fn var_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n && j < self.n);
        i * self.n + j
    }

    /// Whether the pair `(i, j)` is in the relation.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "atom index out of range");
        self.bits[i * self.n + j]
    }

    /// Adds or removes the pair `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize, present: bool) {
        assert!(i < self.n && j < self.n, "atom index out of range");
        self.bits[i * self.n + j] = present;
    }

    /// The underlying row-major bit vector.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The row-major `u8` feature vector used by the ML models.
    pub fn to_features(&self) -> Vec<u8> {
        self.bits.iter().map(|&b| u8::from(b)).collect()
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| !b)
    }

    /// All pairs in the relation, in row-major order.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if self.bits[i * self.n + j] {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// The instance obtained by relabeling atoms with the permutation `perm`
    /// (atom `a` becomes `perm[a]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != n` or `perm` is not a permutation of `0..n`.
    pub fn permuted(&self, perm: &[usize]) -> RelInstance {
        assert_eq!(perm.len(), self.n);
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = RelInstance::empty(self.n);
        for (i, j) in self.pairs() {
            out.set(perm[i], perm[j], true);
        }
        out
    }
}

impl fmt::Display for RelInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{}", u8::from(self.contains(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut r = RelInstance::empty(3);
        assert!(r.is_empty());
        r.set(0, 2, true);
        assert!(r.contains(0, 2));
        assert!(!r.contains(2, 0));
        assert_eq!(r.len(), 1);
        r.set(0, 2, false);
        assert!(r.is_empty());
    }

    #[test]
    fn feature_roundtrip() {
        let r = RelInstance::from_pairs(3, &[(0, 1), (2, 2)]);
        let f = r.to_features();
        assert_eq!(f.len(), 9);
        assert_eq!(f[r.var_index(0, 1)], 1);
        assert_eq!(f[r.var_index(2, 2)], 1);
        let back = RelInstance::from_features(3, &f);
        assert_eq!(back, r);
    }

    #[test]
    fn var_index_is_row_major() {
        let r = RelInstance::empty(4);
        assert_eq!(r.var_index(0, 0), 0);
        assert_eq!(r.var_index(1, 0), 4);
        assert_eq!(r.var_index(2, 3), 11);
    }

    #[test]
    fn permuted_relabels_pairs() {
        let r = RelInstance::from_pairs(3, &[(0, 1)]);
        let p = r.permuted(&[2, 0, 1]);
        assert!(p.contains(2, 0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_non_permutation() {
        let r = RelInstance::empty(3);
        r.permuted(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        let r = RelInstance::empty(2);
        r.contains(2, 0);
    }

    #[test]
    fn pairs_lists_row_major() {
        let r = RelInstance::from_pairs(3, &[(2, 0), (0, 1)]);
        assert_eq!(r.pairs(), vec![(0, 1), (2, 0)]);
    }
}
