//! Partial symmetry breaking via lex-leader predicates.
//!
//! Two instances that differ only by a relabeling of atoms are isomorphic.
//! The Alloy analyzer adds *partial* symmetry-breaking predicates during
//! translation: they remove many (but, in general, not all) isomorphic
//! solutions while keeping at least one representative per isomorphism
//! class. We reproduce the same mechanism with lex-leader constraints: for a
//! chosen set of generator permutations π, the adjacency matrix (read as a
//! row-major bit string) must be lexicographically ≤ its image under π.
//!
//! [`SymmetryBreaking`] selects how many generators are used, from none to
//! the full symmetric group (feasible only at small scopes). The default in
//! the MCML data pipeline is [`SymmetryBreaking::Transpositions`], which like
//! Alloy's default breaks most — but not all — symmetries.

use crate::instance::RelInstance;
use satkit::expr::BoolExpr;
use std::rc::Rc;

/// Selects the set of generator permutations used for symmetry breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymmetryBreaking {
    /// No symmetry breaking: every solution is kept.
    None,
    /// Adjacent transpositions `(i, i+1)` only — the weakest non-trivial
    /// setting (n − 1 generators).
    Adjacent,
    /// All transpositions `(i, j)` — the default, analogous in strength to
    /// Alloy's default partial symmetry breaking.
    #[default]
    Transpositions,
    /// Every permutation of the atoms — full symmetry breaking; only
    /// practical for small scopes (the number of generators is `n!`).
    Full,
}

impl SymmetryBreaking {
    /// Whether any symmetry-breaking constraint is generated.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, SymmetryBreaking::None)
    }

    /// The setting's canonical lower-case name, stable across releases —
    /// persisted stores (e.g. circuit artifacts) and wire replies spell
    /// it, so [`from_name`](Self::from_name) must keep parsing it.
    pub fn name(&self) -> &'static str {
        match self {
            SymmetryBreaking::None => "none",
            SymmetryBreaking::Adjacent => "adjacent",
            SymmetryBreaking::Transpositions => "transpositions",
            SymmetryBreaking::Full => "full",
        }
    }

    /// Parses a [`name`](Self::name) back into the setting
    /// (case-insensitive); `None` for unknown spellings.
    pub fn from_name(name: &str) -> Option<SymmetryBreaking> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(SymmetryBreaking::None),
            "adjacent" => Some(SymmetryBreaking::Adjacent),
            "transpositions" => Some(SymmetryBreaking::Transpositions),
            "full" => Some(SymmetryBreaking::Full),
            _ => None,
        }
    }

    /// Every setting, in tag order (the order persisted stores number
    /// them in).
    pub fn all() -> &'static [SymmetryBreaking] {
        &[
            SymmetryBreaking::None,
            SymmetryBreaking::Adjacent,
            SymmetryBreaking::Transpositions,
            SymmetryBreaking::Full,
        ]
    }

    /// The generator permutations for a universe of `n` atoms. Each
    /// permutation maps atom `a` to `perm[a]`; the identity is never
    /// included.
    pub fn generators(&self, n: usize) -> Vec<Vec<usize>> {
        match self {
            SymmetryBreaking::None => Vec::new(),
            SymmetryBreaking::Adjacent => (0..n.saturating_sub(1))
                .map(|i| transposition(n, i, i + 1))
                .collect(),
            SymmetryBreaking::Transpositions => {
                let mut out = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        out.push(transposition(n, i, j));
                    }
                }
                out
            }
            SymmetryBreaking::Full => {
                let mut out = Vec::new();
                let mut perm: Vec<usize> = (0..n).collect();
                permutations(&mut perm, 0, &mut out);
                out.retain(|p| p.iter().enumerate().any(|(i, &x)| i != x));
                out
            }
        }
    }

    /// Whether `inst` satisfies every lex-leader constraint of this setting,
    /// i.e. whether the instance would be kept by the symmetry-breaking
    /// predicates.
    pub fn keeps(&self, inst: &RelInstance) -> bool {
        let n = inst.num_atoms();
        self.generators(n)
            .iter()
            .all(|perm| lex_le_concrete(inst, perm))
    }
}

fn transposition(n: usize, i: usize, j: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.swap(i, j);
    p
}

fn permutations(perm: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == perm.len() {
        out.push(perm.clone());
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permutations(perm, k + 1, out);
        perm.swap(k, i);
    }
}

/// Concrete check of `vec(m) <= vec(m ∘ π)` in lexicographic order, where
/// `(m ∘ π)(i, j) = m(π(i), π(j))`.
pub fn lex_le_concrete(inst: &RelInstance, perm: &[usize]) -> bool {
    let n = inst.num_atoms();
    for i in 0..n {
        for j in 0..n {
            let a = inst.contains(i, j);
            let b = inst.contains(perm[i], perm[j]);
            if a != b {
                return !a; // a = 0, b = 1 means strictly smaller at this position
            }
        }
    }
    true
}

/// Builds the propositional lex-leader constraint `vec(m) <= vec(m ∘ π)` over
/// the primary variables `i * n + j`.
pub fn lex_leader_expr(n: usize, perm: &[usize]) -> Rc<BoolExpr> {
    assert_eq!(perm.len(), n, "permutation length must equal the scope");
    let var = |i: usize, j: usize| BoolExpr::var((i * n + j) as u32);
    // Build from the last position backwards:
    // le_k = (!a_k & b_k) | ((a_k <=> b_k) & le_{k+1}), le_len = true.
    let mut le = BoolExpr::tru();
    for i in (0..n).rev() {
        for j in (0..n).rev() {
            let a = var(i, j);
            let b = var(perm[i], perm[j]);
            if Rc::ptr_eq(&a, &b) || (perm[i] == i && perm[j] == j) {
                // Position maps to itself: a == b always, keep le unchanged.
                continue;
            }
            let strictly_less = BoolExpr::and2(BoolExpr::not(a.clone()), b.clone());
            let equal_here = BoolExpr::iff(a, b);
            le = BoolExpr::or2(strictly_less, BoolExpr::and2(equal_here, le));
        }
    }
    le
}

/// Builds the conjunction of lex-leader constraints for all generators of the
/// given symmetry-breaking setting.
pub fn symmetry_breaking_expr(n: usize, sb: SymmetryBreaking) -> Rc<BoolExpr> {
    let constraints: Vec<Rc<BoolExpr>> = sb
        .generators(n)
        .iter()
        .map(|perm| lex_leader_expr(n, perm))
        .collect();
    BoolExpr::and(constraints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &sb in SymmetryBreaking::all() {
            assert_eq!(SymmetryBreaking::from_name(sb.name()), Some(sb));
        }
        assert_eq!(
            SymmetryBreaking::from_name("Transpositions"),
            Some(SymmetryBreaking::Transpositions)
        );
        assert_eq!(SymmetryBreaking::from_name("lexleader"), None);
        // The spellings are persisted in circuit artifacts — pin them.
        assert_eq!(SymmetryBreaking::Transpositions.name(), "transpositions");
        assert_eq!(SymmetryBreaking::None.name(), "none");
    }

    #[test]
    fn generator_counts() {
        assert_eq!(SymmetryBreaking::None.generators(4).len(), 0);
        assert_eq!(SymmetryBreaking::Adjacent.generators(4).len(), 3);
        assert_eq!(SymmetryBreaking::Transpositions.generators(4).len(), 6);
        assert_eq!(SymmetryBreaking::Full.generators(4).len(), 23); // 4! - identity
    }

    #[test]
    fn lex_le_concrete_matches_expr() {
        // Cross-check the concrete lex check against the propositional
        // encoding on every 3-atom instance and every transposition.
        let n = 3;
        let gens = SymmetryBreaking::Transpositions.generators(n);
        for bits in 0u32..(1 << (n * n)) {
            let vec_bits: Vec<bool> = (0..n * n).map(|k| bits >> k & 1 == 1).collect();
            let inst = RelInstance::from_bits(n, vec_bits.clone());
            for perm in &gens {
                let expr = lex_leader_expr(n, perm);
                assert_eq!(
                    expr.eval(&vec_bits),
                    lex_le_concrete(&inst, perm),
                    "instance {bits:b}, perm {perm:?}"
                );
            }
        }
    }

    #[test]
    fn identity_like_positions_are_skipped() {
        // A transposition of atoms 0 and 1 in a 2-atom universe fixes no
        // off-diagonal position, but the constraint must still be a valid
        // expression evaluable over 4 variables.
        let expr = lex_leader_expr(2, &[1, 0]);
        assert!(expr.max_var().unwrap_or(0) < 4);
    }

    #[test]
    fn keeps_selects_canonical_representative() {
        // For the single-edge instances on 2 atoms, exactly one of (0,1) and
        // (1,0) is kept by full symmetry breaking.
        let a = RelInstance::from_pairs(2, &[(0, 1)]);
        let b = RelInstance::from_pairs(2, &[(1, 0)]);
        let sb = SymmetryBreaking::Full;
        assert_ne!(sb.keeps(&a), sb.keeps(&b));
        // The empty and complete relations are symmetric, so always kept.
        assert!(sb.keeps(&RelInstance::empty(2)));
        assert!(sb.keeps(&RelInstance::from_pairs(
            2,
            &[(0, 0), (0, 1), (1, 0), (1, 1)]
        )));
    }

    #[test]
    fn none_keeps_everything() {
        for bits in 0u32..16 {
            let inst = RelInstance::from_bits(2, (0..4).map(|k| bits >> k & 1 == 1).collect());
            assert!(SymmetryBreaking::None.keeps(&inst));
        }
    }

    #[test]
    fn stronger_settings_keep_fewer_instances() {
        let n = 3;
        let count = |sb: SymmetryBreaking| {
            (0u32..(1 << (n * n)))
                .filter(|&bits| {
                    let inst =
                        RelInstance::from_bits(n, (0..n * n).map(|k| bits >> k & 1 == 1).collect());
                    sb.keeps(&inst)
                })
                .count()
        };
        let none = count(SymmetryBreaking::None);
        let adj = count(SymmetryBreaking::Adjacent);
        let tra = count(SymmetryBreaking::Transpositions);
        let full = count(SymmetryBreaking::Full);
        assert_eq!(none, 512);
        assert!(adj <= none);
        assert!(tra <= adj);
        assert!(full <= tra);
        // Full symmetry breaking keeps exactly one representative per orbit,
        // so the kept count equals the number of isomorphism classes of
        // directed graphs with loops on 3 nodes, which is 104.
        assert_eq!(full, 104);
    }
}
