//! A parser for an Alloy-like concrete syntax.
//!
//! The MCML paper writes its subject properties in Alloy (Figure 1). This
//! module accepts the corresponding fragment of Alloy's surface syntax so
//! specifications can be written as text and parsed into the [`crate::ast`]
//! representation:
//!
//! ```text
//! pred Reflexive { all s: S | s->s in r }
//! pred Symmetric { all s, t: S | s->t in r implies t->s in r }
//! pred Equivalence { Reflexive and Symmetric and Transitive }
//! ```
//!
//! Supported constructs: `pred` definitions with predicate references,
//! `all` / `some` quantifiers over `S` (with multiple binders), the boolean
//! connectives `not`/`!`, `and`, `or`, `implies`, `iff`, the multiplicity
//! tests `some` / `no` / `lone` / `one`, the comparisons `in`, `=`, `!=`,
//! and the relational operators `+`, `-`, `&`, `.`, `->`, `~`, `^`, `*`,
//! with the constants `r`, `iden`, `S` (or `univ`) and `none`.
//!
//! Operator precedence follows Alloy: `iff` < `implies` < `or` < `and` <
//! unary negation < comparisons; within expressions `+`/`-` < `&` < `->` <
//! `.` < unary `~`/`^`/`*`.

use crate::ast::{Expr, Formula, QuantVar};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Error produced when parsing a specification fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the token at which the error occurred.
    pub position: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A parsed specification: a set of named predicates, each a closed formula
/// (predicate references are inlined).
#[derive(Debug, Clone, Default)]
pub struct Spec {
    predicates: Vec<(String, Rc<Formula>)>,
}

impl Spec {
    /// The predicates in definition order.
    pub fn predicates(&self) -> &[(String, Rc<Formula>)] {
        &self.predicates
    }

    /// Looks up a predicate by name (case-sensitive).
    pub fn get(&self, name: &str) -> Option<&Rc<Formula>> {
        self.predicates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the spec defines no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }
}

/// Parses a full specification consisting of `pred Name { body }` blocks.
///
/// Later predicates may reference earlier ones by name; references are
/// inlined into the returned formulas.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors, references to undefined
/// predicates, or duplicate predicate names.
pub fn parse_spec(source: &str) -> Result<Spec, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let mut spec = Spec::default();
    let mut defined: HashMap<String, Rc<Formula>> = HashMap::new();
    while !parser.at_end() {
        parser.expect_keyword("pred")?;
        let name = parser.expect_ident()?;
        if defined.contains_key(&name) {
            return Err(parser.error(format!("predicate {name:?} defined twice")));
        }
        parser.expect_symbol("{")?;
        let body = parser.parse_formula(&defined, &mut Vec::new())?;
        parser.expect_symbol("}")?;
        defined.insert(name.clone(), Rc::clone(&body));
        spec.predicates.push((name, body));
    }
    if spec.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "specification defines no predicates".to_string(),
        });
    }
    Ok(spec)
}

/// Parses a single closed formula (no `pred` wrapper, no references).
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or trailing input.
pub fn parse_formula(source: &str) -> Result<Rc<Formula>, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let formula = parser.parse_formula(&HashMap::new(), &mut Vec::new())?;
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input".to_string()));
    }
    Ok(formula)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Symbol(String),
}

#[derive(Debug, Clone)]
struct Positioned {
    token: Token,
    position: usize,
}

fn tokenize(source: &str) -> Result<Vec<Positioned>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments, Alloy style.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] as char == '/' {
            while i < bytes.len() && bytes[i] as char != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            tokens.push(Positioned {
                token: Token::Ident(source[start..i].to_string()),
                position: start,
            });
            continue;
        }
        // Multi-character symbols first.
        let two = if i + 1 < bytes.len() {
            &source[i..i + 2]
        } else {
            ""
        };
        if two == "->" || two == "!=" || two == "=>" || two == "<=" {
            tokens.push(Positioned {
                token: Token::Symbol(two.to_string()),
                position: i,
            });
            i += 2;
            continue;
        }
        if "(){}|:,.~^*+-&=!".contains(c) {
            tokens.push(Positioned {
                token: Token::Symbol(c.to_string()),
                position: i,
            });
            i += 1;
            continue;
        }
        return Err(ParseError {
            position: i,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Positioned>,
    index: usize,
}

type Scope = Vec<(String, QuantVar)>;

impl Parser {
    fn new(tokens: Vec<Positioned>) -> Self {
        Parser { tokens, index: 0 }
    }

    fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    fn position(&self) -> usize {
        self.tokens.get(self.index).map_or_else(
            || self.tokens.last().map_or(0, |t| t.position),
            |t| t.position,
        )
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            position: self.position(),
            message,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|t| &t.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.index).map(|t| t.token.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.index += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == sym) {
            self.index += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw:?}")))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected {sym:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.error("expected an identifier".to_string())),
        }
    }

    /// formula := iff-level
    fn parse_formula(
        &mut self,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        self.parse_iff(preds, scope)
    }

    fn parse_iff(
        &mut self,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        let mut left = self.parse_implies(preds, scope)?;
        while self.eat_keyword("iff") || self.eat_symbol("<=") {
            let right = self.parse_implies(preds, scope)?;
            left = Formula::iff(left, right);
        }
        Ok(left)
    }

    fn parse_implies(
        &mut self,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        let left = self.parse_or(preds, scope)?;
        if self.eat_keyword("implies") || self.eat_symbol("=>") {
            // Right-associative, as in Alloy.
            let right = self.parse_implies(preds, scope)?;
            Ok(Formula::implies(left, right))
        } else {
            Ok(left)
        }
    }

    fn parse_or(
        &mut self,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        let mut parts = vec![self.parse_and(preds, scope)?];
        while self.eat_keyword("or") {
            parts.push(self.parse_and(preds, scope)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("length checked")
        } else {
            Formula::or(parts)
        })
    }

    fn parse_and(
        &mut self,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        let mut parts = vec![self.parse_unary_formula(preds, scope)?];
        while self.eat_keyword("and") {
            parts.push(self.parse_unary_formula(preds, scope)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("length checked")
        } else {
            Formula::and(parts)
        })
    }

    fn parse_unary_formula(
        &mut self,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        // Quantifiers: `all x, y: S | body`. A leading `some` is a quantifier
        // only when followed by `ident (, ident)* :`, otherwise it is the
        // multiplicity test; disambiguate by lookahead.
        if self.eat_keyword("all") {
            return self.parse_quantifier(true, preds, scope);
        }
        if matches!(self.peek(), Some(Token::Ident(s)) if s == "some") && self.is_quantifier_ahead()
        {
            self.index += 1;
            return self.parse_quantifier(false, preds, scope);
        }
        if self.eat_keyword("not") || self.eat_symbol("!") {
            let inner = self.parse_unary_formula(preds, scope)?;
            return Ok(Formula::not(inner));
        }
        for (kw, make) in [
            ("some", Formula::some as fn(Rc<Expr>) -> Rc<Formula>),
            ("no", Formula::no as fn(Rc<Expr>) -> Rc<Formula>),
            ("lone", Formula::lone as fn(Rc<Expr>) -> Rc<Formula>),
            ("one", Formula::one as fn(Rc<Expr>) -> Rc<Formula>),
        ] {
            if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
                self.index += 1;
                let expr = self.parse_expr(scope)?;
                return Ok(make(expr));
            }
        }
        // Predicate reference or constant.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            if name == "true" {
                self.index += 1;
                return Ok(Formula::tru());
            }
            if name == "false" {
                self.index += 1;
                return Ok(Formula::fls());
            }
            if preds.contains_key(&name) && !self.is_expression_continuation_ahead() {
                self.index += 1;
                return Ok(Rc::clone(&preds[&name]));
            }
        }
        // Parenthesized formula (try) or a comparison between expressions.
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == "(") {
            let saved = self.index;
            self.index += 1;
            if let Ok(inner) = self.parse_formula(preds, scope) {
                if self.eat_symbol(")") && !self.is_comparison_ahead() {
                    return Ok(inner);
                }
            }
            self.index = saved;
        }
        self.parse_comparison(preds, scope)
    }

    /// After a leading `some`, decides whether a quantifier binder list
    /// (`ident (, ident)* :`) follows.
    fn is_quantifier_ahead(&self) -> bool {
        let mut i = self.index + 1;
        loop {
            match self.tokens.get(i).map(|t| &t.token) {
                Some(Token::Ident(_)) => {}
                _ => return false,
            }
            i += 1;
            match self.tokens.get(i).map(|t| &t.token) {
                Some(Token::Symbol(s)) if s == ":" => return true,
                Some(Token::Symbol(s)) if s == "," => i += 1,
                _ => return false,
            }
        }
    }

    /// After a predicate-name identifier, decides whether it is actually the
    /// start of a relational expression (e.g. a quantified variable used in a
    /// comparison) rather than a bare predicate reference.
    fn is_expression_continuation_ahead(&self) -> bool {
        matches!(
            self.tokens.get(self.index + 1).map(|t| &t.token),
            Some(Token::Symbol(s))
                if ["->", ".", "=", "!=", "+", "-", "&", "~", "^", "*"].contains(&s.as_str())
        ) || matches!(
            self.tokens.get(self.index + 1).map(|t| &t.token),
            Some(Token::Ident(k)) if k == "in"
        )
    }

    fn is_comparison_ahead(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Symbol(s)) if ["=", "!=", "->", ".", "+", "-", "&"].contains(&s.as_str())
        ) || matches!(self.peek(), Some(Token::Ident(k)) if k == "in")
    }

    fn parse_quantifier(
        &mut self,
        universal: bool,
        preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        let mut names = vec![self.expect_ident()?];
        while self.eat_symbol(",") {
            names.push(self.expect_ident()?);
        }
        self.expect_symbol(":")?;
        let sort = self.expect_ident()?;
        if sort != "S" && sort != "univ" {
            return Err(self.error(format!("quantification over unknown sort {sort:?}")));
        }
        self.expect_symbol("|")?;
        let base = scope.len();
        for (offset, name) in names.iter().enumerate() {
            scope.push((name.clone(), QuantVar(base + offset)));
        }
        let body = self.parse_formula(preds, scope)?;
        let vars: Vec<QuantVar> = (0..names.len()).map(|k| QuantVar(base + k)).collect();
        scope.truncate(base);
        let mut out = body;
        for &v in vars.iter().rev() {
            out = if universal {
                Formula::all(v, out)
            } else {
                Formula::exists(v, out)
            };
        }
        Ok(out)
    }

    fn parse_comparison(
        &mut self,
        _preds: &HashMap<String, Rc<Formula>>,
        scope: &mut Scope,
    ) -> Result<Rc<Formula>, ParseError> {
        let left = self.parse_expr(scope)?;
        if self.eat_keyword("in") {
            let right = self.parse_expr(scope)?;
            return Ok(Formula::subset(left, right));
        }
        if self.eat_symbol("=") {
            let right = self.parse_expr(scope)?;
            return Ok(Formula::equal(left, right));
        }
        if self.eat_symbol("!=") {
            let right = self.parse_expr(scope)?;
            return Ok(Formula::not(Formula::equal(left, right)));
        }
        Err(self.error("expected 'in', '=' or '!=' after expression".to_string()))
    }

    /// expr := term (('+' | '-') term)*
    fn parse_expr(&mut self, scope: &mut Scope) -> Result<Rc<Expr>, ParseError> {
        let mut left = self.parse_intersect(scope)?;
        loop {
            if self.eat_symbol("+") {
                let right = self.parse_intersect(scope)?;
                left = Expr::union(left, right);
            } else if self.eat_symbol("-") {
                let right = self.parse_intersect(scope)?;
                left = Expr::diff(left, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_intersect(&mut self, scope: &mut Scope) -> Result<Rc<Expr>, ParseError> {
        let mut left = self.parse_product(scope)?;
        while self.eat_symbol("&") {
            let right = self.parse_product(scope)?;
            left = Expr::intersect(left, right);
        }
        Ok(left)
    }

    fn parse_product(&mut self, scope: &mut Scope) -> Result<Rc<Expr>, ParseError> {
        let mut left = self.parse_join(scope)?;
        while self.eat_symbol("->") {
            let right = self.parse_join(scope)?;
            left = Expr::product(left, right);
        }
        Ok(left)
    }

    fn parse_join(&mut self, scope: &mut Scope) -> Result<Rc<Expr>, ParseError> {
        let mut left = self.parse_unary_expr(scope)?;
        while self.eat_symbol(".") {
            let right = self.parse_unary_expr(scope)?;
            left = Expr::join(left, right);
        }
        Ok(left)
    }

    fn parse_unary_expr(&mut self, scope: &mut Scope) -> Result<Rc<Expr>, ParseError> {
        if self.eat_symbol("~") {
            return Ok(Expr::transpose(self.parse_unary_expr(scope)?));
        }
        if self.eat_symbol("^") {
            return Ok(Expr::closure(self.parse_unary_expr(scope)?));
        }
        if self.eat_symbol("*") {
            return Ok(Expr::refl_closure(self.parse_unary_expr(scope)?));
        }
        self.parse_atom_expr(scope)
    }

    fn parse_atom_expr(&mut self, scope: &mut Scope) -> Result<Rc<Expr>, ParseError> {
        if self.eat_symbol("(") {
            let inner = self.parse_expr(scope)?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        match self.bump() {
            Some(Token::Ident(name)) => match name.as_str() {
                "r" => Ok(Expr::rel()),
                "iden" => Ok(Expr::iden()),
                "S" | "univ" => Ok(Expr::univ()),
                "none" => Ok(Expr::empty(1)),
                _ => {
                    if let Some((_, v)) = scope.iter().rev().find(|(n, _)| *n == name) {
                        Ok(Expr::var(*v))
                    } else {
                        Err(self.error(format!("unknown identifier {name:?} in expression")))
                    }
                }
            },
            _ => Err(self.error("expected a relational expression".to_string())),
        }
    }
}

/// The paper's Figure 1 specification, as parseable source text.
pub const FIGURE1_SPEC: &str = "
pred Reflexive { all s: S | s->s in r }
pred Symmetric { all s, t: S | s->t in r implies t->s in r }
pred Transitive { all s, t, u: S | s->t in r and t->u in r implies s->u in r }
pred Equivalence { Reflexive and Symmetric and Transitive }
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_formula;
    use crate::instance::RelInstance;
    use crate::properties::Property;

    fn all_instances(n: usize) -> impl Iterator<Item = RelInstance> {
        (0u64..(1 << (n * n))).map(move |bits| {
            RelInstance::from_bits(n, (0..n * n).map(|k| bits >> k & 1 == 1).collect())
        })
    }

    /// Exhaustively checks two formulas for semantic equality at scope 3.
    fn semantically_equal(a: &Formula, b: &Formula) -> bool {
        all_instances(3).all(|inst| eval_formula(a, &inst) == eval_formula(b, &inst))
    }

    #[test]
    fn parses_figure1_and_matches_builtin_properties() {
        let spec = parse_spec(FIGURE1_SPEC).unwrap();
        assert_eq!(spec.len(), 4);
        assert!(semantically_equal(
            spec.get("Reflexive").unwrap(),
            &Property::Reflexive.spec()
        ));
        assert!(semantically_equal(
            spec.get("Transitive").unwrap(),
            &Property::Transitive.spec()
        ));
        assert!(semantically_equal(
            spec.get("Equivalence").unwrap(),
            &Property::Equivalence.spec()
        ));
    }

    #[test]
    fn parses_every_study_property_written_in_alloy_syntax() {
        let sources: &[(Property, &str)] = &[
            (Property::Reflexive, "all s: S | s->s in r"),
            (Property::Irreflexive, "all s: S | !(s->s in r)"),
            (
                Property::Antisymmetric,
                "all s, t: S | (s->t in r and t->s in r) implies s = t",
            ),
            (
                Property::Transitive,
                "all s, t, u: S | (s->t in r and t->u in r) implies s->u in r",
            ),
            (Property::Connex, "all s, t: S | s->t in r or t->s in r"),
            (Property::Function, "all s: S | one s.r"),
            (Property::Functional, "all s: S | lone s.r"),
            (Property::Injective, "all s: S | one r.s"),
            (
                Property::Surjective,
                "(all s: S | one s.r) and (all t: S | some r.t)",
            ),
            (
                Property::Bijective,
                "(all s: S | one s.r) and (all t: S | one r.t)",
            ),
            (
                Property::PartialOrder,
                "(all s, t: S | (s->t in r and t->s in r) implies s = t) and \
                 (all s, t, u: S | (s->t in r and t->u in r) implies s->u in r)",
            ),
            (
                Property::PreOrder,
                "(all s: S | s->s in r) and \
                 (all s, t, u: S | (s->t in r and t->u in r) implies s->u in r)",
            ),
            (
                Property::StrictOrder,
                "(all s: S | !(s->s in r)) and \
                 (all s, t, u: S | (s->t in r and t->u in r) implies s->u in r)",
            ),
            (
                Property::NonStrictOrder,
                "(all s: S | s->s in r) and \
                 (all s, t: S | (s->t in r and t->s in r) implies s = t) and \
                 (all s, t, u: S | (s->t in r and t->u in r) implies s->u in r)",
            ),
            (
                Property::TotalOrder,
                "(all s: S | s->s in r) and \
                 (all s, t: S | (s->t in r and t->s in r) implies s = t) and \
                 (all s, t, u: S | (s->t in r and t->u in r) implies s->u in r) and \
                 (all s, t: S | s->t in r or t->s in r)",
            ),
            (
                Property::Equivalence,
                "(all s: S | s->s in r) and \
                 (all s, t: S | s->t in r implies t->s in r) and \
                 (all s, t, u: S | (s->t in r and t->u in r) implies s->u in r)",
            ),
        ];
        for (property, source) in sources {
            let parsed =
                parse_formula(source).unwrap_or_else(|e| panic!("failed to parse {property}: {e}"));
            assert!(
                semantically_equal(&parsed, &property.spec()),
                "parsed formula for {property} differs from the built-in spec"
            );
        }
    }

    #[test]
    fn relational_operators_parse_and_evaluate() {
        // Transitivity via closure: ^r in r.
        let via_closure = parse_formula("^r in r").unwrap();
        assert!(semantically_equal(
            &via_closure,
            &Property::Transitive.spec()
        ));
        // Symmetry via transpose: ~r in r.
        let sym = parse_formula("~r in r").unwrap();
        let sym_builtin = parse_formula("all s, t: S | s->t in r implies t->s in r").unwrap();
        assert!(semantically_equal(&sym, &sym_builtin));
        // Irreflexivity via intersection with iden.
        let irr = parse_formula("no (r & iden)").unwrap();
        assert!(semantically_equal(&irr, &Property::Irreflexive.spec()));
        // Reflexive transitive closure and difference/union parse too.
        let trivially_true = parse_formula("r in *r + none->none").unwrap();
        assert!(all_instances(3).all(|i| eval_formula(&trivially_true, &i)));
    }

    #[test]
    fn existential_quantifier_and_not_equal() {
        let f = parse_formula("some s, t: S | s != t and s->t in r").unwrap();
        // Holds exactly when some off-diagonal edge exists.
        for inst in all_instances(3) {
            let expected = inst.pairs().iter().any(|&(i, j)| i != j);
            assert_eq!(eval_formula(&f, &inst), expected);
        }
    }

    #[test]
    fn predicate_references_are_inlined_in_order() {
        let spec = parse_spec(
            "pred A { all s: S | s->s in r }\n\
             pred B { A and (all s, t: S | s->t in r implies t->s in r) }",
        )
        .unwrap();
        assert!(spec.get("B").is_some());
        assert!(spec.get("C").is_none());
    }

    #[test]
    fn error_reporting() {
        assert!(parse_spec("").is_err());
        assert!(parse_formula("all s: T | s->s in r").is_err()); // unknown sort
        assert!(parse_formula("s->s in r").is_err()); // unbound variable
        assert!(parse_formula("all s: S | s->s").is_err()); // missing comparison
        assert!(parse_spec("pred A { true } pred A { false }").is_err()); // duplicate
        assert!(parse_spec("pred B { C }").is_err()); // undefined reference
        assert!(parse_formula("all s: S | s->s in r extra").is_err()); // trailing input
        assert!(parse_formula("all s: S | s @ r").is_err()); // bad character
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let spec = parse_spec(
            "// the running example\n pred Reflexive { // diagonal\n all s: S | s->s in r }\n",
        )
        .unwrap();
        assert_eq!(spec.len(), 1);
    }
}
