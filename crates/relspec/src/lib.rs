//! # relspec
//!
//! An Alloy-like relational specification substrate for the MCML
//! reproduction.
//!
//! The MCML study expresses relational properties (reflexive, transitive,
//! partial order, ...) in the Alloy language over a single signature `S` and
//! a single binary relation `r: S -> S`, and relies on the Alloy analyzer
//! for three services:
//!
//! 1. evaluating a property against a concrete instance (the *Alloy
//!    Evaluator*, used to label randomly sampled negative examples);
//! 2. translating a property, for a bounded scope, into a propositional CNF
//!    formula whose primary variables are the bits of the adjacency matrix
//!    (used both for enumerating all positive solutions and as the ground
//!    truth φ for model counting);
//! 3. adding partial symmetry-breaking predicates.
//!
//! This crate provides all three from scratch:
//!
//! * [`ast`] — the relational first-order logic (quantifiers over atoms,
//!   relational operators, transitive closure);
//! * [`instance`] — concrete instances: adjacency matrices over `n` atoms;
//! * [`eval`] — the evaluator of formulas against instances;
//! * [`translate`] — the bounded translation to propositional logic / CNF;
//! * [`properties`] — the 16 subject properties of the MCML study;
//! * [`symmetry`] — lex-leader (partial) symmetry-breaking predicates.
//!
//! # Example
//!
//! ```
//! use relspec::properties::Property;
//! use relspec::instance::RelInstance;
//!
//! // The identity relation on 3 atoms is reflexive and transitive but not connex.
//! let iden = RelInstance::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]);
//! assert!(Property::Reflexive.holds(&iden));
//! assert!(Property::Transitive.holds(&iden));
//! assert!(!Property::Connex.holds(&iden));
//! ```

pub mod ast;
pub mod eval;
pub mod instance;
pub mod parser;
pub mod properties;
pub mod symmetry;
pub mod translate;

pub use ast::{Expr, Formula, QuantVar};
pub use instance::RelInstance;
pub use parser::{parse_formula, parse_spec, Spec};
pub use properties::Property;
pub use symmetry::SymmetryBreaking;
pub use translate::{translate_to_cnf, GroundTruth, TranslateOptions};
