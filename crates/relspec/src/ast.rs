//! Abstract syntax of the relational first-order logic.
//!
//! The language is a faithful fragment of Alloy specialized to the MCML
//! study: one signature `S` (the universe of atoms), one binary relation
//! `r: S -> S`, first-order quantification over atoms, the usual boolean
//! connectives, relational operators (union, intersection, difference, join,
//! product, transpose), transitive closure, and the multiplicity tests
//! `some` / `no` / `lone` / `one`.
//!
//! Expressions denote relations of arity 1 (sets of atoms) or 2 (sets of
//! pairs); formulas denote truth values. Arity is checked structurally by
//! [`Expr::arity`].

use std::fmt;
use std::rc::Rc;

/// A quantified variable, identified by a small index.
///
/// Quantifier bodies refer to variables by these indices; the evaluator and
/// translator carry an environment mapping each variable to a concrete atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuantVar(pub usize);

impl fmt::Display for QuantVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Error produced by arity checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityError {
    /// Description of the ill-formed expression.
    pub message: String,
}

impl fmt::Display for ArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arity error: {}", self.message)
    }
}

impl std::error::Error for ArityError {}

/// A relational expression (denotes a set of tuples of arity 1 or 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// The binary relation `r` under study.
    Rel,
    /// The identity relation over the universe (arity 2).
    Iden,
    /// The universe `S` (arity 1).
    Univ,
    /// The empty relation of the given arity.
    Empty(usize),
    /// A quantified variable, denoting the singleton set of its atom (arity 1).
    Var(QuantVar),
    /// Union of two expressions of equal arity.
    Union(Rc<Expr>, Rc<Expr>),
    /// Intersection of two expressions of equal arity.
    Intersect(Rc<Expr>, Rc<Expr>),
    /// Set difference of two expressions of equal arity.
    Diff(Rc<Expr>, Rc<Expr>),
    /// Relational join `a.b` (dot join).
    Join(Rc<Expr>, Rc<Expr>),
    /// Cartesian product `a -> b`.
    Product(Rc<Expr>, Rc<Expr>),
    /// Transpose `~a` of a binary expression.
    Transpose(Rc<Expr>),
    /// Transitive closure `^a` of a binary expression.
    Closure(Rc<Expr>),
    /// Reflexive transitive closure `*a` of a binary expression.
    ReflClosure(Rc<Expr>),
}

impl Expr {
    /// The relation `r`.
    pub fn rel() -> Rc<Expr> {
        Rc::new(Expr::Rel)
    }

    /// The identity relation.
    pub fn iden() -> Rc<Expr> {
        Rc::new(Expr::Iden)
    }

    /// The universe `S`.
    pub fn univ() -> Rc<Expr> {
        Rc::new(Expr::Univ)
    }

    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Rc<Expr> {
        Rc::new(Expr::Empty(arity))
    }

    /// A quantified variable.
    pub fn var(v: QuantVar) -> Rc<Expr> {
        Rc::new(Expr::Var(v))
    }

    /// Union.
    pub fn union(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Union(a, b))
    }

    /// Intersection.
    pub fn intersect(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Intersect(a, b))
    }

    /// Difference.
    pub fn diff(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Diff(a, b))
    }

    /// Dot join `a.b`.
    pub fn join(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Join(a, b))
    }

    /// Cartesian product `a -> b`.
    pub fn product(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Product(a, b))
    }

    /// Transpose `~a`.
    pub fn transpose(a: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Transpose(a))
    }

    /// Transitive closure `^a`.
    pub fn closure(a: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::Closure(a))
    }

    /// Reflexive transitive closure `*a`.
    pub fn refl_closure(a: Rc<Expr>) -> Rc<Expr> {
        Rc::new(Expr::ReflClosure(a))
    }

    /// The pair expression `a -> b` for two unary expressions (most often
    /// quantified variables), mirroring Alloy's `s->t`.
    pub fn pair(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        Expr::product(a, b)
    }

    /// Computes the arity of this expression.
    ///
    /// # Errors
    ///
    /// Returns [`ArityError`] if the expression combines sub-expressions with
    /// incompatible arities or applies a binary-only operator to a unary
    /// expression (or vice versa).
    pub fn arity(&self) -> Result<usize, ArityError> {
        match self {
            Expr::Rel | Expr::Iden => Ok(2),
            Expr::Univ | Expr::Var(_) => Ok(1),
            Expr::Empty(a) => {
                if *a == 1 || *a == 2 {
                    Ok(*a)
                } else {
                    Err(ArityError {
                        message: format!("empty relation of unsupported arity {a}"),
                    })
                }
            }
            Expr::Union(a, b) | Expr::Intersect(a, b) | Expr::Diff(a, b) => {
                let (x, y) = (a.arity()?, b.arity()?);
                if x == y {
                    Ok(x)
                } else {
                    Err(ArityError {
                        message: format!("set operator applied to arities {x} and {y}"),
                    })
                }
            }
            Expr::Join(a, b) => {
                let (x, y) = (a.arity()?, b.arity()?);
                let out = x + y - 2;
                if out == 1 || out == 2 {
                    Ok(out)
                } else if out == 0 {
                    Err(ArityError {
                        message: "join of two unary expressions has arity 0".to_string(),
                    })
                } else {
                    Err(ArityError {
                        message: format!("join produces unsupported arity {out}"),
                    })
                }
            }
            Expr::Product(a, b) => {
                let (x, y) = (a.arity()?, b.arity()?);
                let out = x + y;
                if out == 2 {
                    Ok(2)
                } else {
                    Err(ArityError {
                        message: format!("product produces unsupported arity {out}"),
                    })
                }
            }
            Expr::Transpose(a) | Expr::Closure(a) | Expr::ReflClosure(a) => {
                let x = a.arity()?;
                if x == 2 {
                    Ok(2)
                } else {
                    Err(ArityError {
                        message: format!("binary operator applied to arity-{x} expression"),
                    })
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Rel => write!(f, "r"),
            Expr::Iden => write!(f, "iden"),
            Expr::Univ => write!(f, "S"),
            Expr::Empty(_) => write!(f, "none"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Union(a, b) => write!(f, "({a} + {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} & {b})"),
            Expr::Diff(a, b) => write!(f, "({a} - {b})"),
            Expr::Join(a, b) => write!(f, "({a}.{b})"),
            Expr::Product(a, b) => write!(f, "({a}->{b})"),
            Expr::Transpose(a) => write!(f, "~{a}"),
            Expr::Closure(a) => write!(f, "^{a}"),
            Expr::ReflClosure(a) => write!(f, "*{a}"),
        }
    }
}

/// A formula of the relational logic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// Subset test `a in b` (both sides must have equal arity).
    Subset(Rc<Expr>, Rc<Expr>),
    /// Equality `a = b`.
    Equal(Rc<Expr>, Rc<Expr>),
    /// Non-emptiness `some e`.
    Some(Rc<Expr>),
    /// Emptiness `no e`.
    No(Rc<Expr>),
    /// At-most-one `lone e`.
    Lone(Rc<Expr>),
    /// Exactly-one `one e`.
    One(Rc<Expr>),
    /// Negation.
    Not(Rc<Formula>),
    /// Conjunction.
    And(Vec<Rc<Formula>>),
    /// Disjunction.
    Or(Vec<Rc<Formula>>),
    /// Implication.
    Implies(Rc<Formula>, Rc<Formula>),
    /// Bi-implication.
    Iff(Rc<Formula>, Rc<Formula>),
    /// Universal quantification of one atom variable over `S`.
    All(QuantVar, Rc<Formula>),
    /// Existential quantification of one atom variable over `S`.
    Exists(QuantVar, Rc<Formula>),
}

impl Formula {
    /// The constant true formula.
    pub fn tru() -> Rc<Formula> {
        Rc::new(Formula::True)
    }

    /// The constant false formula.
    pub fn fls() -> Rc<Formula> {
        Rc::new(Formula::False)
    }

    /// Subset test `a in b`.
    pub fn subset(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Formula> {
        Rc::new(Formula::Subset(a, b))
    }

    /// Equality `a = b`.
    pub fn equal(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Formula> {
        Rc::new(Formula::Equal(a, b))
    }

    /// Non-emptiness `some e`.
    pub fn some(e: Rc<Expr>) -> Rc<Formula> {
        Rc::new(Formula::Some(e))
    }

    /// Emptiness `no e`.
    pub fn no(e: Rc<Expr>) -> Rc<Formula> {
        Rc::new(Formula::No(e))
    }

    /// At-most-one `lone e`.
    pub fn lone(e: Rc<Expr>) -> Rc<Formula> {
        Rc::new(Formula::Lone(e))
    }

    /// Exactly-one `one e`.
    pub fn one(e: Rc<Expr>) -> Rc<Formula> {
        Rc::new(Formula::One(e))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Rc<Formula>) -> Rc<Formula> {
        Rc::new(Formula::Not(f))
    }

    /// Conjunction of a list of formulas.
    pub fn and(fs: Vec<Rc<Formula>>) -> Rc<Formula> {
        Rc::new(Formula::And(fs))
    }

    /// Disjunction of a list of formulas.
    pub fn or(fs: Vec<Rc<Formula>>) -> Rc<Formula> {
        Rc::new(Formula::Or(fs))
    }

    /// Implication `a => b`.
    pub fn implies(a: Rc<Formula>, b: Rc<Formula>) -> Rc<Formula> {
        Rc::new(Formula::Implies(a, b))
    }

    /// Bi-implication `a <=> b`.
    pub fn iff(a: Rc<Formula>, b: Rc<Formula>) -> Rc<Formula> {
        Rc::new(Formula::Iff(a, b))
    }

    /// Universal quantification `all v: S | body`.
    pub fn all(v: QuantVar, body: Rc<Formula>) -> Rc<Formula> {
        Rc::new(Formula::All(v, body))
    }

    /// Existential quantification `some v: S | body`.
    pub fn exists(v: QuantVar, body: Rc<Formula>) -> Rc<Formula> {
        Rc::new(Formula::Exists(v, body))
    }

    /// Universal quantification over several variables at once, mirroring
    /// Alloy's `all s, t: S | body`.
    pub fn all_many(vars: &[QuantVar], body: Rc<Formula>) -> Rc<Formula> {
        vars.iter().rev().fold(body, |acc, &v| Formula::all(v, acc))
    }

    /// Whether the pair `(a, b)` (two unary expressions) is in `rel`,
    /// mirroring Alloy's `a->b in rel`.
    pub fn pair_in(a: Rc<Expr>, b: Rc<Expr>, rel: Rc<Expr>) -> Rc<Formula> {
        Formula::subset(Expr::pair(a, b), rel)
    }

    /// Arity-checks every expression occurring in the formula.
    ///
    /// # Errors
    ///
    /// Returns the first [`ArityError`] encountered.
    pub fn check_arity(&self) -> Result<(), ArityError> {
        match self {
            Formula::True | Formula::False => Ok(()),
            Formula::Subset(a, b) | Formula::Equal(a, b) => {
                let (x, y) = (a.arity()?, b.arity()?);
                if x == y {
                    Ok(())
                } else {
                    Err(ArityError {
                        message: format!("comparison of arities {x} and {y}"),
                    })
                }
            }
            Formula::Some(e) | Formula::No(e) | Formula::Lone(e) | Formula::One(e) => {
                e.arity().map(|_| ())
            }
            Formula::Not(f) => f.check_arity(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().try_for_each(|f| f.check_arity()),
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.check_arity()?;
                b.check_arity()
            }
            Formula::All(_, f) | Formula::Exists(_, f) => f.check_arity(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Subset(a, b) => write!(f, "{a} in {b}"),
            Formula::Equal(a, b) => write!(f, "{a} = {b}"),
            Formula::Some(e) => write!(f, "some {e}"),
            Formula::No(e) => write!(f, "no {e}"),
            Formula::Lone(e) => write!(f, "lone {e}"),
            Formula::One(e) => write!(f, "one {e}"),
            Formula::Not(x) => write!(f, "!({x})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} implies {b})"),
            Formula::Iff(a, b) => write!(f, "({a} iff {b})"),
            Formula::All(v, body) => write!(f, "(all {v}: S | {body})"),
            Formula::Exists(v, body) => write!(f, "(some {v}: S | {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_of_basic_expressions() {
        assert_eq!(Expr::rel().arity().unwrap(), 2);
        assert_eq!(Expr::iden().arity().unwrap(), 2);
        assert_eq!(Expr::univ().arity().unwrap(), 1);
        assert_eq!(Expr::var(QuantVar(0)).arity().unwrap(), 1);
    }

    #[test]
    fn arity_of_join_and_product() {
        let s = Expr::var(QuantVar(0));
        // s.r is unary (the image of s under r).
        assert_eq!(Expr::join(s.clone(), Expr::rel()).arity().unwrap(), 1);
        // r.r is binary.
        assert_eq!(Expr::join(Expr::rel(), Expr::rel()).arity().unwrap(), 2);
        // s->t is binary.
        assert_eq!(
            Expr::pair(s.clone(), Expr::var(QuantVar(1)))
                .arity()
                .unwrap(),
            2
        );
        // Joining two unary expressions is an arity error.
        assert!(Expr::join(s.clone(), s).arity().is_err());
    }

    #[test]
    fn arity_error_on_mixed_union() {
        let e = Expr::union(Expr::univ(), Expr::rel());
        assert!(e.arity().is_err());
    }

    #[test]
    fn closure_requires_binary() {
        assert!(Expr::closure(Expr::univ()).arity().is_err());
        assert!(Expr::closure(Expr::rel()).arity().is_ok());
    }

    #[test]
    fn product_of_binary_rejected() {
        assert!(Expr::product(Expr::rel(), Expr::rel()).arity().is_err());
    }

    #[test]
    fn formula_arity_checking() {
        let ok = Formula::subset(Expr::rel(), Expr::product(Expr::univ(), Expr::univ()));
        assert!(ok.check_arity().is_ok());
        let bad = Formula::equal(Expr::univ(), Expr::rel());
        assert!(bad.check_arity().is_err());
    }

    #[test]
    fn all_many_nests_quantifiers() {
        let s = QuantVar(0);
        let t = QuantVar(1);
        let f = Formula::all_many(
            &[s, t],
            Formula::pair_in(Expr::var(s), Expr::var(t), Expr::rel()),
        );
        match &*f {
            Formula::All(v, inner) => {
                assert_eq!(*v, s);
                assert!(matches!(&**inner, Formula::All(w, _) if *w == t));
            }
            other => panic!("expected nested All, got {other:?}"),
        }
    }

    #[test]
    fn display_is_readable() {
        let s = QuantVar(0);
        let f = Formula::all(s, Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel()));
        assert_eq!(format!("{f}"), "(all q0: S | (q0->q0) in r)");
    }
}
