//! The 16 subject relational properties of the MCML study.
//!
//! Each property is available in two independent forms:
//!
//! * [`Property::spec`] — its specification in the relational logic of
//!   [`crate::ast`], mirroring the Alloy predicates the paper uses; and
//! * [`Property::holds`] — a hand-written direct check over adjacency
//!   matrices.
//!
//! The two forms are cross-checked exhaustively in tests (and by property
//! tests at the workspace level); this is the reproduction's defense against
//! a specification bug silently skewing every downstream experiment.

use crate::ast::{Expr, Formula, QuantVar};
use crate::instance::RelInstance;
use std::fmt;
use std::rc::Rc;

/// A subject relational property over a binary relation `r: S -> S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Property {
    /// `all s, t | (s->t in r and t->s in r) implies s = t`
    Antisymmetric,
    /// A function from `S` to `S` that is both injective and surjective.
    Bijective,
    /// `all s, t | s->t in r or t->s in r` (in particular, reflexive).
    Connex,
    /// Reflexive, symmetric and transitive.
    Equivalence,
    /// `all s | one s.r` — every atom has exactly one successor.
    Function,
    /// `all s | lone s.r` — every atom has at most one successor.
    Functional,
    /// `all s | one r.s` — every atom has exactly one predecessor.
    Injective,
    /// `all s | s->s not in r`.
    Irreflexive,
    /// Reflexive, antisymmetric and transitive (a non-strict partial order).
    NonStrictOrder,
    /// Antisymmetric and transitive.
    PartialOrder,
    /// Reflexive and transitive.
    PreOrder,
    /// `all s | s->s in r`.
    Reflexive,
    /// Irreflexive and transitive (a strict partial order).
    StrictOrder,
    /// A function from `S` to `S` that is surjective.
    Surjective,
    /// A non-strict partial order that is also connex (a linear order).
    TotalOrder,
    /// `all s, t, u | (s->t in r and t->u in r) implies s->u in r`.
    Transitive,
}

impl Property {
    /// All 16 subject properties, in the order used by the paper's tables.
    pub fn all() -> [Property; 16] {
        [
            Property::Antisymmetric,
            Property::Bijective,
            Property::Connex,
            Property::Equivalence,
            Property::Function,
            Property::Functional,
            Property::Injective,
            Property::Irreflexive,
            Property::NonStrictOrder,
            Property::PartialOrder,
            Property::PreOrder,
            Property::Reflexive,
            Property::StrictOrder,
            Property::Surjective,
            Property::TotalOrder,
            Property::Transitive,
        ]
    }

    /// The property's display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Property::Antisymmetric => "Antisymmetric",
            Property::Bijective => "Bijective",
            Property::Connex => "Connex",
            Property::Equivalence => "Equivalence",
            Property::Function => "Function",
            Property::Functional => "Functional",
            Property::Injective => "Injective",
            Property::Irreflexive => "Irreflexive",
            Property::NonStrictOrder => "NonStrictOrder",
            Property::PartialOrder => "PartialOrder",
            Property::PreOrder => "PreOrder",
            Property::Reflexive => "Reflexive",
            Property::StrictOrder => "StrictOrder",
            Property::Surjective => "Surjective",
            Property::TotalOrder => "TotalOrder",
            Property::Transitive => "Transitive",
        }
    }

    /// The scope the paper uses for this property in Table 1 (with default
    /// symmetry breaking). The reproduction harness uses smaller scopes for
    /// the four very large subjects; see `EXPERIMENTS.md`.
    pub fn paper_scope(&self) -> usize {
        match self {
            Property::Antisymmetric => 5,
            Property::Bijective => 14,
            Property::Connex => 6,
            Property::Equivalence => 20,
            Property::Function => 8,
            Property::Functional => 8,
            Property::Injective => 8,
            Property::Irreflexive => 5,
            Property::NonStrictOrder => 7,
            Property::PartialOrder => 6,
            Property::PreOrder => 7,
            Property::Reflexive => 5,
            Property::StrictOrder => 7,
            Property::Surjective => 14,
            Property::TotalOrder => 13,
            Property::Transitive => 6,
        }
    }

    /// The relational-logic specification of the property (the "Alloy
    /// predicate").
    pub fn spec(&self) -> Rc<Formula> {
        let s = QuantVar(0);
        let t = QuantVar(1);
        match self {
            Property::Antisymmetric => antisymmetric(),
            Property::Bijective => Formula::and(vec![function(), injective()]),
            Property::Connex => connex(),
            Property::Equivalence => Formula::and(vec![reflexive(), symmetric(), transitive()]),
            Property::Function => function(),
            Property::Functional => {
                Formula::all(s, Formula::lone(Expr::join(Expr::var(s), Expr::rel())))
            }
            Property::Injective => injective(),
            Property::Irreflexive => Formula::all(
                s,
                Formula::not(Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel())),
            ),
            Property::NonStrictOrder => {
                Formula::and(vec![reflexive(), antisymmetric(), transitive()])
            }
            Property::PartialOrder => Formula::and(vec![antisymmetric(), transitive()]),
            Property::PreOrder => Formula::and(vec![reflexive(), transitive()]),
            Property::Reflexive => reflexive(),
            Property::StrictOrder => Formula::and(vec![
                Formula::all(
                    s,
                    Formula::not(Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel())),
                ),
                transitive(),
            ]),
            Property::Surjective => Formula::and(vec![
                function(),
                Formula::all(t, Formula::some(Expr::join(Expr::rel(), Expr::var(t)))),
            ]),
            Property::TotalOrder => {
                Formula::and(vec![reflexive(), antisymmetric(), transitive(), connex()])
            }
            Property::Transitive => transitive(),
        }
    }

    /// Directly checks the property on a concrete instance, independently of
    /// the relational AST and evaluator.
    pub fn holds(&self, inst: &RelInstance) -> bool {
        let n = inst.num_atoms();
        match self {
            Property::Antisymmetric => (0..n)
                .all(|i| (0..n).all(|j| i == j || !(inst.contains(i, j) && inst.contains(j, i)))),
            Property::Bijective => {
                Property::Function.holds(inst)
                    && (0..n).all(|j| (0..n).filter(|&i| inst.contains(i, j)).count() == 1)
            }
            Property::Connex => {
                (0..n).all(|i| (0..n).all(|j| inst.contains(i, j) || inst.contains(j, i)))
            }
            Property::Equivalence => {
                Property::Reflexive.holds(inst)
                    && (0..n).all(|i| (0..n).all(|j| inst.contains(i, j) == inst.contains(j, i)))
                    && Property::Transitive.holds(inst)
            }
            Property::Function => {
                (0..n).all(|i| (0..n).filter(|&j| inst.contains(i, j)).count() == 1)
            }
            Property::Functional => {
                (0..n).all(|i| (0..n).filter(|&j| inst.contains(i, j)).count() <= 1)
            }
            Property::Injective => {
                (0..n).all(|j| (0..n).filter(|&i| inst.contains(i, j)).count() == 1)
            }
            Property::Irreflexive => (0..n).all(|i| !inst.contains(i, i)),
            Property::NonStrictOrder => {
                Property::Reflexive.holds(inst)
                    && Property::Antisymmetric.holds(inst)
                    && Property::Transitive.holds(inst)
            }
            Property::PartialOrder => {
                Property::Antisymmetric.holds(inst) && Property::Transitive.holds(inst)
            }
            Property::PreOrder => {
                Property::Reflexive.holds(inst) && Property::Transitive.holds(inst)
            }
            Property::Reflexive => (0..n).all(|i| inst.contains(i, i)),
            Property::StrictOrder => {
                Property::Irreflexive.holds(inst) && Property::Transitive.holds(inst)
            }
            Property::Surjective => {
                Property::Function.holds(inst)
                    && (0..n).all(|j| (0..n).any(|i| inst.contains(i, j)))
            }
            Property::TotalOrder => {
                Property::NonStrictOrder.holds(inst) && Property::Connex.holds(inst)
            }
            Property::Transitive => (0..n).all(|i| {
                (0..n).all(|j| {
                    !inst.contains(i, j)
                        || (0..n).all(|k| !inst.contains(j, k) || inst.contains(i, k))
                })
            }),
        }
    }

    /// Parses a property from its (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Property> {
        Property::all()
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn reflexive() -> Rc<Formula> {
    let s = QuantVar(0);
    Formula::all(s, Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel()))
}

fn symmetric() -> Rc<Formula> {
    let s = QuantVar(0);
    let t = QuantVar(1);
    Formula::all_many(
        &[s, t],
        Formula::implies(
            Formula::pair_in(Expr::var(s), Expr::var(t), Expr::rel()),
            Formula::pair_in(Expr::var(t), Expr::var(s), Expr::rel()),
        ),
    )
}

fn antisymmetric() -> Rc<Formula> {
    let s = QuantVar(0);
    let t = QuantVar(1);
    Formula::all_many(
        &[s, t],
        Formula::implies(
            Formula::and(vec![
                Formula::pair_in(Expr::var(s), Expr::var(t), Expr::rel()),
                Formula::pair_in(Expr::var(t), Expr::var(s), Expr::rel()),
            ]),
            Formula::equal(Expr::var(s), Expr::var(t)),
        ),
    )
}

fn transitive() -> Rc<Formula> {
    let s = QuantVar(0);
    let t = QuantVar(1);
    let u = QuantVar(2);
    Formula::all_many(
        &[s, t, u],
        Formula::implies(
            Formula::and(vec![
                Formula::pair_in(Expr::var(s), Expr::var(t), Expr::rel()),
                Formula::pair_in(Expr::var(t), Expr::var(u), Expr::rel()),
            ]),
            Formula::pair_in(Expr::var(s), Expr::var(u), Expr::rel()),
        ),
    )
}

fn connex() -> Rc<Formula> {
    let s = QuantVar(0);
    let t = QuantVar(1);
    Formula::all_many(
        &[s, t],
        Formula::or(vec![
            Formula::pair_in(Expr::var(s), Expr::var(t), Expr::rel()),
            Formula::pair_in(Expr::var(t), Expr::var(s), Expr::rel()),
        ]),
    )
}

fn function() -> Rc<Formula> {
    let s = QuantVar(0);
    Formula::all(s, Formula::one(Expr::join(Expr::var(s), Expr::rel())))
}

fn injective() -> Rc<Formula> {
    let s = QuantVar(0);
    Formula::all(s, Formula::one(Expr::join(Expr::rel(), Expr::var(s))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_formula;
    use crate::translate::{translate_formula, translate_to_cnf, TranslateOptions};
    use satkit::enumerate::{enumerate_projected, EnumerateConfig};

    fn all_instances(n: usize) -> impl Iterator<Item = RelInstance> {
        (0u64..(1 << (n * n))).map(move |bits| {
            RelInstance::from_bits(n, (0..n * n).map(|k| bits >> k & 1 == 1).collect())
        })
    }

    /// Counts instances at scope `n` satisfying the property, using the
    /// direct `holds` implementation.
    fn brute_count(prop: Property, n: usize) -> usize {
        all_instances(n).filter(|inst| prop.holds(inst)).count()
    }

    #[test]
    fn spec_arity_checks() {
        for p in Property::all() {
            p.spec().check_arity().unwrap_or_else(|e| {
                panic!("property {p} has an ill-formed spec: {e}");
            });
        }
    }

    #[test]
    fn spec_agrees_with_direct_check_scope3() {
        for p in Property::all() {
            let spec = p.spec();
            for inst in all_instances(3) {
                assert_eq!(
                    eval_formula(&spec, &inst),
                    p.holds(&inst),
                    "property {p} disagrees on {inst}"
                );
            }
        }
    }

    #[test]
    fn spec_agrees_with_direct_check_scope2() {
        for p in Property::all() {
            let spec = p.spec();
            for inst in all_instances(2) {
                assert_eq!(eval_formula(&spec, &inst), p.holds(&inst), "property {p}");
            }
        }
    }

    #[test]
    fn translation_agrees_with_direct_check_scope3() {
        for p in Property::all() {
            let expr = translate_formula(&p.spec(), 3);
            for inst in all_instances(3) {
                assert_eq!(
                    expr.eval(inst.bits()),
                    p.holds(&inst),
                    "translated property {p} disagrees on {inst}"
                );
            }
        }
    }

    #[test]
    fn closed_form_counts_scope3() {
        // Known counts of relations on a 3-element set (no symmetry
        // breaking). These pin down the exact semantics of every property.
        let expected = [
            (Property::Antisymmetric, 216), // 2^3 * 3^3
            (Property::Bijective, 6),       // 3!
            (Property::Connex, 27),         // 3^C(3,2) with forced diagonal
            (Property::Equivalence, 5),     // Bell(3)
            (Property::Function, 27),       // 3^3
            (Property::Functional, 64),     // 4^3
            (Property::Injective, 27),      // 3^3
            (Property::Irreflexive, 64),    // 2^6
            (Property::NonStrictOrder, 19), // posets on 3 labeled elements
            (Property::PartialOrder, 152),  // 2^3 * strict posets(3) = 8 * 19
            (Property::PreOrder, 29),       // preorders on 3 labeled elements
            (Property::Reflexive, 64),      // 2^6
            (Property::StrictOrder, 19),    // strict posets(3)
            (Property::Surjective, 6),      // 3!
            (Property::TotalOrder, 6),      // 3!
            (Property::Transitive, 171),    // transitive relations on 3 elements
        ];
        for (p, count) in expected {
            assert_eq!(brute_count(p, 3), count, "property {p}");
        }
    }

    #[test]
    fn cnf_translation_counts_match_brute_force_scope2() {
        for p in Property::all() {
            let gt = translate_to_cnf(&p.spec(), TranslateOptions::new(2));
            let sols = enumerate_projected(&gt.cnf_positive(), &[], &EnumerateConfig::default());
            assert_eq!(sols.len(), brute_count(p, 2), "property {p}");
        }
    }

    #[test]
    fn names_roundtrip() {
        for p in Property::all() {
            assert_eq!(Property::from_name(p.name()), Some(p));
            assert_eq!(Property::from_name(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Property::from_name("NotAProperty"), None);
    }

    #[test]
    fn paper_scopes_match_table1() {
        assert_eq!(Property::Equivalence.paper_scope(), 20);
        assert_eq!(Property::TotalOrder.paper_scope(), 13);
        assert_eq!(Property::Reflexive.paper_scope(), 5);
        assert_eq!(Property::NonStrictOrder.paper_scope(), 7);
    }

    #[test]
    fn implications_between_properties() {
        // Structural sanity: every total order is a non-strict order, every
        // equivalence is a preorder, every strict order is a partial order.
        for inst in all_instances(3) {
            if Property::TotalOrder.holds(&inst) {
                assert!(Property::NonStrictOrder.holds(&inst));
            }
            if Property::Equivalence.holds(&inst) {
                assert!(Property::PreOrder.holds(&inst));
            }
            if Property::StrictOrder.holds(&inst) {
                assert!(Property::PartialOrder.holds(&inst));
            }
            if Property::Bijective.holds(&inst) {
                assert!(Property::Surjective.holds(&inst) && Property::Function.holds(&inst));
            }
        }
    }
}
