//! Evaluation of relational formulas against concrete instances.
//!
//! This is the reproduction of the *Alloy Evaluator*: given a candidate
//! adjacency matrix, decide whether a property holds by directly evaluating
//! the formula — no constraint solving involved. The MCML data-generation
//! pipeline uses it to label randomly sampled candidate instances as negative
//! examples.

use crate::ast::{Expr, Formula, QuantVar};
use crate::instance::RelInstance;

/// A concrete relation value of arity 1 or 2 over `n` atoms, used as the
/// intermediate result of expression evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleSet {
    arity: usize,
    n: usize,
    bits: Vec<bool>,
}

impl TupleSet {
    /// An empty tuple set of the given arity over `n` atoms.
    pub fn empty(arity: usize, n: usize) -> Self {
        let size = n.pow(arity as u32);
        TupleSet {
            arity,
            n,
            bits: vec![false; size],
        }
    }

    /// The arity (1 or 2).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| !b)
    }

    /// Membership of a unary tuple.
    pub fn contains1(&self, i: usize) -> bool {
        debug_assert_eq!(self.arity, 1);
        self.bits[i]
    }

    /// Membership of a binary tuple.
    pub fn contains2(&self, i: usize, j: usize) -> bool {
        debug_assert_eq!(self.arity, 2);
        self.bits[i * self.n + j]
    }

    fn set1(&mut self, i: usize, v: bool) {
        debug_assert_eq!(self.arity, 1);
        self.bits[i] = v;
    }

    fn set2(&mut self, i: usize, j: usize, v: bool) {
        debug_assert_eq!(self.arity, 2);
        self.bits[i * self.n + j] = v;
    }

    /// Whether this set is a subset of `other` (same arity assumed).
    pub fn subset_of(&self, other: &TupleSet) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        self.bits.iter().zip(&other.bits).all(|(&a, &b)| !a || b)
    }
}

/// An environment binding quantified variables to atoms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    bindings: Vec<Option<usize>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds variable `v` to atom `atom`, returning the extended environment.
    pub fn bind(&self, v: QuantVar, atom: usize) -> Env {
        let mut out = self.clone();
        if out.bindings.len() <= v.0 {
            out.bindings.resize(v.0 + 1, None);
        }
        out.bindings[v.0] = Some(atom);
        out
    }

    /// Looks up the atom bound to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unbound — formulas must be closed under the
    /// environment in which they are evaluated.
    pub fn lookup(&self, v: QuantVar) -> usize {
        self.bindings
            .get(v.0)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unbound quantified variable {v}"))
    }
}

/// Evaluates an expression to its tuple-set value.
///
/// # Panics
///
/// Panics if the expression is not arity-correct or refers to an unbound
/// variable; use [`Formula::check_arity`](crate::ast::Formula::check_arity)
/// to validate specs first.
pub fn eval_expr(expr: &Expr, inst: &RelInstance, env: &Env) -> TupleSet {
    let n = inst.num_atoms();
    match expr {
        Expr::Rel => {
            let mut t = TupleSet::empty(2, n);
            for i in 0..n {
                for j in 0..n {
                    t.set2(i, j, inst.contains(i, j));
                }
            }
            t
        }
        Expr::Iden => {
            let mut t = TupleSet::empty(2, n);
            for i in 0..n {
                t.set2(i, i, true);
            }
            t
        }
        Expr::Univ => {
            let mut t = TupleSet::empty(1, n);
            for i in 0..n {
                t.set1(i, true);
            }
            t
        }
        Expr::Empty(a) => TupleSet::empty(*a, n),
        Expr::Var(v) => {
            let mut t = TupleSet::empty(1, n);
            t.set1(env.lookup(*v), true);
            t
        }
        Expr::Union(a, b) => zip_sets(expr, inst, env, a, b, |x, y| x || y),
        Expr::Intersect(a, b) => zip_sets(expr, inst, env, a, b, |x, y| x && y),
        Expr::Diff(a, b) => zip_sets(expr, inst, env, a, b, |x, y| x && !y),
        Expr::Join(a, b) => {
            let ta = eval_expr(a, inst, env);
            let tb = eval_expr(b, inst, env);
            join(&ta, &tb, n)
        }
        Expr::Product(a, b) => {
            let ta = eval_expr(a, inst, env);
            let tb = eval_expr(b, inst, env);
            debug_assert_eq!(ta.arity(), 1);
            debug_assert_eq!(tb.arity(), 1);
            let mut t = TupleSet::empty(2, n);
            for i in 0..n {
                for j in 0..n {
                    t.set2(i, j, ta.contains1(i) && tb.contains1(j));
                }
            }
            t
        }
        Expr::Transpose(a) => {
            let ta = eval_expr(a, inst, env);
            let mut t = TupleSet::empty(2, n);
            for i in 0..n {
                for j in 0..n {
                    t.set2(i, j, ta.contains2(j, i));
                }
            }
            t
        }
        Expr::Closure(a) => {
            let ta = eval_expr(a, inst, env);
            transitive_closure(&ta, n, false)
        }
        Expr::ReflClosure(a) => {
            let ta = eval_expr(a, inst, env);
            transitive_closure(&ta, n, true)
        }
    }
}

fn zip_sets(
    _expr: &Expr,
    inst: &RelInstance,
    env: &Env,
    a: &Expr,
    b: &Expr,
    op: impl Fn(bool, bool) -> bool,
) -> TupleSet {
    let ta = eval_expr(a, inst, env);
    let tb = eval_expr(b, inst, env);
    debug_assert_eq!(ta.arity(), tb.arity());
    let mut out = ta.clone();
    for (o, (&x, &y)) in out.bits.iter_mut().zip(ta.bits.iter().zip(&tb.bits)) {
        *o = op(x, y);
    }
    out
}

fn join(a: &TupleSet, b: &TupleSet, n: usize) -> TupleSet {
    match (a.arity(), b.arity()) {
        (1, 2) => {
            let mut t = TupleSet::empty(1, n);
            for j in 0..n {
                let v = (0..n).any(|i| a.contains1(i) && b.contains2(i, j));
                t.set1(j, v);
            }
            t
        }
        (2, 1) => {
            let mut t = TupleSet::empty(1, n);
            for i in 0..n {
                let v = (0..n).any(|j| a.contains2(i, j) && b.contains1(j));
                t.set1(i, v);
            }
            t
        }
        (2, 2) => {
            let mut t = TupleSet::empty(2, n);
            for i in 0..n {
                for k in 0..n {
                    let v = (0..n).any(|j| a.contains2(i, j) && b.contains2(j, k));
                    t.set2(i, k, v);
                }
            }
            t
        }
        (x, y) => panic!("join of arities {x} and {y} is not supported"),
    }
}

fn transitive_closure(a: &TupleSet, n: usize, reflexive: bool) -> TupleSet {
    debug_assert_eq!(a.arity(), 2);
    let mut reach = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            reach[i * n + j] = a.contains2(i, j);
        }
        if reflexive {
            reach[i * n + i] = true;
        }
    }
    // Floyd-Warshall style closure.
    for k in 0..n {
        for i in 0..n {
            if reach[i * n + k] {
                for j in 0..n {
                    if reach[k * n + j] {
                        reach[i * n + j] = true;
                    }
                }
            }
        }
    }
    let mut t = TupleSet::empty(2, n);
    t.bits = reach;
    t
}

/// Evaluates a closed formula against an instance.
pub fn eval_formula(formula: &Formula, inst: &RelInstance) -> bool {
    eval_formula_env(formula, inst, &Env::new())
}

/// Evaluates a formula against an instance under an environment.
pub fn eval_formula_env(formula: &Formula, inst: &RelInstance, env: &Env) -> bool {
    let n = inst.num_atoms();
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Subset(a, b) => eval_expr(a, inst, env).subset_of(&eval_expr(b, inst, env)),
        Formula::Equal(a, b) => eval_expr(a, inst, env) == eval_expr(b, inst, env),
        Formula::Some(e) => !eval_expr(e, inst, env).is_empty(),
        Formula::No(e) => eval_expr(e, inst, env).is_empty(),
        Formula::Lone(e) => eval_expr(e, inst, env).len() <= 1,
        Formula::One(e) => eval_expr(e, inst, env).len() == 1,
        Formula::Not(f) => !eval_formula_env(f, inst, env),
        Formula::And(fs) => fs.iter().all(|f| eval_formula_env(f, inst, env)),
        Formula::Or(fs) => fs.iter().any(|f| eval_formula_env(f, inst, env)),
        Formula::Implies(a, b) => !eval_formula_env(a, inst, env) || eval_formula_env(b, inst, env),
        Formula::Iff(a, b) => eval_formula_env(a, inst, env) == eval_formula_env(b, inst, env),
        Formula::All(v, body) => {
            (0..n).all(|atom| eval_formula_env(body, inst, &env.bind(*v, atom)))
        }
        Formula::Exists(v, body) => {
            (0..n).any(|atom| eval_formula_env(body, inst, &env.bind(*v, atom)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Formula, QuantVar};

    fn chain(n: usize) -> RelInstance {
        // 0 -> 1 -> 2 -> ... -> n-1
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        RelInstance::from_pairs(n, &pairs)
    }

    #[test]
    fn rel_and_iden_values() {
        let inst = RelInstance::from_pairs(3, &[(0, 1)]);
        let env = Env::new();
        let r = eval_expr(&Expr::Rel, &inst, &env);
        assert!(r.contains2(0, 1));
        assert!(!r.contains2(1, 0));
        let iden = eval_expr(&Expr::Iden, &inst, &env);
        assert_eq!(iden.len(), 3);
        assert!(iden.contains2(2, 2));
    }

    #[test]
    fn join_image_of_atom() {
        // s.r = successors of s
        let inst = chain(4);
        let env = Env::new().bind(QuantVar(0), 1);
        let image = eval_expr(
            &Expr::Join(Expr::var(QuantVar(0)), Expr::rel()),
            &inst,
            &env,
        );
        assert_eq!(image.arity(), 1);
        assert_eq!(image.len(), 1);
        assert!(image.contains1(2));
    }

    #[test]
    fn transpose_join_gives_preimage() {
        let inst = chain(4);
        let env = Env::new().bind(QuantVar(0), 1);
        // r.s = predecessors of s
        let pre = eval_expr(
            &Expr::Join(Expr::rel(), Expr::var(QuantVar(0))),
            &inst,
            &env,
        );
        assert_eq!(pre.len(), 1);
        assert!(pre.contains1(0));
    }

    #[test]
    fn closure_of_chain_is_strict_order() {
        let inst = chain(4);
        let env = Env::new();
        let c = eval_expr(&Expr::Closure(Expr::rel()), &inst, &env);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.contains2(i, j), i < j, "({i},{j})");
            }
        }
        let rc = eval_expr(&Expr::ReflClosure(Expr::rel()), &inst, &env);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(rc.contains2(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn quantifiers_and_subset() {
        // all s: S | s->s in r  (reflexivity)
        let s = QuantVar(0);
        let refl = Formula::all(s, Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel()));
        let iden3 = RelInstance::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]);
        assert!(eval_formula(&refl, &iden3));
        let missing = RelInstance::from_pairs(3, &[(0, 0), (1, 1)]);
        assert!(!eval_formula(&refl, &missing));
    }

    #[test]
    fn multiplicity_operators() {
        let inst = chain(3);
        let env = Env::new().bind(QuantVar(0), 0);
        let image = Expr::join(Expr::var(QuantVar(0)), Expr::rel());
        assert!(eval_formula_env(&Formula::One(image.clone()), &inst, &env));
        assert!(eval_formula_env(&Formula::Lone(image.clone()), &inst, &env));
        assert!(eval_formula_env(&Formula::Some(image.clone()), &inst, &env));
        assert!(!eval_formula_env(&Formula::No(image), &inst, &env));

        // Atom 2 has no successors in the chain 0->1->2.
        let env2 = Env::new().bind(QuantVar(0), 2);
        let image2 = Expr::join(Expr::var(QuantVar(0)), Expr::rel());
        assert!(eval_formula_env(&Formula::No(image2.clone()), &inst, &env2));
        assert!(eval_formula_env(
            &Formula::Lone(image2.clone()),
            &inst,
            &env2
        ));
        assert!(!eval_formula_env(&Formula::One(image2), &inst, &env2));
    }

    #[test]
    fn exists_quantifier() {
        let s = QuantVar(0);
        // some s: S | s->s in r
        let has_loop =
            Formula::exists(s, Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel()));
        assert!(eval_formula(
            &has_loop,
            &RelInstance::from_pairs(3, &[(1, 1)])
        ));
        assert!(!eval_formula(&has_loop, &chain(3)));
    }

    #[test]
    #[should_panic(expected = "unbound quantified variable")]
    fn unbound_variable_panics() {
        let inst = chain(2);
        eval_expr(&Expr::Var(QuantVar(3)), &inst, &Env::new());
    }

    #[test]
    fn set_operators() {
        let inst = RelInstance::from_pairs(3, &[(0, 1), (1, 2)]);
        let env = Env::new();
        let sym = Expr::union(Expr::rel(), Expr::transpose(Expr::rel()));
        let v = eval_expr(&sym, &inst, &env);
        assert!(v.contains2(1, 0) && v.contains2(0, 1));
        let anti = Expr::intersect(Expr::rel(), Expr::transpose(Expr::rel()));
        assert!(eval_expr(&anti, &inst, &env).is_empty());
        let minus = Expr::diff(Expr::rel(), Expr::rel());
        assert!(eval_expr(&minus, &inst, &env).is_empty());
    }
}
